//! Offline drop-in shim for the subset of the `rand` crate used by this
//! workspace.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides source-compatible replacements for the APIs the workspace relies
//! on: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension trait with `gen_range` / `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for tests and
//! deterministic weight initialisation, though (unlike the real `rand`) it is
//! **not** cryptographically secure and its streams differ from upstream
//! `StdRng` for the same seed.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types from which `Rng::gen_range` can sample a value of type `T`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty inclusive range in gen_range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) - 1) as f32);
        start + (end - start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty inclusive range in gen_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * u
    }
}

/// Concrete RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn integer_inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(-1i32..=1) {
                -1 => lo = true,
                1 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 - 2500.0).abs() < 250.0, "hits {hits}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b}");
        }
    }
}
