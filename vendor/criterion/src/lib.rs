//! Offline shim for the subset of `criterion` used by `fab-bench`.
//!
//! Implements `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! calibrate-then-sample loop (median of `sample_size` timed batches) rather
//! than criterion's full statistical machinery, but it reports stable
//! nanoseconds-per-iteration figures and throughput, which is all the
//! workspace benches need.

use std::time::{Duration, Instant};

/// Opaque barrier preventing the optimiser from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark; `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        let ns = bencher.median_ns();
        println!("{}/{id:<40} time: {}", self.name, format_ns(ns));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure to time its hot loop.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated executions of `f` and records per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch size until one batch takes >= 5 ms (or a
        // single call is already slow enough to time directly).
        let mut batch = 1u64;
        let batch_time = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= (1 << 24) {
                break elapsed;
            }
            batch *= 2;
        };
        // Measure: `sample_size` timed batches, trimmed for very slow bodies
        // so a single bench never runs for minutes.
        let samples = if batch_time > Duration::from_millis(250) { 3 } else { self.sample_size };
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        self.samples[self.samples.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs/iter", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms/iter", ns / 1e6)
    } else {
        format!("{:8.2} s/iter", ns / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_finite_samples() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 3 };
        b.iter(|| black_box(2u64).pow(10));
        assert!(b.median_ns().is_finite());
        assert!(b.median_ns() >= 0.0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.sample_size(3).bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }
}
