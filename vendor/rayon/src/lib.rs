//! Offline shim for the subset of `rayon` used by the fab compute core.
//!
//! The build environment cannot fetch crates.io, so this crate provides a
//! source-compatible implementation of the parallel-iterator idioms the
//! workspace kernels use — `par_chunks` / `par_chunks_mut` on slices,
//! `into_par_iter` on ranges, and `enumerate` / `for_each` / `map` /
//! `collect` on the resulting iterators — on top of `std::thread::scope`.
//!
//! Unlike real rayon there is no work-stealing pool: each parallel call
//! splits its items into at most [`current_num_threads`] contiguous blocks
//! and runs one OS thread per block. That is the right shape for the
//! row-banded kernels in `fab-tensor` / `fab-butterfly`, whose work per item
//! is uniform. `RAYON_NUM_THREADS=1` (or a single-core machine) degrades to a
//! plain serial loop on the calling thread with zero thread spawns, which the
//! property tests rely on for bit-exact serial/parallel comparisons.

/// Number of worker threads parallel calls may use: `RAYON_NUM_THREADS` when
/// set to a positive integer, otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Runs `f` over `items`, in parallel when more than one thread is available,
/// returning the outputs in input order.
fn run<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `threads` contiguous blocks of near-equal size.
    let mut blocks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let total = items.len();
    let mut iter = items.into_iter();
    for t in 0..threads {
        let take = (total * (t + 1)) / threads - (total * t) / threads;
        blocks.push(iter.by_ref().take(take).collect());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move || block.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        let mut out = Vec::with_capacity(total);
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// An eagerly materialised parallel iterator over `items`.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs every item with its index, mirroring `ParallelIterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Applies `f` to every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run(self.items, &f);
    }

    /// Lazily maps every item through `f`; consume with [`ParMap::collect`],
    /// [`ParMap::sum`], or [`ParMap::reduce`].
    pub fn map<O, F>(self, f: F) -> ParMap<I, O, F>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        ParMap { items: self.items, f, _out: std::marker::PhantomData }
    }

    /// Number of items the iterator will yield.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]: a parallel map pending consumption.
pub struct ParMap<I, O, F> {
    items: Vec<I>,
    f: F,
    _out: std::marker::PhantomData<O>,
}

impl<I, O, F> ParMap<I, O, F>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    /// Evaluates the map in parallel and collects the outputs in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        run(self.items, &self.f).into_iter().collect()
    }

    /// Evaluates the map in parallel and folds the outputs with `combine`,
    /// starting from `identity`.
    pub fn reduce<ID, C>(self, identity: ID, combine: C) -> O
    where
        ID: Fn() -> O,
        C: Fn(O, O) -> O,
    {
        run(self.items, &self.f).into_iter().fold(identity(), combine)
    }

    /// Evaluates the map in parallel and sums the outputs.
    pub fn sum<S: std::iter::Sum<O>>(self) -> S {
        run(self.items, &self.f).into_iter().sum()
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Splits the slice into chunks of at most `chunk_size` items.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter { items: self.chunks(chunk_size).collect() }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into disjoint mutable chunks of at most `chunk_size` items.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The type of item the parallel iterator yields.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// The traits a `use rayon::prelude::*` consumer expects in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..257).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        (0..1000usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn map_sum_matches_serial() {
        let total: usize = (0..100usize).into_par_iter().map(|i| i).sum();
        assert_eq!(total, 4950);
    }
}
