//! Offline shim for the `serde` facade.
//!
//! Exposes `Serialize` / `Deserialize` in both the macro namespace (no-op
//! derives from the local `serde_derive` shim) and the type namespace (empty
//! marker traits), which is exactly the surface the workspace consumes via
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
