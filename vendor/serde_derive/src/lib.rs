//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! config/report structs — nothing serialises through serde at runtime (JSON
//! artifacts are written by hand) — so the derives expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
