//! Offline shim for the subset of `proptest` used by the workspace property
//! tests.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn name(x in
//! strategy, ...) { ... } }` macro form, range and tuple strategies,
//! `prop::collection::vec` with an exact length, `prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Each test runs
//! `ProptestConfig::cases` deterministic random cases (seeded from the test
//! name); there is no shrinking — a failing case panics with its case index
//! so it can be reproduced directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

/// Deterministic RNG for a named property test.
pub fn test_rng_for(name: &str) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(seed)
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value the strategy generates.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A strategy producing `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports property tests expect from `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of the `prop` module alias from the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Declares property tests; see the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng_for(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_has_exact_len(v in prop::collection::vec(-2.0f32..2.0, 12)) {
            prop_assert_eq!(v.len(), 12);
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|v| v * 100)) {
            prop_assert!(n == 100 || n == 200 || n == 300);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..4) {
            prop_assume!(a != 1);
            prop_assert!(a != 1);
        }
    }
}
