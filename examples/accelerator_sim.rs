//! Accelerator deep-dive: inspect the butterfly memory system, cross-validate
//! the functional datapath against the reference kernels, and sweep the
//! off-chip bandwidth (the paper's Fig. 21 experiment).
//!
//! Run with: `cargo run --release --example accelerator_sim`

use fabnet::accel::functional::cross_validate_butterfly;
use fabnet::accel::memory::{Layout, TransformAccessReport};
use fabnet::butterfly::ButterflyMatrix;
use fabnet::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. Bank-conflict analysis of the butterfly memory system (Figs. 8-10).
    println!("== Butterfly memory system: bank conflicts per layout (n=1024, 16 banks) ==");
    for layout in [Layout::RowMajor, Layout::ColumnMajor, Layout::Butterfly] {
        let report = TransformAccessReport::analyze(layout, 1024, 16);
        println!(
            "  {:?}: {:5} fetch cycles, {:4} conflicts, conflict-free = {}",
            layout,
            report.total_cycles(),
            report.total_conflicts(),
            report.is_conflict_free()
        );
    }

    // 2. Functional cross-validation of the adaptable butterfly unit
    //    (the paper's Appendix C methodology).
    let mut rng = StdRng::seed_from_u64(2022);
    let matrix = ButterflyMatrix::random(256, &mut rng).expect("power-of-two size");
    let x: Vec<f32> = (0..256).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let cv = cross_validate_butterfly(&matrix, &x, 16);
    println!("\n== Functional cross-validation (256-point butterfly, 16 banks) ==");
    println!("  max abs error vs reference: {:.2e}", cv.max_abs_error);
    println!("  memory conflict-free      : {}", cv.memory_conflict_free);

    // 3. Bandwidth sweep for FABNet-Large (Fig. 21).
    println!("\n== Off-chip bandwidth sweep, FABNet-Large (Fig. 21) ==");
    let model = ModelConfig::fabnet_large();
    for &seq in &[128usize, 1024, 4096] {
        println!("  sequence length {seq}:");
        let schedule = LayerSchedule::from_model(&model, ModelKind::FabNet, seq);
        for &bes in &[16usize, 32, 64, 96, 128] {
            let mut line = format!("    {bes:>3} BEs:");
            for &bw in &[6.0f64, 12.0, 25.0, 50.0, 100.0, 200.0] {
                let hw = AcceleratorConfig::vcu128_be120().with_bes(bes).with_bandwidth(bw);
                let report = Simulator::new(hw).simulate(&schedule);
                line.push_str(&format!(" {:8.2}ms", report.total_ms()));
            }
            println!("{line}   (bandwidth 6/12/25/50/100/200 GB/s)");
        }
    }
}
