//! Serving demo: train a tiny FABNet on an LRA-proxy task, freeze it into a
//! tape-free inference session, and serve concurrent traffic through the
//! dynamic micro-batcher.
//!
//! Run with: `cargo run --release --example serve_demo`

use fabnet::prelude::*;
use std::time::Instant;

fn main() {
    // 1. Train a small FABNet on the byte-level Text proxy task.
    let config = ModelConfig {
        hidden: 32,
        ffn_ratio: 2,
        num_layers: 2,
        num_abfly: 1,
        num_heads: 2,
        vocab_size: 64,
        max_seq: 64,
        num_classes: 2,
    };
    println!("== Training a tiny FABNet on the LRA Text proxy ==");
    let pipeline = TrainingPipeline::new(LraTask::Text, 48, 7).with_examples(48, 16).with_epochs(2);
    let trained = pipeline.run(&config, ModelKind::FabNet);
    // The pipeline overrides vocabulary/classes to match the task.
    let vocab = trained.config.vocab_size;
    println!(
        "  blocks {}  vocab {}  test accuracy {:.2}",
        trained.model.architecture_summary(),
        vocab,
        trained.report.test_accuracy
    );

    // 2. Freeze the trained weights and start the dynamic-batching server.
    let serve_config = ServeConfig {
        max_batch: 16,
        max_wait_us: 400,
        queue_capacity: 4096,
        ..ServeConfig::default()
    };
    let server = trained.serve(serve_config);
    println!("\n== Server up ==");
    println!(
        "  workers {}  max_batch {}  max_wait {}us  buckets {:?}",
        server.config().num_workers,
        server.config().max_batch,
        server.config().max_wait_us,
        server.config().buckets
    );

    // 3. Fire mixed-length traffic from several client threads.
    let clients = 4;
    let per_client = 250;
    println!("\n== Load: {clients} clients x {per_client} requests, mixed lengths ==");
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let handle = server.handle();
            scope.spawn(move || {
                for i in 0..per_client {
                    let len = 12 + (c * 7 + i * 3) % 36;
                    let tokens: Vec<usize> = (0..len).map(|t| (t * 5 + c + i) % vocab).collect();
                    match handle.infer(tokens) {
                        Ok(p) => {
                            if i == 0 && c == 0 {
                                println!(
                                    "  first response: class {} (batch of {}, padded to {}, \
                                     waited {}us)",
                                    p.class, p.batch_size, p.padded_len, p.queue_wait_us
                                );
                            }
                        }
                        Err(e) => println!("  request rejected: {e}"),
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    // 4. Read the aggregate serving metrics.
    let stats = server.stats();
    println!("\n== ServerStats ==\n{stats}");
    println!(
        "\n  => {:.0} predictions/s wall-clock over the load phase",
        (clients * per_client) as f64 / wall
    );
    server.shutdown();
}
