//! Algorithm/hardware co-design on the LRA-Text task (the paper's Fig. 18
//! experiment): sweep the joint design space, print the Pareto front and the
//! chosen design, then verify the chosen FABNet actually learns the proxy
//! task at small scale.
//!
//! Run with: `cargo run --release --example lra_text_codesign`

use fabnet::codesign::run_codesign;
use fabnet::prelude::*;

fn main() {
    // 1. The Section VI-C design space (LRA-Text on a VCU128), explored with
    //    the fast surrogate accuracy model.
    let space = DesignSpace::lra_vcu128();
    let estimator = HeuristicAccuracy::lra_text();
    let options = CodesignOptions { seq_len: 1024, max_accuracy_loss: 0.01, num_threads: 2 };
    println!("Exploring {} raw design points...", space.cardinality());
    let result = run_codesign(&space, &estimator, &options);
    println!(
        "  {} feasible points evaluated, {} rejected for FPGA resources",
        result.points.len(),
        result.infeasible
    );

    println!("\n== Pareto front (accuracy vs latency) ==");
    for p in result.pareto_front() {
        println!(
            "  D_hid={:4} R_ffn={} N_total={} N_ABfly={} | P_be={:3} P_qk={:3} P_sv={:3} | acc {:.3} lat {:9.3} ms",
            p.point.model.hidden,
            p.point.model.ffn_ratio,
            p.point.model.num_layers,
            p.point.model.num_abfly,
            p.point.hardware.num_be,
            p.point.hardware.pqk,
            p.point.hardware.psv,
            p.accuracy,
            p.latency_ms
        );
    }

    let chosen = result.chosen_point().expect("a design should meet the 1% accuracy constraint");
    println!("\n== Chosen design (fastest within 1% accuracy loss) ==");
    println!(
        "  FABNet: D_hid={} R_ffn={} N_total={} N_ABfly={}",
        chosen.point.model.hidden,
        chosen.point.model.ffn_ratio,
        chosen.point.model.num_layers,
        chosen.point.model.num_abfly
    );
    println!(
        "  Hardware: P_be={} P_bu={} P_qk={} P_sv={} ({} DSPs, {} BRAMs)",
        chosen.point.hardware.num_be,
        chosen.point.hardware.num_bu,
        chosen.point.hardware.pqk,
        chosen.point.hardware.psv,
        chosen.dsps,
        chosen.brams
    );
    println!(
        "  Simulated latency: {:.3} ms, estimated accuracy {:.3}",
        chosen.latency_ms, chosen.accuracy
    );
    if let Some(speedup) = result.max_speedup_in_accuracy_band(0.02) {
        println!("  Up to {speedup:.0}x faster than designs in the same accuracy band");
    }

    // 2. Sanity-check the chosen algorithm configuration by actually training
    //    it (at reduced width/sequence length) on the LRA-Text proxy.
    println!("\n== Training the chosen architecture shape on the LRA-Text proxy ==");
    let mut tiny = chosen.point.model.clone();
    tiny.hidden = tiny.hidden.min(32);
    tiny.num_heads = 2;
    let pipeline = TrainingPipeline::new(LraTask::Text, 64, 3).with_examples(60, 30).with_epochs(4);
    let trained = pipeline.run(&tiny, ModelKind::FabNet);
    println!("  held-out accuracy at toy scale: {:.2}", trained.report.test_accuracy);
}
