//! Quickstart: build FABNet, count its savings, and simulate it on the
//! adaptable butterfly accelerator.
//!
//! Run with: `cargo run --release --example quickstart`

use fabnet::nn::flops;
use fabnet::prelude::*;

fn main() {
    // 1. The three model families the paper compares.
    let fabnet = ModelConfig::fabnet_base();
    let transformer = ModelConfig::bert_base();
    let seq = 1024;

    let fab = flops::flops_breakdown(&fabnet, ModelKind::FabNet, seq);
    let dense = flops::flops_breakdown(&transformer, ModelKind::Transformer, seq);
    println!("== Algorithm: FABNet vs vanilla Transformer (seq {seq}) ==");
    println!("  Transformer GFLOPs : {:8.2}", dense.total() as f64 / 1e9);
    println!("  FABNet GFLOPs      : {:8.2}", fab.total() as f64 / 1e9);
    println!("  FLOP reduction     : {:8.1}x", dense.total() as f64 / fab.total() as f64);
    let fab_params = flops::param_breakdown(&fabnet, ModelKind::FabNet).total_without_embedding();
    let dense_params =
        flops::param_breakdown(&transformer, ModelKind::Transformer).total_without_embedding();
    println!("  Model-size reduction: {:7.1}x", dense_params as f64 / fab_params as f64);

    // 2. The hardware: the paper's 120-BE VCU128 design.
    let hw = AcceleratorConfig::vcu128_be120();
    println!("\n== Hardware: adaptable butterfly accelerator ==");
    println!("  Butterfly engines  : {}", hw.num_be);
    println!("  Multipliers        : {}", hw.num_multipliers());
    let usage = fabnet::accel::resources::estimate(&hw);
    let power = fabnet::accel::power::estimate(&hw);
    println!("  DSPs / BRAMs       : {} / {}", usage.dsps, usage.brams);
    println!("  Power              : {:.2} W", power.total());

    // 3. Simulate FABNet-Base end to end for several sequence lengths.
    println!("\n== Simulated end-to-end latency (FABNet-Base) ==");
    let sim = Simulator::new(hw);
    for seq in [128usize, 256, 512, 1024] {
        let schedule = LayerSchedule::from_model(&fabnet, ModelKind::FabNet, seq);
        let report = sim.simulate(&schedule);
        println!(
            "  seq {seq:>5}: {:8.3} ms   ({:6.1} GOP/s achieved, {:4.1}% ops memory-bound)",
            report.total_ms(),
            report.achieved_gops(),
            100.0 * report.memory_bound_fraction()
        );
    }

    // 4. Train a tiny FABNet on an LRA-proxy task and check it learns.
    println!("\n== Tiny FABNet trained on the LRA-Text proxy ==");
    let tiny = ModelConfig {
        hidden: 32,
        ffn_ratio: 2,
        num_layers: 2,
        num_abfly: 0,
        num_heads: 2,
        vocab_size: 32,
        max_seq: 64,
        num_classes: 2,
    };
    let pipeline = TrainingPipeline::new(LraTask::Text, 64, 7).with_examples(60, 30).with_epochs(4);
    let trained = pipeline.run(&tiny, ModelKind::FabNet);
    println!("  final train loss   : {:.4}", trained.report.final_loss());
    println!("  held-out accuracy  : {:.2}", trained.report.test_accuracy);
    let eval = trained.simulate(&AcceleratorConfig::vcu128_fabnet());
    println!(
        "  simulated latency  : {:.4} ms on the 64-BE co-designed accelerator",
        eval.latency_ms
    );
}
