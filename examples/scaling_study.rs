//! Scaling study across platforms: compare the butterfly accelerator against
//! the baseline MAC accelerator, server GPUs and edge devices for FABNet-Base
//! and FABNet-Large across sequence lengths (the paper's Fig. 19 / Fig. 20
//! experiments in one place).
//!
//! Run with: `cargo run --release --example scaling_study`

use fabnet::baselines::sota::{comparison_table, paper_this_work};
use fabnet::prelude::*;

fn main() {
    let seqs = [128usize, 256, 512, 1024];

    // 1. Algorithm + hardware speedup over the baseline MAC design (Fig. 19).
    println!("== Speedup breakdown over the 2048-multiplier MAC baseline (Fig. 19) ==");
    let baseline = MacBaseline::vcu128_2048();
    let butterfly = Simulator::new(AcceleratorConfig::vcu128_be120());
    for (name, config) in
        [("Base", ModelConfig::fabnet_base()), ("Large", ModelConfig::fabnet_large())]
    {
        let bert =
            if name == "Base" { ModelConfig::bert_base() } else { ModelConfig::bert_large() };
        for &seq in &seqs {
            let bert_sched = LayerSchedule::from_model(&bert, ModelKind::Transformer, seq);
            let fab_sched = LayerSchedule::from_model(&config, ModelKind::FabNet, seq);
            let t_bert_baseline = baseline.simulate(&bert_sched).total_seconds();
            let t_fab_baseline = baseline.simulate(&fab_sched).total_seconds();
            let t_fab_butterfly = butterfly.simulate(&fab_sched).total_seconds();
            println!(
                "  {name:<5} seq {seq:>4}: algorithm {:4.1}x, hardware {:5.1}x, combined {:6.1}x",
                t_bert_baseline / t_fab_baseline,
                t_fab_baseline / t_fab_butterfly,
                t_bert_baseline / t_fab_butterfly
            );
        }
    }

    // 2. Server scenario: VCU128 vs V100 / TITAN Xp (Fig. 20a).
    println!("\n== Server scenario: VCU128 (120 BEs) vs GPUs (Fig. 20a) ==");
    let vcu = Simulator::new(AcceleratorConfig::vcu128_be120());
    let fpga_power = fabnet::accel::power::estimate(vcu.config()).total();
    for (name, config) in
        [("Base", ModelConfig::fabnet_base()), ("Large", ModelConfig::fabnet_large())]
    {
        for &seq in &seqs {
            let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, seq);
            let fpga = vcu.simulate(&schedule);
            for gpu_kind in [DeviceKind::V100, DeviceKind::TitanXp] {
                let gpu = DeviceModel::new(gpu_kind);
                let gpu_latency = gpu.simulate(&schedule, 2);
                let speedup = gpu_latency / fpga.total_seconds();
                let fpga_eff = fpga.achieved_gops() / fpga_power;
                let gpu_eff = gpu.gops_per_watt(schedule.total_flops(), gpu_latency);
                println!(
                    "  {name:<5} seq {seq:>4} vs {:<16}: {speedup:5.1}x faster, {:5.1}x more energy-efficient",
                    gpu.name,
                    fpga_eff / gpu_eff
                );
            }
        }
    }

    // 3. Edge scenario: Zynq 7045 vs Jetson Nano / Raspberry Pi 4 (Fig. 20b).
    println!("\n== Edge scenario: Zynq 7045 (512 multipliers) vs edge devices (Fig. 20b) ==");
    let zynq = Simulator::new(AcceleratorConfig::zynq7045_edge());
    let zynq_power = fabnet::accel::power::estimate(zynq.config()).total();
    let edge_model = ModelConfig::fabnet_base();
    for &seq in &seqs {
        let schedule = LayerSchedule::from_model(&edge_model, ModelKind::FabNet, seq);
        let fpga = zynq.simulate(&schedule);
        for kind in [DeviceKind::JetsonNano, DeviceKind::RaspberryPi4] {
            let dev = DeviceModel::new(kind);
            let dev_latency = dev.simulate(&schedule, 2);
            println!(
                "  Base seq {seq:>4} vs {:<16}: {:6.1}x faster, {:6.1}x more energy-efficient",
                dev.name,
                dev_latency / fpga.total_seconds(),
                (fpga.achieved_gops() / zynq_power)
                    / dev.gops_per_watt(schedule.total_flops(), dev_latency)
            );
        }
    }

    // 4. SOTA accelerator comparison (Table V) using the normalised BE-40 design.
    println!("\n== SOTA accelerator comparison under the 128-multiplier budget (Table V) ==");
    let be40 = Simulator::new(AcceleratorConfig::vcu128_be40());
    let one_layer = ModelConfig {
        num_layers: 1,
        num_abfly: 0,
        hidden: 64,
        ffn_ratio: 4,
        ..ModelConfig::fabnet_base()
    };
    let schedule = LayerSchedule::from_model(&one_layer, ModelKind::FabNet, 1024);
    let ours = be40.simulate(&schedule);
    let our_power = fabnet::accel::power::estimate(be40.config()).total();
    println!(
        "  paper reports {:.1} ms at {:.2} W; reproduced {:.2} ms at {:.2} W",
        paper_this_work().latency_ms,
        paper_this_work().power_w,
        ours.total_ms(),
        our_power
    );
    for row in comparison_table(ours.total_ms(), our_power) {
        println!(
            "  {:<28} latency {:7.2} ms  throughput {:8.1} pred/s  power {:6.2} W  energy {:6.2} pred/J  speedup {:6.1}x",
            row.name, row.latency_ms, row.throughput, row.power_w, row.energy_eff, row.speedup_of_this_work
        );
    }
}
