//! End-to-end integration tests spanning the whole stack: LRA-proxy data →
//! FABNet training (`fab-lra` + `fab-nn`) → accelerator simulation
//! (`fab-accel`) → comparison against baselines (`fab-baselines`).

use fabnet::nn::flops;
use fabnet::prelude::*;

fn tiny_config() -> ModelConfig {
    ModelConfig {
        hidden: 16,
        ffn_ratio: 2,
        num_layers: 1,
        num_abfly: 0,
        num_heads: 2,
        vocab_size: 32,
        max_seq: 32,
        num_classes: 2,
    }
}

#[test]
fn fabnet_learns_the_text_proxy_and_runs_on_the_accelerator() {
    let pipeline =
        TrainingPipeline::new(LraTask::Text, 32, 42).with_examples(40, 20).with_epochs(5);
    let trained = pipeline.run(&tiny_config(), ModelKind::FabNet);
    assert!(
        trained.report.test_accuracy >= 0.6,
        "FABNet should beat chance on the text proxy, got {}",
        trained.report.test_accuracy
    );
    let eval = trained.simulate(&AcceleratorConfig::vcu128_fabnet());
    assert!(eval.latency_ms > 0.0 && eval.latency_ms < 10.0);
    assert!(eval.power_w > 5.0 && eval.power_w < 20.0);
}

#[test]
fn fabnet_fnet_and_transformer_all_train_on_the_retrieval_proxy() {
    let pipeline =
        TrainingPipeline::new(LraTask::Retrieval, 32, 9).with_examples(24, 12).with_epochs(2);
    for kind in [ModelKind::FabNet, ModelKind::FNet, ModelKind::Transformer] {
        let trained = pipeline.run(&tiny_config(), kind);
        assert!(trained.report.final_loss().is_finite(), "{kind:?} training diverged");
        assert!(trained.report.test_accuracy >= 0.0 && trained.report.test_accuracy <= 1.0);
    }
}

#[test]
fn every_lra_proxy_task_feeds_the_full_pipeline() {
    for task in LraTask::ALL {
        let mut config = tiny_config();
        config.vocab_size = task.vocab_size();
        config.num_classes = task.num_classes();
        let pipeline = TrainingPipeline::new(task, 32, 1).with_examples(6, 4).with_epochs(1);
        let trained = pipeline.run(&config, ModelKind::FabNet);
        assert!(trained.report.final_loss().is_finite(), "{} diverged", task.name());
        let eval = trained.simulate(&AcceleratorConfig::vcu128_fabnet());
        assert!(eval.latency_ms > 0.0, "{} produced a zero-latency schedule", task.name());
    }
}

#[test]
fn paper_headline_flop_and_param_reductions_hold() {
    // Abstract: 10-66x fewer FLOPs and 2-22x fewer parameters than the
    // vanilla Transformer across the LRA tasks (sequence lengths 1K-4K).
    let fabnet = ModelConfig::fabnet_base();
    let transformer = ModelConfig::bert_base();
    for task in LraTask::ALL {
        let seq = task.paper_seq_len();
        let flop_reduction =
            flops::flops_reduction(&fabnet, &transformer, ModelKind::Transformer, seq);
        assert!(
            flop_reduction > 8.0,
            "{}: FLOP reduction {flop_reduction} below the paper's range",
            task.name()
        );
    }
    let param_reduction = flops::param_reduction(&fabnet, &transformer, ModelKind::Transformer);
    assert!(param_reduction > 2.0, "parameter reduction {param_reduction}");
}

#[test]
fn butterfly_accelerator_beats_every_baseline_platform_on_fabnet() {
    // The qualitative claim behind Figs. 19-20: on FABNet workloads the
    // butterfly accelerator is faster than the MAC baseline with the same
    // memory system and faster than the edge CPU/GPU models.
    let config = ModelConfig::fabnet_base();
    let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, 256);
    let butterfly = Simulator::new(AcceleratorConfig::vcu128_be120()).simulate(&schedule);
    let baseline = MacBaseline::vcu128_2048().simulate(&schedule);
    assert!(baseline.total_seconds() > butterfly.total_seconds());
    for kind in [DeviceKind::JetsonNano, DeviceKind::RaspberryPi4] {
        let device = DeviceModel::new(kind);
        assert!(
            device.simulate(&schedule, 2) > butterfly.total_seconds(),
            "{:?} should be slower than the accelerator",
            kind
        );
    }
}
