//! Cross-validation of the accelerator's functional datapath against the
//! neural-network reference implementation — the reproduction of the paper's
//! Appendix C methodology ("we cross-validate the functionality and
//! correctness of our RTL design with the ground-truth results generated from
//! PyTorch").

use fabnet::accel::functional::{
    cross_validate_butterfly, execute_butterfly_linear_rows, execute_fft,
};
use fabnet::accel::memory::{Layout, TransformAccessReport};
use fabnet::butterfly::fft::{fft, fft2_real};
use fabnet::butterfly::{fourier_mix, ButterflyMatrix, Complex};
use fabnet::tensor::{uniform, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn butterfly_unit_datapath_matches_reference_for_model_sized_transforms() {
    // 1024 is the padded butterfly size of FABNet-Base's projections.
    let mut rng = StdRng::seed_from_u64(100);
    for &n in &[64usize, 256, 1024] {
        let matrix = ButterflyMatrix::random(n, &mut rng).unwrap();
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let cv = cross_validate_butterfly(&matrix, &x, 16);
        assert!(cv.passes(1e-3), "n={n}: error {}", cv.max_abs_error);
    }
}

#[test]
fn accelerator_executes_a_butterfly_ffn_layer_identically_to_the_nn_layer() {
    // A FABNet FFN layer applies a butterfly matrix to every row of the
    // activation tile; the functional engine must agree with the reference
    // used during training.
    let mut rng = StdRng::seed_from_u64(7);
    let matrix = ButterflyMatrix::random(64, &mut rng).unwrap();
    let activations = uniform(&mut rng, &[16, 64], -2.0, 2.0);
    let on_accelerator = execute_butterfly_linear_rows(&matrix, &activations);
    let reference = matrix.forward_rows(&activations);
    assert!(on_accelerator.allclose(&reference, 1e-3));
}

#[test]
fn fft_mode_agrees_with_the_fourier_mixing_layer() {
    // The FBfly block's token mixing is a 2-D real FFT. Check the BU FFT mode
    // against the software FFT, and the software 2-D transform against the
    // layer used by FNet/FABNet.
    let mut rng = StdRng::seed_from_u64(9);
    let n = 128;
    let x: Vec<Complex> = (0..n)
        .map(|_| Complex::new(rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)))
        .collect();
    let hw = execute_fft(&x);
    let sw = fft(&x);
    for (a, b) in hw.iter().zip(sw.iter()) {
        assert!((*a - *b).abs() < 1e-2);
    }

    let seq = 16;
    let hidden = 32;
    let tile: Vec<f32> = (0..seq * hidden).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let raw = fft2_real(&tile, seq, hidden);
    let layer = fourier_mix(&Tensor::from_vec(tile.clone(), &[seq, hidden]).unwrap());
    for (a, b) in raw.iter().zip(layer.as_slice().iter()) {
        assert!((a - b).abs() < 1e-3);
    }
}

#[test]
fn butterfly_memory_layout_is_conflict_free_for_model_sized_transforms() {
    // The sizes that actually occur in FABNet-Base/Large schedules.
    for &n in &[1024usize, 4096] {
        for &banks in &[8usize, 16, 32] {
            let report = TransformAccessReport::analyze(Layout::Butterfly, n, banks);
            assert!(report.is_conflict_free(), "n={n} banks={banks}");
            // And the naive layouts are not, which is what motivates the S2P design.
            assert!(
                !TransformAccessReport::analyze(Layout::ColumnMajor, n, banks).is_conflict_free()
            );
        }
    }
}

#[test]
fn simulated_latency_is_consistent_with_operation_counts() {
    // The simulator's cycle counts must never beat the theoretical minimum
    // implied by the multiplier count (a basic sanity bound the paper's
    // cycle-accurate model also satisfies).
    use fabnet::prelude::*;
    let config = ModelConfig::fabnet_base();
    let hw = AcceleratorConfig::vcu128_be120();
    let sim = Simulator::new(hw.clone());
    for seq in [128usize, 512, 1024] {
        let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, seq);
        let report = sim.simulate(&schedule);
        // Each butterfly needs 4 multiplies; the design has `num_multipliers`.
        let butterflies: u64 = schedule.total_flops() / 6;
        let min_cycles = 4 * butterflies / hw.num_multipliers() as u64;
        assert!(
            report.total_cycles as f64 >= 0.5 * min_cycles as f64,
            "seq {seq}: simulated {} cycles below the theoretical floor {min_cycles}",
            report.total_cycles
        );
    }
}
