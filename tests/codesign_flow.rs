//! Integration test of the co-design flow (Fig. 15 / Fig. 18): the joint
//! sweep must reproduce the paper's qualitative outcome — a pure-FBfly FABNet
//! with a wide Butterfly Processor and no Attention Processor is chosen for
//! the long-sequence LRA-Text workload — and the trained-accuracy path must
//! plug into the same machinery.

use fabnet::codesign::{run_codesign, TrainedAccuracy};
use fabnet::prelude::*;

#[test]
fn lra_text_codesign_reproduces_the_papers_chosen_design_shape() {
    let space = DesignSpace::lra_vcu128();
    let estimator = HeuristicAccuracy::lra_text();
    let options = CodesignOptions { seq_len: 1024, max_accuracy_loss: 0.01, num_threads: 2 };
    let result = run_codesign(&space, &estimator, &options);

    assert!(result.points.len() > 100, "expected a substantial feasible space");
    assert!(result.infeasible > 0, "resource filtering should reject some designs");

    let chosen = result.chosen_point().expect("a design must satisfy the 1% constraint");
    // Section VI-C: the chosen designs use the full-width Butterfly Processor
    // (P_be = 64 or more at P_bu = 4) and no Attention Processor units.
    assert!(chosen.point.hardware.num_be >= 64, "chosen P_be {}", chosen.point.hardware.num_be);
    assert_eq!(chosen.point.hardware.pqk, 0);
    assert_eq!(chosen.point.hardware.psv, 0);
    assert_eq!(chosen.point.model.num_abfly, 0, "LRA-Text should not need ABfly blocks");
    // Accuracy constraint is respected.
    assert!(chosen.accuracy >= result.reference_accuracy - options.max_accuracy_loss);

    // Fig. 18's headline: within the explored space, the chosen point is much
    // faster than other points in the same accuracy band.
    let speedup = result.max_speedup_in_accuracy_band(0.02).unwrap_or(1.0);
    assert!(speedup > 10.0, "expected a large latency spread, got {speedup:.1}x");
}

#[test]
fn every_pareto_point_fits_the_target_fpga() {
    let space = DesignSpace::tiny_for_tests();
    let result = run_codesign(
        &space,
        &HeuristicAccuracy::lra_image(),
        &CodesignOptions { seq_len: 256, max_accuracy_loss: 0.05, num_threads: 2 },
    );
    for p in result.pareto_front() {
        assert!(fabnet::accel::resources::check_fits(&p.point.hardware).is_ok());
        assert!(p.dsps <= space.device.dsps);
    }
}

#[test]
fn trained_accuracy_estimator_drives_the_sweep_at_tiny_scale() {
    // The faithful (training-based) accuracy path, shrunk to a couple of
    // candidates so it runs in seconds.
    let mut space = DesignSpace::tiny_for_tests();
    space.hidden = vec![16];
    space.ffn_ratio = vec![2];
    space.num_layers = vec![1];
    space.num_abfly = vec![0];
    space.num_be = vec![16, 64];
    space.pqk = vec![0];
    space.psv = vec![0];
    let estimator = TrainedAccuracy::tiny(LraTask::Text, 4);
    let options = CodesignOptions { seq_len: 32, max_accuracy_loss: 1.0, num_threads: 1 };
    let result = run_codesign(&space, &estimator, &options);
    assert_eq!(result.points.len(), 2);
    // Same model on both hardware points: identical accuracy, different latency.
    assert!((result.points[0].accuracy - result.points[1].accuracy).abs() < 1e-9);
    assert!(result.points[0].latency_ms < result.points[1].latency_ms);
    assert!(result.chosen_point().is_some());
}
