//! # fab-chaos
//!
//! Deterministic fault injection for the serving stack. A
//! [`ChaosInjector`] holds one independent, seeded xorshift stream per
//! *site* — a named place in the code that asks "should this call fail?"
//! — so a test, bench, or chaos-smoke job that fixes the seed and the
//! per-site call sequence gets the exact same fault schedule every run.
//! That determinism is the whole point: overload and recovery claims are
//! gated on reproducible fault timelines, not on whatever a wall-clock
//! raced into.
//!
//! Sites ([`ChaosSite`]):
//!
//! - `slow_forward` — stretch a forward pass by a configured delay,
//! - `panic_forward` — panic inside the forward pass (exercises the
//!   batch-isolation retry and, when persistent, circuit breakers),
//! - `snapshot_save` — fail a snapshot write with an injected I/O error,
//! - `accept_stall` — stall the daemon's accept loop.
//!
//! Each site is off until configured with a rate `every` (fire on draws
//! where `xorshift() % every == 0`; `1` = always, `0` = off) and an
//! optional millisecond parameter for the delay sites. Configuration is
//! lock-free and runtime-mutable — the daemon exposes it behind the same
//! `fault_injection` gate as `inject_worker_exit` — and every fired
//! injection is counted for the `fabd_chaos_injected_total{site}` metric.
//!
//! The crate is std-only and dependency-free so every layer (serve,
//! store, daemon) can hook a site without new build edges.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A place in the code where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSite {
    /// Stretch a forward pass by [`SiteStatus::param_ms`].
    SlowForward,
    /// Panic inside a forward pass.
    PanicForward,
    /// Fail a snapshot save with an I/O error.
    SnapshotSave,
    /// Stall the accept loop by [`SiteStatus::param_ms`].
    AcceptStall,
}

impl ChaosSite {
    /// Every site, in the order used by snapshots and metrics.
    pub const ALL: [ChaosSite; 4] = [
        ChaosSite::SlowForward,
        ChaosSite::PanicForward,
        ChaosSite::SnapshotSave,
        ChaosSite::AcceptStall,
    ];

    /// Canonical snake_case name (metric label / admin API value).
    pub fn name(self) -> &'static str {
        match self {
            ChaosSite::SlowForward => "slow_forward",
            ChaosSite::PanicForward => "panic_forward",
            ChaosSite::SnapshotSave => "snapshot_save",
            ChaosSite::AcceptStall => "accept_stall",
        }
    }

    /// Parses a canonical name back into a site.
    pub fn parse(s: &str) -> Option<Self> {
        ChaosSite::ALL.into_iter().find(|site| site.name() == s)
    }

    fn index(self) -> usize {
        match self {
            ChaosSite::SlowForward => 0,
            ChaosSite::PanicForward => 1,
            ChaosSite::SnapshotSave => 2,
            ChaosSite::AcceptStall => 3,
        }
    }
}

/// One site's lock-free state: schedule knobs, its private xorshift
/// stream, and the fired count.
#[derive(Debug)]
struct SiteState {
    /// Fire on draws where `xorshift() % every == 0`; 0 disables.
    every: AtomicU64,
    /// Millisecond parameter for the delay sites.
    param_ms: AtomicU64,
    /// xorshift64* state; never zero.
    rng: AtomicU64,
    /// Faults actually fired at this site.
    injected: AtomicU64,
}

/// A point-in-time view of one site, for `/v1/stats` and admin replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteStatus {
    /// The site this row describes.
    pub site: ChaosSite,
    /// Current rate (0 = off, 1 = every draw, N = ~1/N of draws).
    pub every: u64,
    /// Millisecond parameter (delay sites only; 0 otherwise).
    pub param_ms: u64,
    /// Faults fired at this site since the injector was created.
    pub injected: u64,
}

/// Mixes `seed` and a site index into a non-zero xorshift starting state
/// (splitmix64 finalizer), so sites draw from independent streams even
/// with small seeds.
fn mix_seed(seed: u64, site: usize) -> u64 {
    let mut z = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(site as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z | 1 // xorshift state must be non-zero
}

/// The seeded fault scheduler. See the crate docs.
#[derive(Debug)]
pub struct ChaosInjector {
    seed: u64,
    sites: [SiteState; 4],
}

impl ChaosInjector {
    /// A fresh injector with every site off, drawing from streams derived
    /// from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sites: std::array::from_fn(|i| SiteState {
                every: AtomicU64::new(0),
                param_ms: AtomicU64::new(0),
                rng: AtomicU64::new(mix_seed(seed, i)),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// The seed the per-site streams were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets one site's schedule: fire on ~1 of `every` draws (`1` =
    /// always, `0` = off), with `param_ms` as the delay for the stall
    /// sites. Does not reset the site's stream or fired count.
    pub fn configure(&self, site: ChaosSite, every: u64, param_ms: u64) {
        let s = &self.sites[site.index()];
        s.param_ms.store(param_ms, Ordering::Relaxed);
        s.every.store(every, Ordering::Relaxed);
    }

    /// Turns every site off and restarts every stream from the seed, so a
    /// cleared injector re-configured identically replays the same
    /// schedule. Fired counts are kept (they are monotonic metrics).
    pub fn reset(&self) {
        for (i, s) in self.sites.iter().enumerate() {
            s.every.store(0, Ordering::Relaxed);
            s.param_ms.store(0, Ordering::Relaxed);
            s.rng.store(mix_seed(self.seed, i), Ordering::Relaxed);
        }
    }

    /// Draws the site's next schedule decision: `true` means the caller
    /// must inject the fault now (the fired count is already bumped).
    /// A disabled site does not advance its stream, so enabling a site
    /// later still replays its stream from the start.
    pub fn fires(&self, site: ChaosSite) -> bool {
        let s = &self.sites[site.index()];
        let every = s.every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        // xorshift64*: race on the state only interleaves which thread
        // gets which draw; the draw *sequence* stays seed-determined.
        let mut x = s.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.rng.store(x, Ordering::Relaxed);
        let fired = x.wrapping_mul(0x2545_f491_4f6c_dd1d).is_multiple_of(every);
        if fired {
            s.injected.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// The site's millisecond parameter as a [`Duration`].
    pub fn param(&self, site: ChaosSite) -> Duration {
        Duration::from_millis(self.sites[site.index()].param_ms.load(Ordering::Relaxed))
    }

    /// Draws the site and, on fire, returns the configured delay for the
    /// caller to sleep. Convenience for the stall sites.
    pub fn stall(&self, site: ChaosSite) -> Option<Duration> {
        if self.fires(site) {
            Some(self.param(site))
        } else {
            None
        }
    }

    /// Faults fired at `site` since creation.
    pub fn injected(&self, site: ChaosSite) -> u64 {
        self.sites[site.index()].injected.load(Ordering::Relaxed)
    }

    /// Snapshots every site in [`ChaosSite::ALL`] order.
    pub fn status(&self) -> Vec<SiteStatus> {
        ChaosSite::ALL
            .into_iter()
            .map(|site| {
                let s = &self.sites[site.index()];
                SiteStatus {
                    site,
                    every: s.every.load(Ordering::Relaxed),
                    param_ms: s.param_ms.load(Ordering::Relaxed),
                    injected: s.injected.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same seed, same configuration, same call sequence → identical
    /// decisions and fired counts. This is the property every chaos-gated
    /// bench claim rests on.
    #[test]
    fn same_seed_replays_the_same_schedule() {
        let run = |seed: u64| -> (Vec<bool>, u64) {
            let inj = ChaosInjector::new(seed);
            inj.configure(ChaosSite::PanicForward, 3, 0);
            let draws: Vec<bool> = (0..64).map(|_| inj.fires(ChaosSite::PanicForward)).collect();
            (draws, inj.injected(ChaosSite::PanicForward))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds should differ somewhere in 64 draws");
    }

    #[test]
    fn disabled_sites_never_fire_and_do_not_advance_the_stream() {
        let inj = ChaosInjector::new(1);
        for _ in 0..32 {
            assert!(!inj.fires(ChaosSite::SlowForward));
        }
        assert_eq!(inj.injected(ChaosSite::SlowForward), 0);
        // Enabling after idle draws replays from the stream's start: the
        // decisions match a fresh injector configured immediately.
        inj.configure(ChaosSite::SlowForward, 2, 5);
        let late: Vec<bool> = (0..32).map(|_| inj.fires(ChaosSite::SlowForward)).collect();
        let fresh = ChaosInjector::new(1);
        fresh.configure(ChaosSite::SlowForward, 2, 5);
        let eager: Vec<bool> = (0..32).map(|_| fresh.fires(ChaosSite::SlowForward)).collect();
        assert_eq!(late, eager);
    }

    #[test]
    fn every_one_always_fires_and_counts() {
        let inj = ChaosInjector::new(42);
        inj.configure(ChaosSite::SnapshotSave, 1, 0);
        for _ in 0..10 {
            assert!(inj.fires(ChaosSite::SnapshotSave));
        }
        assert_eq!(inj.injected(ChaosSite::SnapshotSave), 10);
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        let inj = ChaosInjector::new(9);
        inj.configure(ChaosSite::SlowForward, 2, 1);
        inj.configure(ChaosSite::PanicForward, 2, 0);
        let a: Vec<bool> = (0..64).map(|_| inj.fires(ChaosSite::SlowForward)).collect();
        let b: Vec<bool> = (0..64).map(|_| inj.fires(ChaosSite::PanicForward)).collect();
        assert_ne!(a, b, "same-rate sites should not share one stream");
    }

    #[test]
    fn rate_roughly_matches_every() {
        let inj = ChaosInjector::new(123);
        inj.configure(ChaosSite::AcceptStall, 4, 7);
        let fired = (0..4000).filter(|_| inj.fires(ChaosSite::AcceptStall)).count();
        assert!((700..=1300).contains(&fired), "~1/4 of 4000 expected, got {fired}");
        assert_eq!(inj.param(ChaosSite::AcceptStall), Duration::from_millis(7));
    }

    #[test]
    fn reset_restarts_streams_but_keeps_monotonic_counts() {
        let inj = ChaosInjector::new(5);
        inj.configure(ChaosSite::PanicForward, 2, 0);
        let first: Vec<bool> = (0..16).map(|_| inj.fires(ChaosSite::PanicForward)).collect();
        let fired_before = inj.injected(ChaosSite::PanicForward);
        inj.reset();
        assert!(!inj.fires(ChaosSite::PanicForward), "reset turns sites off");
        inj.configure(ChaosSite::PanicForward, 2, 0);
        let replay: Vec<bool> = (0..16).map(|_| inj.fires(ChaosSite::PanicForward)).collect();
        assert_eq!(first, replay);
        assert!(inj.injected(ChaosSite::PanicForward) >= fired_before);
    }

    #[test]
    fn names_round_trip() {
        for site in ChaosSite::ALL {
            assert_eq!(ChaosSite::parse(site.name()), Some(site));
        }
        assert_eq!(ChaosSite::parse("nope"), None);
    }
}
