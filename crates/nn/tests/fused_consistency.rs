//! PR-3 gradient-path consistency: the arena tape's fused backward (slice
//! kernels, specialized butterfly stages, fused pad ops) and the fused
//! optimisers must match the seed reference path — `backward_reference` plus
//! the reference `Adam`/`Sgd` — to within 1e-6, across model kinds, odd
//! sequence lengths, non-power-of-two hidden sizes and rayon worker counts.

use fab_nn::{
    Adam, Example, FusedAdamW, FusedSgd, Model, ModelConfig, ModelKind, Optimizer, Sgd, TrainStep,
};
use fab_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serialises tests that mutate `RAYON_NUM_THREADS`, which is process-global.
static THREAD_ENV_LOCK: Mutex<()> = Mutex::new(());

/// A configuration whose hidden size is not a power of two, so every
/// butterfly layer exercises the fused pad + truncate path.
fn odd_config() -> ModelConfig {
    ModelConfig {
        hidden: 12,
        ffn_ratio: 2,
        num_layers: 2,
        num_abfly: 1,
        num_heads: 2,
        vocab_size: 19,
        max_seq: 24,
        num_classes: 3,
    }
}

/// Largest |fused − reference| gradient difference over every bound
/// parameter of one loss evaluation.
fn max_grad_diff(model: &Model, tokens: &[usize], label: usize) -> f32 {
    let (tape, loss, bindings) = model.loss(tokens, label);
    tape.backward(loss);
    let fused: Vec<Tensor> = bindings.iter().map(|(id, _)| tape.grad(*id)).collect();
    tape.backward_reference(loss);
    let mut max = 0.0f32;
    for (f, (id, _)) in fused.iter().zip(bindings.iter()) {
        let r = tape.grad(*id);
        for (a, b) in f.as_slice().iter().zip(r.as_slice()) {
            max = max.max((a - b).abs());
        }
    }
    max
}

#[test]
fn fused_backward_matches_reference_across_kinds_shapes_and_threads() {
    for kind in [ModelKind::FabNet, ModelKind::FNet, ModelKind::Transformer] {
        let mut rng = StdRng::seed_from_u64(41);
        let model = Model::new(&odd_config(), kind, &mut rng);
        for (tokens_len, label) in [(1usize, 0usize), (5, 2), (7, 1), (13, 0), (24, 2)] {
            let tokens: Vec<usize> = (0..tokens_len).map(|i| (i * 7 + 3) % 19).collect();
            for threads in ["1", "5", "7"] {
                let _guard = THREAD_ENV_LOCK.lock().unwrap();
                std::env::set_var("RAYON_NUM_THREADS", threads);
                let diff = max_grad_diff(&model, &tokens, label);
                std::env::remove_var("RAYON_NUM_THREADS");
                assert!(
                    diff <= 1e-6,
                    "{kind:?} seq {tokens_len} @ {threads} threads: fused vs reference grad \
                     diff {diff}"
                );
            }
        }
    }
}

/// Reads every trainable parameter of `model` (via a throwaway binding pass).
fn param_snapshot(model: &Model) -> Vec<Tensor> {
    let (_tape, _loss, bindings) = model.loss(&[1, 2, 3], 0);
    bindings.iter().map(|(_, p)| p.value()).collect()
}

fn max_param_diff(a: &[Tensor], b: &[Tensor]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut max = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        for (u, v) in x.as_slice().iter().zip(y.as_slice()) {
            max = max.max((u - v).abs());
        }
    }
    max
}

/// Trains two identically-initialised models — one on the full fused path
/// (reused `TrainStep` + arena backward + `FusedAdamW`), one on the seed
/// reference path (fresh tape each step + `backward_reference` + `Adam`) —
/// and asserts the parameters stay within 1e-6.
#[test]
fn fused_training_path_matches_reference_training_path() {
    let config = odd_config();
    let examples: Vec<Example> = (0..12)
        .map(|i| {
            let len = 3 + (i * 5) % 17;
            Example::new((0..len).map(|j| (j * 11 + i) % 19).collect(), i % 3)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(77);
    let fused_model = Model::new(&config, ModelKind::FabNet, &mut rng);
    let mut rng = StdRng::seed_from_u64(77);
    let ref_model = Model::new(&config, ModelKind::FabNet, &mut rng);

    let mut step = TrainStep::new(FusedAdamW::new(2e-3));
    let mut ref_opt = Adam::new(2e-3);
    for ex in &examples {
        let fused_loss = step.step(&fused_model, &ex.tokens, ex.label);
        let (tape, loss, bindings) = ref_model.loss(&ex.tokens, ex.label);
        tape.backward_reference(loss);
        ref_opt.step(&tape, &bindings);
        let ref_loss = tape.value_scalar(loss);
        assert!((fused_loss - ref_loss).abs() <= 1e-6, "loss diverged: {fused_loss} vs {ref_loss}");
    }
    let diff = max_param_diff(&param_snapshot(&fused_model), &param_snapshot(&ref_model));
    assert!(diff <= 1e-6, "fused vs reference training diverged: max param diff {diff}");
}

/// Same comparison for the fused SGD against the seed SGD.
#[test]
fn fused_sgd_training_matches_reference_sgd() {
    let config = odd_config();
    let mut rng = StdRng::seed_from_u64(5);
    let fused_model = Model::new(&config, ModelKind::FabNet, &mut rng);
    let mut rng = StdRng::seed_from_u64(5);
    let ref_model = Model::new(&config, ModelKind::FabNet, &mut rng);

    let mut step = TrainStep::new(FusedSgd::new(1e-2));
    let mut ref_opt = Sgd::new(1e-2);
    for i in 0..8 {
        let tokens: Vec<usize> = (0..(5 + i % 3)).map(|j| (j * 3 + i) % 19).collect();
        step.step(&fused_model, &tokens, i % 3);
        let (tape, loss, bindings) = ref_model.loss(&tokens, i % 3);
        tape.backward_reference(loss);
        ref_opt.step(&tape, &bindings);
    }
    let diff = max_param_diff(&param_snapshot(&fused_model), &param_snapshot(&ref_model));
    assert!(diff <= 1e-6, "fused vs reference SGD diverged: max param diff {diff}");
}

/// The reused-tape path must not depend on the worker count: training the
/// same model with different `RAYON_NUM_THREADS` yields identical losses.
#[test]
fn train_step_losses_are_thread_count_invariant() {
    let config = odd_config();
    let tokens: Vec<usize> = (0..17).map(|i| (i * 5 + 1) % 19).collect();
    let mut baseline: Option<Vec<f32>> = None;
    for threads in ["1", "5", "7"] {
        let _guard = THREAD_ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let mut rng = StdRng::seed_from_u64(13);
        let model = Model::new(&config, ModelKind::FabNet, &mut rng);
        let mut step = TrainStep::new(FusedAdamW::new(1e-3));
        let losses: Vec<f32> = (0..6).map(|i| step.step(&model, &tokens, i % 3)).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        match &baseline {
            None => baseline = Some(losses),
            Some(b) => assert_eq!(b, &losses, "losses diverged at {threads} threads"),
        }
    }
}
