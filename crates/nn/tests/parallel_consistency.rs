//! PR-2 parallel-consistency tests: the rayon-parallel `predict_batch` /
//! `evaluate` and the frozen batched forward must agree with the serial
//! per-example tape path across worker-thread counts, including
//! `RAYON_NUM_THREADS=1`.

use fab_nn::{evaluate, Example, Model, ModelConfig, ModelKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Serialises tests that mutate `RAYON_NUM_THREADS`, which is process-global.
static THREAD_ENV_LOCK: Mutex<()> = Mutex::new(());

fn mixed_length_batch(rng: &mut StdRng, n: usize, vocab: usize, max_len: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..=max_len);
            (0..len).map(|_| rng.gen_range(0..vocab)).collect()
        })
        .collect()
}

#[test]
fn predict_batch_matches_serial_predict_across_thread_counts() {
    let config = ModelConfig::tiny_for_tests();
    for kind in [ModelKind::FabNet, ModelKind::FNet, ModelKind::Transformer] {
        let mut rng = StdRng::seed_from_u64(11);
        let model = Model::new(&config, kind, &mut rng);
        let batch = mixed_length_batch(&mut rng, 9, config.vocab_size, config.max_seq);
        let serial: Vec<Vec<f32>> = batch.iter().map(|t| model.predict(t)).collect();
        for threads in ["1", "5", "7"] {
            let _guard = THREAD_ENV_LOCK.lock().unwrap();
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let parallel = model.predict_batch(&batch);
            std::env::remove_var("RAYON_NUM_THREADS");
            assert_eq!(serial, parallel, "{kind:?} diverged at {threads} threads");
        }
    }
}

#[test]
fn evaluate_matches_serial_accuracy_across_thread_counts() {
    let config = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(23);
    let model = Model::new(&config, ModelKind::FabNet, &mut rng);
    let examples: Vec<Example> = mixed_length_batch(&mut rng, 17, config.vocab_size, 12)
        .into_iter()
        .map(|tokens| Example::new(tokens, 0))
        .collect();
    let serial = examples.iter().filter(|ex| model.predict_class(&ex.tokens) == ex.label).count()
        as f32
        / examples.len() as f32;
    for threads in ["1", "4"] {
        let _guard = THREAD_ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let parallel = evaluate(&model, &examples);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(serial, parallel, "accuracy diverged at {threads} threads");
    }
}

#[test]
fn small_batches_use_the_serial_path_and_still_match() {
    let config = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(3);
    let model = Model::new(&config, ModelKind::FNet, &mut rng);
    let batch = mixed_length_batch(&mut rng, 2, config.vocab_size, 10);
    let serial: Vec<Vec<f32>> = batch.iter().map(|t| model.predict(t)).collect();
    assert_eq!(serial, model.predict_batch(&batch));
}
