//! Counted-allocation proof of the PR-3 tentpole: once the arena tape, the
//! gradient buffers and the optimiser moments have warmed up, a steady-state
//! training step performs (almost) no heap allocation — the only remaining
//! allocations are the boxed backward closures of the custom butterfly ops,
//! a bounded handful per step.
//!
//! This lives in its own integration-test binary because it installs a
//! counting global allocator.

use fab_nn::{FusedAdamW, Model, ModelConfig, ModelKind, TrainStep};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// An attention-only FABNet (no Fourier blocks, whose FFT still stages
/// internal buffers) that is small enough for every kernel to take its
/// serial path — so the measurement is deterministic.
fn abfly_config() -> ModelConfig {
    ModelConfig {
        hidden: 16,
        ffn_ratio: 2,
        num_layers: 2,
        num_abfly: 2,
        num_heads: 2,
        vocab_size: 16,
        max_seq: 16,
        num_classes: 2,
    }
}

#[test]
fn steady_state_train_steps_reuse_tape_grad_and_optimizer_buffers() {
    let mut rng = StdRng::seed_from_u64(3);
    let model = Model::new(&abfly_config(), ModelKind::FabNet, &mut rng);
    let tokens = [1usize, 2, 3, 4, 5, 6, 7, 0];
    let mut step = TrainStep::new(FusedAdamW::new(1e-3));

    // First step: arenas, gradient buffers and optimiser moments warm up.
    let before = allocations();
    step.step(&model, &tokens, 1);
    let first_step = allocations() - before;

    // A few more warmup steps (second-step growth, pool fills).
    for _ in 0..3 {
        step.step(&model, &tokens, 0);
    }

    // Steady state: capacities must be flat and per-step allocations tiny.
    let node_cap = step.tape().node_capacity();
    let buffer_cap = step.tape().buffer_capacity();
    let moment_cap = step.optimizer().state_capacity();
    let mut steady_max = 0u64;
    for i in 0..8 {
        let before = allocations();
        step.step(&model, &tokens, i % 2);
        let during = allocations() - before;
        steady_max = steady_max.max(during);
        assert_eq!(step.tape().node_capacity(), node_cap, "tape node storage grew at step {i}");
        assert_eq!(step.tape().buffer_capacity(), buffer_cap, "tape buffers grew at step {i}");
        assert_eq!(step.optimizer().state_capacity(), moment_cap, "moments grew at step {i}");
    }

    // The only steady-state allocations are the boxed custom-op backward
    // closures (one small Box per butterfly op) and the per-attention-layer
    // head list — a bounded handful, orders of magnitude below warmup.
    assert!(
        steady_max <= 64,
        "steady-state step allocated {steady_max} times (expected a bounded handful)"
    );
    assert!(
        steady_max * 10 <= first_step,
        "steady-state step ({steady_max} allocs) is not clearly cheaper than warmup \
         ({first_step} allocs)"
    );
}

/// Changing the sequence length re-warms the tape once, after which the new
/// shape is steady too.
#[test]
fn switching_sequence_lengths_settles_after_one_step() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = Model::new(&abfly_config(), ModelKind::FabNet, &mut rng);
    let short = [1usize, 2, 3, 4];
    let long = [1usize, 2, 3, 4, 5, 6, 7, 0, 9, 10, 11, 12];
    let mut step = TrainStep::new(FusedAdamW::new(1e-3));
    for _ in 0..2 {
        step.step(&model, &short, 0);
        step.step(&model, &long, 1);
    }
    // Alternating between the two warmed shapes stays in reused storage:
    // the long shape's buffers dominate and neither shape grows them.
    let buffer_cap = step.tape().buffer_capacity();
    for i in 0..6 {
        let tokens: &[usize] = if i % 2 == 0 { &short } else { &long };
        step.step(&model, tokens, i % 2);
        assert_eq!(step.tape().buffer_capacity(), buffer_cap, "buffers grew at step {i}");
    }
}
