//! PR-4 model-level SIMD consistency: logits, losses and gradients computed
//! under the SIMD backend must stay close to the scalar backend across every
//! model kind (the FMA matmul and fast-exponential softmax shift values by
//! rounding only), and the frozen serving path must track the tape path on
//! both backends.
//!
//! Tests serialise on one lock because the forced backend is process-global.

use fab_nn::{Model, ModelConfig, ModelKind};
use fab_tensor::simd::{self, Backend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let prev = simd::backend();
    simd::force_backend(b);
    let r = f();
    simd::force_backend(prev);
    r
}

fn config() -> ModelConfig {
    ModelConfig {
        hidden: 16,
        ffn_ratio: 2,
        num_layers: 2,
        num_abfly: 1,
        num_heads: 2,
        vocab_size: 23,
        max_seq: 32,
        num_classes: 4,
    }
}

#[test]
fn logits_losses_and_gradients_track_the_scalar_backend_across_kinds() {
    let _g = lock();
    if !simd::default_backend().is_simd() {
        return;
    }
    for kind in [ModelKind::Transformer, ModelKind::FNet, ModelKind::FabNet] {
        let model = Model::new(&config(), kind, &mut StdRng::seed_from_u64(5));
        let tokens: Vec<usize> = (0..13).map(|i| (i * 5 + 2) % 23).collect();
        let run = |backend| {
            with_backend(backend, || {
                let logits = model.predict(&tokens);
                let (tape, loss, bindings) = model.loss(&tokens, 1);
                tape.backward(loss);
                let grads: Vec<Vec<f32>> =
                    bindings.iter().map(|(id, _)| tape.grad(*id).into_vec()).collect();
                (logits, tape.value_scalar(loss), grads)
            })
        };
        let scalar = run(Backend::Scalar);
        let native = run(simd::default_backend());
        for (a, b) in native.0.iter().zip(scalar.0.iter()) {
            assert!(
                (a - b).abs() <= 1e-4,
                "{kind:?}: logits drifted {} across backends",
                (a - b).abs()
            );
        }
        assert!(
            (native.1 - scalar.1).abs() <= 1e-4,
            "{kind:?}: loss drifted {} across backends",
            (native.1 - scalar.1).abs()
        );
        let mut max = 0.0f32;
        for (gn, gs) in native.2.iter().zip(scalar.2.iter()) {
            for (a, b) in gn.iter().zip(gs.iter()) {
                max = max.max((a - b).abs());
            }
        }
        assert!(max <= 1e-3, "{kind:?}: gradients drifted {max} across backends");
    }
}

#[test]
fn frozen_logits_match_tape_predict_on_both_backends() {
    let _g = lock();
    for backend in [Backend::Scalar, simd::default_backend()] {
        with_backend(backend, || {
            for kind in [ModelKind::Transformer, ModelKind::FNet, ModelKind::FabNet] {
                let model = Model::new(&config(), kind, &mut StdRng::seed_from_u64(9));
                let frozen = model.freeze();
                let tokens: Vec<usize> = (0..9).map(|i| (i * 3 + 1) % 23).collect();
                let tape_logits = model.predict(&tokens);
                let frozen_logits = &frozen.logits_batch(&[&tokens[..]], 16)[0];
                // Tape predict and frozen forward share every dispatched
                // kernel, so they stay bit-identical within a backend.
                assert_eq!(
                    tape_logits.as_slice(),
                    &frozen_logits[..],
                    "{kind:?}: frozen logits diverged from tape predict on {}",
                    backend.name()
                );
            }
        });
    }
}
