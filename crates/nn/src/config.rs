//! Model hyper-parameters (the algorithm half of the co-design space).

use serde::{Deserialize, Serialize};

/// Which of the three evaluated architectures a [`crate::Model`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// The vanilla Transformer encoder (dense attention + dense FFN).
    Transformer,
    /// FNet: Fourier token mixing + dense FFN.
    FNet,
    /// FABNet: `num_fbfly` FBfly blocks followed by `num_abfly` ABfly blocks,
    /// all linear layers butterfly-factorised (the paper's contribution).
    FabNet,
}

impl ModelKind {
    /// Human-readable name used in reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Transformer => "Transformer",
            ModelKind::FNet => "FNet",
            ModelKind::FabNet => "FABNet",
        }
    }
}

/// Hyper-parameters shared by all model kinds.
///
/// The four algorithm parameters explored by the paper's co-design flow are
/// `hidden` (D_hid), `ffn_ratio` (R_ffn), `num_layers` (N_total) and
/// `num_abfly` (N_ABfly); the remaining fields describe the task interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden (embedding) dimension `D_hid`.
    pub hidden: usize,
    /// FFN expansion ratio `R_ffn`.
    pub ffn_ratio: usize,
    /// Total number of encoder blocks `N_total`.
    pub num_layers: usize,
    /// Number of ABfly (attention) blocks `N_ABfly`; the remaining
    /// `num_layers - num_abfly` blocks are FBfly (Fourier) blocks.
    /// Only meaningful for [`ModelKind::FabNet`].
    pub num_abfly: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Vocabulary size of the embedding table.
    pub vocab_size: usize,
    /// Maximum sequence length (positional-embedding table size).
    pub max_seq: usize,
    /// Number of output classes of the classification head.
    pub num_classes: usize,
}

impl ModelConfig {
    /// FABNet-Base defaults from Section VI-A:
    /// `D_hid = 768, R_ffn = 4, N_total = 12, N_ABfly = 0`.
    pub fn fabnet_base() -> Self {
        Self {
            hidden: 768,
            ffn_ratio: 4,
            num_layers: 12,
            num_abfly: 0,
            num_heads: 12,
            vocab_size: 256,
            max_seq: 4096,
            num_classes: 10,
        }
    }

    /// FABNet-Large defaults from Section VI-A:
    /// `D_hid = 1024, R_ffn = 4, N_total = 24, N_ABfly = 0`.
    pub fn fabnet_large() -> Self {
        Self {
            hidden: 1024,
            ffn_ratio: 4,
            num_layers: 24,
            num_abfly: 0,
            num_heads: 16,
            vocab_size: 256,
            max_seq: 4096,
            num_classes: 10,
        }
    }

    /// A BERT-Base-shaped vanilla Transformer (12 layers, 768 hidden).
    pub fn bert_base() -> Self {
        Self {
            hidden: 768,
            ffn_ratio: 4,
            num_layers: 12,
            num_abfly: 12,
            num_heads: 12,
            vocab_size: 256,
            max_seq: 4096,
            num_classes: 10,
        }
    }

    /// A BERT-Large-shaped vanilla Transformer (24 layers, 1024 hidden).
    pub fn bert_large() -> Self {
        Self {
            hidden: 1024,
            ffn_ratio: 4,
            num_layers: 24,
            num_abfly: 24,
            num_heads: 16,
            vocab_size: 256,
            max_seq: 4096,
            num_classes: 10,
        }
    }

    /// A deliberately tiny configuration for unit tests and doc examples.
    pub fn tiny_for_tests() -> Self {
        Self {
            hidden: 16,
            ffn_ratio: 2,
            num_layers: 2,
            num_abfly: 1,
            num_heads: 2,
            vocab_size: 32,
            max_seq: 16,
            num_classes: 4,
        }
    }

    /// Number of FBfly (Fourier) blocks in a FABNet with this configuration.
    pub fn num_fbfly(&self) -> usize {
        self.num_layers.saturating_sub(self.num_abfly)
    }

    /// Returns a copy with a different hidden size.
    pub fn with_hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Returns a copy with a different layer count.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.num_layers = layers;
        self
    }

    /// Returns a copy with a different number of ABfly blocks.
    pub fn with_abfly(mut self, abfly: usize) -> Self {
        self.num_abfly = abfly;
        self
    }

    /// Validates internal consistency (heads divide hidden, ABfly count does
    /// not exceed total layers).
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0 || self.num_layers == 0 {
            return Err("hidden size and layer count must be positive".into());
        }
        if !self.hidden.is_multiple_of(self.num_heads) {
            return Err(format!(
                "hidden size {} is not divisible by {} heads",
                self.hidden, self.num_heads
            ));
        }
        if self.num_abfly > self.num_layers {
            return Err(format!(
                "num_abfly {} exceeds num_layers {}",
                self.num_abfly, self.num_layers
            ));
        }
        Ok(())
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::fabnet_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_defaults() {
        let base = ModelConfig::fabnet_base();
        assert_eq!((base.hidden, base.ffn_ratio, base.num_layers, base.num_abfly), (768, 4, 12, 0));
        let large = ModelConfig::fabnet_large();
        assert_eq!((large.hidden, large.num_layers), (1024, 24));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ModelConfig::tiny_for_tests();
        assert!(c.validate().is_ok());
        c.num_heads = 3;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny_for_tests();
        c.num_abfly = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fbfly_count_is_remainder() {
        let c = ModelConfig::tiny_for_tests();
        assert_eq!(c.num_fbfly() + c.num_abfly, c.num_layers);
    }

    #[test]
    fn builder_style_modifiers_apply() {
        let c = ModelConfig::fabnet_base().with_hidden(256).with_layers(6).with_abfly(2);
        assert_eq!((c.hidden, c.num_layers, c.num_abfly), (256, 6, 2));
    }
}
