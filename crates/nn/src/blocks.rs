//! Encoder blocks: the vanilla Transformer block, the FNet block, and the
//! paper's ABfly and FBfly blocks (Fig. 5).
//!
//! Blocks compose the batched layers of [`crate::layers`]; a block forward
//! records one tape node per fused batch operation (projection, mixing,
//! normalisation), so both the forward and the backward sweep execute on the
//! row-parallel kernels of `fab-tensor` / `fab-butterfly`.

use crate::frozen::{FrozenBlock, FrozenMixing};
use crate::layers::{FeedForward, FourierMixing, LayerNorm, MultiHeadAttention};
use crate::param::Bindings;
use fab_tensor::{Tape, VarId};
use rand::rngs::StdRng;

/// A single encoder block mapping `[seq, hidden]` to `[seq, hidden]`.
pub trait EncoderBlock {
    /// Applies the block.
    fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId;
    /// Number of trainable scalars in the block.
    fn num_params(&self) -> usize;
    /// FLOPs of one forward pass over a `seq`-length input.
    fn flops(&self, seq: usize) -> u64;
    /// Short name used in schedules and reports.
    fn name(&self) -> &'static str;
    /// Whether the block contains a (dense-score) attention module, which the
    /// accelerator must schedule on the Attention Processor.
    fn uses_attention(&self) -> bool;
    /// Snapshots the block's current weights into its tape-free frozen form
    /// (see [`crate::FrozenModel`]).
    fn freeze(&self) -> FrozenBlock;
}

fn residual_ln(tape: &Tape, ln: &LayerNorm, x: VarId, fx: VarId, bindings: &mut Bindings) -> VarId {
    let sum = tape.add(x, fx);
    ln.forward(tape, sum, bindings)
}

/// The vanilla Transformer encoder block: dense multi-head attention followed
/// by a dense FFN, each wrapped in shortcut addition and layer normalisation.
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    hidden: usize,
}

impl TransformerBlock {
    /// Creates a block with dense attention and a dense FFN.
    pub fn new(
        name: &str,
        hidden: usize,
        heads: usize,
        ffn_ratio: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            attn: MultiHeadAttention::new_dense(&format!("{name}.attn"), hidden, heads, rng),
            ffn: FeedForward::new_dense(&format!("{name}.ffn"), hidden, ffn_ratio, rng),
            ln1: LayerNorm::new(&format!("{name}.ln1"), hidden),
            ln2: LayerNorm::new(&format!("{name}.ln2"), hidden),
            hidden,
        }
    }
}

impl EncoderBlock for TransformerBlock {
    fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let a = self.attn.forward(tape, x, bindings);
        let x = residual_ln(tape, &self.ln1, x, a, bindings);
        let f = self.ffn.forward(tape, x, bindings);
        residual_ln(tape, &self.ln2, x, f, bindings)
    }

    fn num_params(&self) -> usize {
        self.attn.num_params()
            + self.ffn.num_params()
            + self.ln1.num_params()
            + self.ln2.num_params()
    }

    fn flops(&self, seq: usize) -> u64 {
        self.attn.flops(seq)
            + self.ffn.flops(seq)
            + 2 * fab_butterfly::flops::layer_norm_flops(seq, self.hidden)
    }

    fn name(&self) -> &'static str {
        "Transformer"
    }

    fn uses_attention(&self) -> bool {
        true
    }

    fn freeze(&self) -> FrozenBlock {
        FrozenBlock {
            mixing: FrozenMixing::Attention(Box::new(self.attn.freeze())),
            ffn: self.ffn.freeze(),
            ln1: self.ln1.freeze(),
            ln2: self.ln2.freeze(),
        }
    }
}

/// The FNet encoder block: parameter-free Fourier token mixing followed by a
/// dense FFN.
pub struct FNetBlock {
    fourier: FourierMixing,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    hidden: usize,
}

impl FNetBlock {
    /// Creates a block with Fourier mixing and a dense FFN.
    pub fn new(name: &str, hidden: usize, ffn_ratio: usize, rng: &mut StdRng) -> Self {
        Self {
            fourier: FourierMixing::new(),
            ffn: FeedForward::new_dense(&format!("{name}.ffn"), hidden, ffn_ratio, rng),
            ln1: LayerNorm::new(&format!("{name}.ln1"), hidden),
            ln2: LayerNorm::new(&format!("{name}.ln2"), hidden),
            hidden,
        }
    }
}

impl EncoderBlock for FNetBlock {
    fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let m = self.fourier.forward(tape, x);
        let x = residual_ln(tape, &self.ln1, x, m, bindings);
        let f = self.ffn.forward(tape, x, bindings);
        residual_ln(tape, &self.ln2, x, f, bindings)
    }

    fn num_params(&self) -> usize {
        self.ffn.num_params() + self.ln1.num_params() + self.ln2.num_params()
    }

    fn flops(&self, seq: usize) -> u64 {
        self.fourier.flops(seq, self.hidden)
            + self.ffn.flops(seq)
            + 2 * fab_butterfly::flops::layer_norm_flops(seq, self.hidden)
    }

    fn name(&self) -> &'static str {
        "FNet"
    }

    fn uses_attention(&self) -> bool {
        false
    }

    fn freeze(&self) -> FrozenBlock {
        FrozenBlock {
            mixing: FrozenMixing::Fourier,
            ffn: self.ffn.freeze(),
            ln1: self.ln1.freeze(),
            ln2: self.ln2.freeze(),
        }
    }
}

/// FABNet's ABfly block: butterfly-factorised Q/K/V/output projections around
/// a vanilla attention core, followed by a butterfly FFN.
pub struct ABflyBlock {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    hidden: usize,
}

impl ABflyBlock {
    /// Creates an ABfly block.
    pub fn new(
        name: &str,
        hidden: usize,
        heads: usize,
        ffn_ratio: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            attn: MultiHeadAttention::new_butterfly(&format!("{name}.attn"), hidden, heads, rng),
            ffn: FeedForward::new_butterfly(&format!("{name}.ffn"), hidden, ffn_ratio, rng),
            ln1: LayerNorm::new(&format!("{name}.ln1"), hidden),
            ln2: LayerNorm::new(&format!("{name}.ln2"), hidden),
            hidden,
        }
    }
}

impl EncoderBlock for ABflyBlock {
    fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let a = self.attn.forward(tape, x, bindings);
        let x = residual_ln(tape, &self.ln1, x, a, bindings);
        let f = self.ffn.forward(tape, x, bindings);
        residual_ln(tape, &self.ln2, x, f, bindings)
    }

    fn num_params(&self) -> usize {
        self.attn.num_params()
            + self.ffn.num_params()
            + self.ln1.num_params()
            + self.ln2.num_params()
    }

    fn flops(&self, seq: usize) -> u64 {
        self.attn.flops(seq)
            + self.ffn.flops(seq)
            + 2 * fab_butterfly::flops::layer_norm_flops(seq, self.hidden)
    }

    fn name(&self) -> &'static str {
        "ABfly"
    }

    fn uses_attention(&self) -> bool {
        true
    }

    fn freeze(&self) -> FrozenBlock {
        FrozenBlock {
            mixing: FrozenMixing::Attention(Box::new(self.attn.freeze())),
            ffn: self.ffn.freeze(),
            ln1: self.ln1.freeze(),
            ln2: self.ln2.freeze(),
        }
    }
}

/// FABNet's FBfly block: Fourier token mixing followed by a butterfly FFN —
/// every multiply in the block follows the unified butterfly dataflow.
pub struct FBflyBlock {
    fourier: FourierMixing,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    hidden: usize,
}

impl FBflyBlock {
    /// Creates an FBfly block.
    pub fn new(name: &str, hidden: usize, ffn_ratio: usize, rng: &mut StdRng) -> Self {
        Self {
            fourier: FourierMixing::new(),
            ffn: FeedForward::new_butterfly(&format!("{name}.ffn"), hidden, ffn_ratio, rng),
            ln1: LayerNorm::new(&format!("{name}.ln1"), hidden),
            ln2: LayerNorm::new(&format!("{name}.ln2"), hidden),
            hidden,
        }
    }
}

impl EncoderBlock for FBflyBlock {
    fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let m = self.fourier.forward(tape, x);
        let x = residual_ln(tape, &self.ln1, x, m, bindings);
        let f = self.ffn.forward(tape, x, bindings);
        residual_ln(tape, &self.ln2, x, f, bindings)
    }

    fn num_params(&self) -> usize {
        self.ffn.num_params() + self.ln1.num_params() + self.ln2.num_params()
    }

    fn flops(&self, seq: usize) -> u64 {
        self.fourier.flops(seq, self.hidden)
            + self.ffn.flops(seq)
            + 2 * fab_butterfly::flops::layer_norm_flops(seq, self.hidden)
    }

    fn name(&self) -> &'static str {
        "FBfly"
    }

    fn uses_attention(&self) -> bool {
        false
    }

    fn freeze(&self) -> FrozenBlock {
        FrozenBlock {
            mixing: FrozenMixing::Fourier,
            ffn: self.ffn.freeze(),
            ln1: self.ln1.freeze(),
            ln2: self.ln2.freeze(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_tensor::Tensor;
    use rand::SeedableRng;

    fn run_block(block: &dyn EncoderBlock, seq: usize, hidden: usize) -> Vec<usize> {
        let tape = Tape::new();
        let mut b = Bindings::new();
        let x = tape.leaf(Tensor::ones(&[seq, hidden]));
        let y = block.forward(&tape, x, &mut b);
        tape.shape(y)
    }

    #[test]
    fn all_blocks_preserve_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let blocks: Vec<Box<dyn EncoderBlock>> = vec![
            Box::new(TransformerBlock::new("t", 8, 2, 2, &mut rng)),
            Box::new(FNetBlock::new("f", 8, 2, &mut rng)),
            Box::new(ABflyBlock::new("a", 8, 2, 2, &mut rng)),
            Box::new(FBflyBlock::new("b", 8, 2, &mut rng)),
        ];
        for block in &blocks {
            assert_eq!(run_block(block.as_ref(), 4, 8), vec![4, 8], "{}", block.name());
        }
    }

    #[test]
    fn butterfly_blocks_have_fewer_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let dense = TransformerBlock::new("t", 64, 4, 4, &mut rng);
        let bfly = ABflyBlock::new("a", 64, 4, 4, &mut rng);
        assert!(dense.num_params() > 3 * bfly.num_params());
        let fnet = FNetBlock::new("f", 64, 4, &mut rng);
        let fbfly = FBflyBlock::new("b", 64, 4, &mut rng);
        assert!(fnet.num_params() > 3 * fbfly.num_params());
    }

    #[test]
    fn fbfly_is_cheapest_in_flops() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = TransformerBlock::new("t", 64, 4, 4, &mut rng);
        let a = ABflyBlock::new("a", 64, 4, 4, &mut rng);
        let f = FBflyBlock::new("b", 64, 4, &mut rng);
        let seq = 256;
        assert!(t.flops(seq) > a.flops(seq));
        assert!(a.flops(seq) > f.flops(seq));
    }

    #[test]
    fn attention_flag_matches_block_type() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(TransformerBlock::new("t", 8, 2, 2, &mut rng).uses_attention());
        assert!(ABflyBlock::new("a", 8, 2, 2, &mut rng).uses_attention());
        assert!(!FNetBlock::new("f", 8, 2, &mut rng).uses_attention());
        assert!(!FBflyBlock::new("b", 8, 2, &mut rng).uses_attention());
    }
}
