//! # fab-nn
//!
//! Neural-network layers, blocks and end-to-end models for the FABNet
//! reproduction: the vanilla Transformer encoder, FNet, and FABNet itself
//! (the paper's hybrid of FBfly and ABfly blocks), together with analytic
//! FLOP/parameter models, optimisers and a small training loop.
//!
//! Everything is built on the [`fab_tensor`] autodiff tape and the
//! [`fab_butterfly`] kernels, so a FABNet trained here exercises exactly the
//! butterfly/FFT dataflow that the accelerator simulator (`fab-accel`)
//! models in hardware.
//!
//! # Example
//!
//! ```rust
//! use fab_nn::{ModelConfig, ModelKind, Model};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let config = ModelConfig::tiny_for_tests();
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = Model::new(&config, ModelKind::FabNet, &mut rng);
//! let tokens = vec![1usize, 2, 3, 4, 5, 6, 7, 0];
//! let logits = model.predict(&tokens);
//! assert_eq!(logits.len(), config.num_classes);
//! ```

#![warn(missing_docs)]

mod blocks;
mod config;
pub mod flops;
pub mod frozen;
mod layers;
mod models;
mod optim;
mod param;
mod train;

pub use blocks::{ABflyBlock, EncoderBlock, FBflyBlock, FNetBlock, TransformerBlock};
pub use config::{ModelConfig, ModelKind};
pub use flops::{FlopsBreakdown, ParamBreakdown};
pub use frozen::{
    argmax, attention_mix_rows, FrozenAttention, FrozenBlock, FrozenFeedForward, FrozenLayerNorm,
    FrozenLinear, FrozenMixing, FrozenModel,
};
pub use layers::{
    ButterflyLinear, ClassifierHead, DenseLinear, Embedding, FeedForward, FourierMixing, LayerNorm,
    Linear, MultiHeadAttention,
};
pub use models::Model;
pub use optim::{Adam, FusedAdamW, FusedSgd, Optimizer, Sgd};
pub use param::{Bindings, Param};
pub use train::{evaluate, train_classifier, Example, TrainOptions, TrainReport, TrainStep};
