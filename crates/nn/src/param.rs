//! Shared trainable parameters and their per-forward tape bindings.

use fab_tensor::{Tape, Tensor, VarId};
use std::cell::RefCell;
use std::rc::Rc;

/// A trainable parameter shared between a layer and the optimiser.
///
/// Layers hold `Param`s; on every forward pass the parameter value is pushed
/// onto the tape as a leaf and the `(VarId, Param)` pair is recorded in a
/// [`Bindings`] list, which the optimiser later walks to apply gradients.
#[derive(Clone, Debug)]
pub struct Param {
    inner: Rc<RefCell<Tensor>>,
    name: String,
}

impl Param {
    /// Wraps a tensor as a trainable parameter with a diagnostic name.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Self { inner: Rc::new(RefCell::new(value)), name: name.into() }
    }

    /// Returns a clone of the current parameter value.
    pub fn value(&self) -> Tensor {
        self.inner.borrow().clone()
    }

    /// Replaces the parameter value.
    pub fn set(&self, value: Tensor) {
        *self.inner.borrow_mut() = value;
    }

    /// Applies `f` to the parameter value in place.
    pub fn update<F: FnOnce(&mut Tensor)>(&self, f: F) {
        f(&mut self.inner.borrow_mut());
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Returns `true` when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pushes the current value onto `tape` as a leaf, records the binding,
    /// and returns the leaf's variable id.
    ///
    /// The value is copied into the tape's reused leaf buffer
    /// ([`Tape::leaf_copy`]), so re-binding the same parameters every
    /// training step performs no allocation.
    pub fn bind(&self, tape: &Tape, bindings: &mut Bindings) -> VarId {
        let id = tape.leaf_copy(&self.inner.borrow());
        bindings.push(id, self.clone());
        id
    }
}

/// The list of `(VarId, Param)` pairs produced by one forward pass.
#[derive(Default, Debug)]
pub struct Bindings {
    entries: Vec<(VarId, Param)>,
}

impl Bindings {
    /// Creates an empty binding list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `param` was bound to tape variable `id`.
    pub fn push(&mut self, id: VarId, param: Param) {
        self.entries.push((id, param));
    }

    /// Empties the binding list while retaining its capacity, so a reused
    /// [`crate::TrainStep`] re-binds without allocating.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the bound `(VarId, Param)` pairs in binding order.
    pub fn iter(&self) -> impl Iterator<Item = &(VarId, Param)> {
        self.entries.iter()
    }

    /// Total number of scalar parameters bound.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|(_, p)| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_updates_are_shared_across_clones() {
        let p = Param::new("w", Tensor::zeros(&[2, 2]));
        let q = p.clone();
        p.update(|t| t.as_mut_slice()[0] = 5.0);
        assert_eq!(q.value().as_slice()[0], 5.0);
        assert_eq!(q.name(), "w");
    }

    #[test]
    fn bind_records_leaf_and_binding() {
        let tape = Tape::new();
        let mut bindings = Bindings::new();
        let p = Param::new("w", Tensor::ones(&[3]));
        let id = p.bind(&tape, &mut bindings);
        assert_eq!(tape.value(id).as_slice(), &[1.0, 1.0, 1.0]);
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings.num_scalars(), 3);
    }
}
