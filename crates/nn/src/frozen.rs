//! Tape-free frozen inference: a trained [`crate::Model`] snapshotted into
//! plain weight tensors with a batched, allocation-lean forward path.
//!
//! The training path records every operation on the autodiff [`Tape`], which
//! clones activations into graph nodes and keeps backward closures alive —
//! exactly the bookkeeping a serving runtime must not pay per request.
//! [`Model::freeze`](crate::Model::freeze) copies the current parameter
//! values out of their `Rc<RefCell<_>>` cells into a [`FrozenModel`]: an
//! immutable, `Send + Sync` snapshot whose forward pass calls the PR-1
//! batched kernels (`Tensor::matmul`, `ButterflyMatrix::forward_rows`,
//! `fourier_mix`, the row-parallel softmax/layer-norm) directly.
//!
//! # Batched execution and exactness
//!
//! [`FrozenModel::forward_batch`] packs `B` sequences, padded to a common
//! `pad_to` length, into one `[B * pad_to, hidden]` activation tensor. All
//! row-wise work — projections (dense and butterfly), FFNs, layer norms,
//! GELU, biases — runs fused over the whole batch, which is where dynamic
//! batching earns its throughput. The token-mixing operators (the attention
//! core and the 2-D Fourier mix), which couple rows *within* one sequence,
//! run per example on that example's true-length row segment; padding rows
//! are never mixed into real rows. Because every kernel invoked here is
//! bit-compatible with its serial reference and computes each output row
//! independently of the surrounding batch, the logits produced for a request
//! are **bit-identical** to the single-request tape path regardless of batch
//! composition, padding, or worker-thread count.
//!
//! [`FrozenModel::with_fast_math`] additionally swaps GELU (and the
//! attention score scaling order) for the serving-grade
//! [`fab_tensor::fastmath`] kernels: logits then differ from the tape path
//! by at most ~1e-6 but remain deterministic and bit-invariant to batch
//! composition — batching never changes a fast-math answer either.

use crate::config::{ModelConfig, ModelKind};
use fab_butterfly::{fourier_mix, ButterflyMatrix};
use fab_tensor::Tensor;
use rayon::prelude::*;

/// Below this many activation elements the per-example mixing loop stays on
/// the calling thread; the rayon shim spawns OS threads per call, which only
/// pays off for real work.
const PAR_MIN_ELEMS: usize = 1 << 14;

/// A frozen (inference-only) linear map: the tape-free counterpart of the
/// [`crate::Linear`] layer implementations.
#[derive(Debug, Clone)]
pub enum FrozenLinear {
    /// Dense `y = x W + b`.
    Dense {
        /// `[d_in, d_out]` weight matrix.
        w: Tensor,
        /// `[d_out]` bias.
        b: Tensor,
    },
    /// Butterfly-factorised map with zero-padding to the power-of-two
    /// transform size and truncation back to `d_out`, exactly as in
    /// [`crate::ButterflyLinear`].
    Butterfly {
        /// The factorised butterfly matrix of size `n`.
        bfly: ButterflyMatrix,
        /// `[d_out]` bias.
        b: Tensor,
        /// Input feature dimension (before padding).
        d_in: usize,
        /// Output feature dimension (after truncation).
        d_out: usize,
    },
}

impl FrozenLinear {
    /// Applies the map to a `[rows, d_in]` tensor, returning `[rows, d_out]`.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not have `d_in` columns.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            FrozenLinear::Dense { w, b } => x.matmul(w).add_row_broadcast(b),
            FrozenLinear::Butterfly { bfly, b, d_in, d_out } => {
                assert_eq!(x.cols(), *d_in, "frozen butterfly input width mismatch");
                // Zero-padding to the transform size is fused into the
                // butterfly's batch copy (bit-identical to concat + forward).
                let y = bfly.forward_rows_padded(x);
                let trimmed = if *d_out < bfly.size() { y.slice_cols(0, *d_out) } else { y };
                trimmed.add_row_broadcast(b)
            }
        }
    }

    /// Output feature dimension.
    pub fn d_out(&self) -> usize {
        match self {
            FrozenLinear::Dense { w, .. } => w.cols(),
            FrozenLinear::Butterfly { d_out, .. } => *d_out,
        }
    }
}

/// Frozen layer normalisation (learned scale/shift, fixed epsilon).
#[derive(Debug, Clone)]
pub struct FrozenLayerNorm {
    pub(crate) gamma: Tensor,
    pub(crate) beta: Tensor,
    pub(crate) eps: f32,
}

impl FrozenLayerNorm {
    /// Reassembles a frozen layer norm from its parts (the inverse of the
    /// accessors, used by snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics when `gamma` and `beta` differ in length or `eps` is not
    /// finite and positive.
    pub fn new(gamma: Tensor, beta: Tensor, eps: f32) -> Self {
        assert_eq!(gamma.len(), beta.len(), "layer norm gamma/beta length mismatch");
        assert!(eps.is_finite() && eps > 0.0, "layer norm epsilon must be finite and positive");
        Self { gamma, beta, eps }
    }

    /// Learned per-feature scale.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma
    }

    /// Learned per-feature shift.
    pub fn beta(&self) -> &Tensor {
        &self.beta
    }

    /// Variance epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Normalises each row of `x`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.layer_norm_rows(&self.gamma, &self.beta, self.eps)
    }

    /// Fused residual shortcut: normalises each row of `x + fx`
    /// (bit-identical to `forward(&x.add(fx))`, one pass).
    pub fn forward_residual(&self, x: &Tensor, fx: &Tensor) -> Tensor {
        x.add_layer_norm_rows(fx, &self.gamma, &self.beta, self.eps)
    }
}

/// Frozen two-layer feed-forward network with GELU activation.
#[derive(Debug, Clone)]
pub struct FrozenFeedForward {
    pub(crate) lin1: FrozenLinear,
    pub(crate) lin2: FrozenLinear,
}

impl FrozenFeedForward {
    /// Reassembles a frozen FFN from its two linear maps (snapshot restore).
    pub fn new(lin1: FrozenLinear, lin2: FrozenLinear) -> Self {
        Self { lin1, lin2 }
    }

    /// The expanding linear map (`hidden → ffn`).
    pub fn lin1(&self) -> &FrozenLinear {
        &self.lin1
    }

    /// The contracting linear map (`ffn → hidden`).
    pub fn lin2(&self) -> &FrozenLinear {
        &self.lin2
    }

    /// Applies `lin2(gelu(lin1(x)))` over a whole `[rows, hidden]` batch;
    /// `fast_math` selects the serving-grade GELU kernel (absolute error
    /// ≤ 1e-6, see [`fab_tensor::fastmath`]).
    pub fn forward(&self, x: &Tensor, fast_math: bool) -> Tensor {
        let h = self.lin1.forward(x);
        let a = if fast_math { h.gelu_fastmath() } else { h.gelu() };
        self.lin2.forward(&a)
    }
}

/// Frozen multi-head self-attention.
#[derive(Debug, Clone)]
pub struct FrozenAttention {
    pub(crate) wq: FrozenLinear,
    pub(crate) wk: FrozenLinear,
    pub(crate) wv: FrozenLinear,
    pub(crate) wo: FrozenLinear,
    pub(crate) dim: usize,
    pub(crate) num_heads: usize,
}

impl FrozenAttention {
    /// Reassembles frozen attention from its four projections (snapshot
    /// restore).
    ///
    /// # Panics
    ///
    /// Panics when `num_heads` does not divide `dim`.
    pub fn new(
        wq: FrozenLinear,
        wk: FrozenLinear,
        wv: FrozenLinear,
        wo: FrozenLinear,
        dim: usize,
        num_heads: usize,
    ) -> Self {
        assert!(
            num_heads > 0 && dim.is_multiple_of(num_heads),
            "heads must divide the feature dimension"
        );
        Self { wq, wk, wv, wo, dim, num_heads }
    }

    /// The query projection.
    pub fn wq(&self) -> &FrozenLinear {
        &self.wq
    }

    /// The key projection.
    pub fn wk(&self) -> &FrozenLinear {
        &self.wk
    }

    /// The value projection.
    pub fn wv(&self) -> &FrozenLinear {
        &self.wv
    }

    /// The output projection.
    pub fn wo(&self) -> &FrozenLinear {
        &self.wo
    }

    /// Model (embedding) dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Applies self-attention to a flat `[B * pad_to, dim]` batch.
    ///
    /// The four projections run fused over the whole batch; the
    /// `softmax(QKᵀ)·V` core runs per example on its true-length segment, so
    /// padding rows never contribute attention mass.
    fn forward_batch(
        &self,
        x: &Tensor,
        pad_to: usize,
        lengths: &[usize],
        fast_math: bool,
    ) -> Tensor {
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        // Fast-math mode pre-scales Q once (`(c·q)·kᵀ` instead of
        // `c·(q·kᵀ)`): same value up to rounding, but the scaling pass runs
        // over `[rows, dim]` instead of every `[len, len]` score matrix.
        let q = if fast_math {
            let head_scale = 1.0 / ((self.dim / self.num_heads) as f32).sqrt();
            q.scale(head_scale)
        } else {
            q
        };
        let dim = self.dim;
        let mut mixed = vec![0.0f32; x.len()];
        let core = |i: usize, chunk: &mut [f32]| {
            let len = lengths[i];
            let start = i * pad_to;
            let (qi, ki, vi) = (
                q.slice_rows(start, start + len),
                k.slice_rows(start, start + len),
                v.slice_rows(start, start + len),
            );
            attention_mix_rows(&qi, &ki, &vi, self.num_heads, fast_math, &mut chunk[..len * dim]);
        };
        run_per_example(&mut mixed, pad_to * dim, core);
        let mixed = Tensor::from_vec(mixed, &[x.rows(), dim]).expect("attention batch shape");
        self.wo.forward(&mixed)
    }
}

/// The f32 `softmax(QKᵀ)·V` attention core on one example's projected
/// `[len, dim]` q/k/v, scattering the mixed heads into `out` (`len · dim`
/// values, the layout a `concat_cols` would produce).
///
/// `prescaled` says the query was already multiplied by `1/√head_dim` (the
/// fast-math path's `(c·q)·kᵀ` ordering); otherwise the raw scores are
/// scaled. One transpose of K per example; head `h`'s transposed slice is
/// then a contiguous row range of `kt`, with exactly the values
/// `slice_cols(kh).transpose()` would produce — the per-head matmul stays
/// bit-identical to the tape path's. Exposed as the single shared core so
/// post-training tooling (`fab-quant`'s calibration replay and quantized
/// forward) runs exactly the math the frozen model serves.
///
/// # Panics
///
/// Panics when the shapes are inconsistent or `num_heads` does not divide
/// the feature dimension.
pub fn attention_mix_rows(
    qi: &Tensor,
    ki: &Tensor,
    vi: &Tensor,
    num_heads: usize,
    prescaled: bool,
    out: &mut [f32],
) {
    let dim = qi.cols();
    let len = qi.rows();
    assert!(
        num_heads > 0 && dim.is_multiple_of(num_heads),
        "heads must divide the feature dimension"
    );
    assert_eq!(out.len(), len * dim, "attention output chunk length mismatch");
    let head_dim = dim / num_heads;
    let scale = 1.0 / (head_dim as f32).sqrt();
    let kt = ki.transpose();
    for h in 0..num_heads {
        let (lo, hi) = (h * head_dim, (h + 1) * head_dim);
        let qh = qi.slice_cols(lo, hi);
        let kh_t = kt.slice_rows(lo, hi);
        let vh = vi.slice_cols(lo, hi);
        let raw = qh.matmul(&kh_t);
        let scores = if prescaled { raw } else { raw.scale(scale) };
        let head = scores.softmax_rows().matmul(&vh);
        for (r, hrow) in head.as_slice().chunks(head_dim).enumerate() {
            out[r * dim + lo..r * dim + hi].copy_from_slice(hrow);
        }
    }
}

/// The token-mixing half of a frozen encoder block.
#[derive(Debug, Clone)]
pub enum FrozenMixing {
    /// Multi-head self-attention (Transformer / ABfly blocks).
    Attention(Box<FrozenAttention>),
    /// Parameter-free 2-D Fourier mixing (FNet / FBfly blocks).
    Fourier,
}

/// One frozen encoder block: token mixing and an FFN, each wrapped in a
/// residual shortcut plus layer normalisation.
#[derive(Debug, Clone)]
pub struct FrozenBlock {
    pub(crate) mixing: FrozenMixing,
    pub(crate) ffn: FrozenFeedForward,
    pub(crate) ln1: FrozenLayerNorm,
    pub(crate) ln2: FrozenLayerNorm,
}

impl FrozenBlock {
    /// Reassembles a frozen block from its halves (snapshot restore).
    pub fn new(
        mixing: FrozenMixing,
        ffn: FrozenFeedForward,
        ln1: FrozenLayerNorm,
        ln2: FrozenLayerNorm,
    ) -> Self {
        Self { mixing, ffn, ln1, ln2 }
    }

    /// The token-mixing half of the block.
    pub fn mixing(&self) -> &FrozenMixing {
        &self.mixing
    }

    /// The feed-forward half of the block.
    pub fn ffn(&self) -> &FrozenFeedForward {
        &self.ffn
    }

    /// Layer norm wrapping the mixing residual.
    pub fn ln1(&self) -> &FrozenLayerNorm {
        &self.ln1
    }

    /// Layer norm wrapping the FFN residual.
    pub fn ln2(&self) -> &FrozenLayerNorm {
        &self.ln2
    }

    /// Applies the block to a flat `[B * pad_to, hidden]` batch.
    fn forward_batch(
        &self,
        x: &Tensor,
        pad_to: usize,
        lengths: &[usize],
        fast_math: bool,
    ) -> Tensor {
        let m = match &self.mixing {
            FrozenMixing::Attention(a) => a.forward_batch(x, pad_to, lengths, fast_math),
            FrozenMixing::Fourier => fourier_batch(x, pad_to, lengths),
        };
        let x = self.ln1.forward_residual(x, &m);
        let f = self.ffn.forward(&x, fast_math);
        self.ln2.forward_residual(&x, &f)
    }
}

/// Per-example 2-D Fourier mixing over true-length segments; padding rows of
/// the output stay zero (they re-enter only via the residual shortcut).
fn fourier_batch(x: &Tensor, pad_to: usize, lengths: &[usize]) -> Tensor {
    let hidden = x.cols();
    let mut mixed = vec![0.0f32; x.len()];
    let mix = |i: usize, chunk: &mut [f32]| {
        let len = lengths[i];
        let start = i * pad_to;
        let xi = Tensor::from_vec(
            x.as_slice()[start * hidden..(start + len) * hidden].to_vec(),
            &[len, hidden],
        )
        .expect("fourier segment shape");
        let yi = fourier_mix(&xi);
        chunk[..len * hidden].copy_from_slice(yi.as_slice());
    };
    run_per_example(&mut mixed, pad_to * hidden, mix);
    Tensor::from_vec(mixed, &[x.rows(), hidden]).expect("fourier batch shape")
}

/// Runs `f(example_index, example_chunk)` over the per-example chunks of
/// `out`, in parallel when the batch is large enough to amortise thread
/// spawns. Each example is computed independently, so results do not depend
/// on the thread count.
fn run_per_example(out: &mut [f32], chunk_elems: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    if out.len() < PAR_MIN_ELEMS || out.len() <= chunk_elems {
        for (i, chunk) in out.chunks_mut(chunk_elems).enumerate() {
            f(i, chunk);
        }
    } else {
        out.par_chunks_mut(chunk_elems).enumerate().for_each(|(i, chunk)| f(i, chunk));
    }
}

/// An immutable, `Send + Sync` inference snapshot of a trained model.
///
/// Produced by [`Model::freeze`](crate::Model::freeze); see the
/// [module docs](self) for the execution model and exactness guarantees.
#[derive(Debug, Clone)]
pub struct FrozenModel {
    pub(crate) config: ModelConfig,
    pub(crate) kind: ModelKind,
    pub(crate) tok_table: Tensor,
    pub(crate) pos_table: Tensor,
    pub(crate) blocks: Vec<FrozenBlock>,
    pub(crate) head: FrozenLinear,
    pub(crate) fast_math: bool,
}

impl FrozenModel {
    /// Reassembles a frozen model from its parts — the inverse of the
    /// component accessors, used by snapshot restore. A model rebuilt from
    /// the exact tensors of a [`Model::freeze`](crate::Model::freeze)
    /// snapshot produces bit-identical logits. Fast math starts disabled;
    /// chain [`FrozenModel::with_fast_math`] to re-enable it.
    ///
    /// # Panics
    ///
    /// Panics when the embedding tables disagree with `config`
    /// (`[vocab_size, hidden]` / `[max_seq, hidden]`) or the block count
    /// differs from `config.num_layers`.
    pub fn from_parts(
        config: ModelConfig,
        kind: ModelKind,
        tok_table: Tensor,
        pos_table: Tensor,
        blocks: Vec<FrozenBlock>,
        head: FrozenLinear,
    ) -> Self {
        assert_eq!(
            tok_table.shape(),
            &[config.vocab_size, config.hidden],
            "token table shape mismatch"
        );
        assert_eq!(
            pos_table.shape(),
            &[config.max_seq, config.hidden],
            "positional table shape mismatch"
        );
        assert_eq!(blocks.len(), config.num_layers, "block count mismatch");
        Self { config, kind, tok_table, pos_table, blocks, head, fast_math: false }
    }

    /// The configuration of the model this snapshot was frozen from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Selects the transcendental kernels: `false` (the
    /// [`Model::freeze`](crate::Model::freeze) default) uses the exact
    /// `libm`-based GELU/softmax, keeping logits bit-identical to
    /// [`Model::predict`](crate::Model::predict); `true` switches to the
    /// serving-grade [`fab_tensor::fastmath`] kernels, trading ≤ ~1e-6 of
    /// logit accuracy for substantially cheaper softmax/GELU. Either way
    /// the forward stays deterministic and bit-invariant to batch
    /// composition, padding and thread count.
    pub fn with_fast_math(mut self, fast_math: bool) -> Self {
        self.fast_math = fast_math;
        self
    }

    /// Whether the serving-grade fast-math kernels are enabled.
    pub fn fast_math(&self) -> bool {
        self.fast_math
    }

    /// Which architecture the snapshot instantiates.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The frozen encoder blocks, in execution order. Exposed (together
    /// with the other component accessors) so post-training tooling such as
    /// `fab-quant` can walk the snapshot layer by layer.
    pub fn blocks(&self) -> &[FrozenBlock] {
        &self.blocks
    }

    /// The classifier head applied to the mean-pooled hidden state.
    pub fn head(&self) -> &FrozenLinear {
        &self.head
    }

    /// `[vocab, hidden]` token-embedding table.
    pub fn tok_table(&self) -> &Tensor {
        &self.tok_table
    }

    /// `[max_seq, hidden]` positional-embedding table.
    pub fn pos_table(&self) -> &Tensor {
        &self.pos_table
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.head.d_out()
    }

    /// Maximum supported sequence length.
    pub fn max_seq(&self) -> usize {
        self.config.max_seq
    }

    /// Runs the encoder over a padded batch, returning the final
    /// `[B * pad_to, hidden]` hidden states (padding rows hold well-defined
    /// but meaningless values).
    ///
    /// # Panics
    ///
    /// Panics when `batch` is empty, `pad_to` exceeds `max_seq`, a sequence
    /// is empty or longer than `pad_to`, or a token id is out of vocabulary.
    pub fn forward_batch<S: AsRef<[usize]>>(&self, batch: &[S], pad_to: usize) -> Tensor {
        let lengths: Vec<usize> = batch.iter().map(|s| s.as_ref().len()).collect();
        let x = self.embed_batch(batch, pad_to);
        self.run_blocks(x, pad_to, &lengths)
    }

    /// [`FrozenModel::forward_batch`] over a caller-managed flat token
    /// buffer: `tokens_padded` holds `lengths.len() * pad_to` token ids,
    /// example `i` occupying slots `[i * pad_to, i * pad_to + lengths[i])`
    /// with arbitrary in-vocabulary filler (conventionally 0) in the padding
    /// slots. Serving workers reuse one such buffer across batches instead
    /// of re-collecting sequences per request.
    ///
    /// # Panics
    ///
    /// Panics when the buffer length is not `lengths.len() * pad_to`, a
    /// length is zero or exceeds `pad_to`, `pad_to` exceeds `max_seq`, or a
    /// token id is out of vocabulary.
    pub fn forward_batch_flat(
        &self,
        tokens_padded: &[usize],
        lengths: &[usize],
        pad_to: usize,
    ) -> Tensor {
        let x = self.embed_flat(tokens_padded, lengths, pad_to);
        self.run_blocks(x, pad_to, lengths)
    }

    /// Runs the encoder block stack over an embedded flat batch.
    fn run_blocks(&self, mut x: Tensor, pad_to: usize, lengths: &[usize]) -> Tensor {
        for block in &self.blocks {
            x = block.forward_batch(&x, pad_to, lengths, self.fast_math);
        }
        x
    }

    /// Returns per-example class logits for a padded batch.
    ///
    /// Each example's logits are bit-identical to what
    /// [`Model::predict`](crate::Model::predict) returns for that sequence
    /// alone, independent of batch composition and padding.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FrozenModel::forward_batch`].
    pub fn logits_batch<S: AsRef<[usize]>>(&self, batch: &[S], pad_to: usize) -> Vec<Vec<f32>> {
        let lengths: Vec<usize> = batch.iter().map(|s| s.as_ref().len()).collect();
        let x = self.embed_batch(batch, pad_to);
        let x = self.run_blocks(x, pad_to, &lengths);
        self.pool_and_head(&x, &lengths, pad_to)
    }

    /// [`FrozenModel::logits_batch`] over a caller-managed flat token buffer
    /// (see [`FrozenModel::forward_batch_flat`] for the layout).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`FrozenModel::forward_batch_flat`].
    pub fn logits_batch_flat(
        &self,
        tokens_padded: &[usize],
        lengths: &[usize],
        pad_to: usize,
    ) -> Vec<Vec<f32>> {
        let x = self.forward_batch_flat(tokens_padded, lengths, pad_to);
        self.pool_and_head(&x, lengths, pad_to)
    }

    /// Mean-pools each example over its true-length rows (same accumulation
    /// order as `Tensor::mean_rows`), then runs the classifier head over the
    /// pooled `[B, hidden]` batch in one fused matmul.
    fn pool_and_head(&self, x: &Tensor, lengths: &[usize], pad_to: usize) -> Vec<Vec<f32>> {
        let hidden = self.config.hidden;
        let mut pooled = vec![0.0f32; lengths.len() * hidden];
        for (i, &len) in lengths.iter().enumerate() {
            let dst = &mut pooled[i * hidden..(i + 1) * hidden];
            for row in x.as_slice()[i * pad_to * hidden..].chunks(hidden).take(len) {
                for (d, &v) in dst.iter_mut().zip(row.iter()) {
                    *d += v;
                }
            }
            for d in dst.iter_mut() {
                *d /= len as f32;
            }
        }
        let pooled =
            Tensor::from_vec(pooled, &[lengths.len(), hidden]).expect("pooled batch shape");
        let logits = self.head.forward(&pooled);
        let classes = logits.cols();
        logits.as_slice().chunks(classes).map(|row| row.to_vec()).collect()
    }

    /// Class logits for a single sequence (tape-free).
    ///
    /// # Panics
    ///
    /// Panics when `tokens` is empty or longer than `max_seq`.
    pub fn logits(&self, tokens: &[usize]) -> Vec<f32> {
        self.logits_batch(&[tokens], tokens.len()).pop().expect("one logits row")
    }

    /// Predicted class for a single sequence (tape-free).
    pub fn predict_class(&self, tokens: &[usize]) -> usize {
        argmax(&self.logits(tokens))
    }

    /// Fused token + positional embedding gather for a padded batch.
    fn embed_batch<S: AsRef<[usize]>>(&self, batch: &[S], pad_to: usize) -> Tensor {
        assert!(!batch.is_empty(), "cannot run a frozen model on an empty batch");
        assert!(
            pad_to >= 1 && pad_to <= self.config.max_seq,
            "pad_to {pad_to} outside 1..={}",
            self.config.max_seq
        );
        let hidden = self.config.hidden;
        let vocab = self.config.vocab_size;
        let tok = self.tok_table.as_slice();
        let pos = self.pos_table.as_slice();
        let mut x = vec![0.0f32; batch.len() * pad_to * hidden];
        for (s, ex) in batch.iter().zip(x.chunks_mut(pad_to * hidden)) {
            let tokens = s.as_ref();
            assert!(!tokens.is_empty(), "cannot run a frozen model on an empty sequence");
            assert!(
                tokens.len() <= pad_to,
                "sequence length {} exceeds pad_to {pad_to}",
                tokens.len()
            );
            for (j, row) in ex.chunks_mut(hidden).enumerate() {
                // Padding rows embed token 0; they are sliced away before any
                // token mixing and never influence real rows.
                let id = tokens.get(j).copied().unwrap_or(0);
                assert!(id < vocab, "token index {id} out of range for vocab {vocab}");
                let trow = &tok[id * hidden..(id + 1) * hidden];
                let prow = &pos[j * hidden..(j + 1) * hidden];
                for ((d, &t), &p) in row.iter_mut().zip(trow.iter()).zip(prow.iter()) {
                    *d = t + p;
                }
            }
        }
        Tensor::from_vec(x, &[batch.len() * pad_to, hidden]).expect("embedding batch shape")
    }

    /// Fused token + positional embedding gather over a flat padded token
    /// buffer (see [`FrozenModel::forward_batch_flat`] for the layout).
    fn embed_flat(&self, tokens_padded: &[usize], lengths: &[usize], pad_to: usize) -> Tensor {
        assert!(!lengths.is_empty(), "cannot run a frozen model on an empty batch");
        assert!(
            pad_to >= 1 && pad_to <= self.config.max_seq,
            "pad_to {pad_to} outside 1..={}",
            self.config.max_seq
        );
        assert_eq!(
            tokens_padded.len(),
            lengths.len() * pad_to,
            "flat token buffer length mismatch"
        );
        for &len in lengths {
            assert!(len >= 1 && len <= pad_to, "sequence length {len} outside 1..={pad_to}");
        }
        let hidden = self.config.hidden;
        let vocab = self.config.vocab_size;
        let tok = self.tok_table.as_slice();
        let pos = self.pos_table.as_slice();
        let mut x = vec![0.0f32; tokens_padded.len() * hidden];
        for (ex, ids) in x.chunks_mut(pad_to * hidden).zip(tokens_padded.chunks(pad_to)) {
            for ((j, row), &id) in ex.chunks_mut(hidden).enumerate().zip(ids.iter()) {
                assert!(id < vocab, "token index {id} out of range for vocab {vocab}");
                let trow = &tok[id * hidden..(id + 1) * hidden];
                let prow = &pos[j * hidden..(j + 1) * hidden];
                for ((d, &t), &p) in row.iter_mut().zip(trow.iter()).zip(prow.iter()) {
                    *d = t + p;
                }
            }
        }
        Tensor::from_vec(x, &[tokens_padded.len(), hidden]).expect("embedding batch shape")
    }
}

/// Index of the largest logit, matching the tie-breaking (first maximum
/// wins) of [`Model::predict_class`](crate::Model::predict_class). Exposed
/// so serving layers classify exactly the way the model does.
pub fn argmax(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .fold((0usize, f32::NEG_INFINITY), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc })
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> ModelConfig {
        ModelConfig::tiny_for_tests()
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn frozen_model_is_send_and_sync() {
        assert_send_sync::<FrozenModel>();
    }

    #[test]
    fn frozen_single_logits_match_tape_predict_bit_for_bit() {
        for (seed, kind) in
            [(1, ModelKind::FabNet), (2, ModelKind::FNet), (3, ModelKind::Transformer)]
        {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = Model::new(&tiny(), kind, &mut rng);
            let frozen = model.freeze();
            let tokens = vec![1usize, 5, 2, 7, 3, 0, 4];
            assert_eq!(model.predict(&tokens), frozen.logits(&tokens), "{kind:?}");
        }
    }

    #[test]
    fn batched_logits_match_single_requests_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = Model::new(&tiny(), ModelKind::FabNet, &mut rng);
        let frozen = model.freeze();
        let batch: Vec<Vec<usize>> =
            vec![vec![1, 2, 3], vec![4, 5, 6, 7, 0, 2, 3, 1], vec![2; 5], vec![7, 7]];
        let pad_to = 8;
        let batched = frozen.logits_batch(&batch, pad_to);
        for (tokens, got) in batch.iter().zip(batched.iter()) {
            assert_eq!(&model.predict(tokens), got, "tokens {tokens:?}");
        }
    }

    #[test]
    fn flat_buffer_path_matches_sequence_path() {
        let mut rng = StdRng::seed_from_u64(14);
        let model = Model::new(&tiny(), ModelKind::FabNet, &mut rng);
        let frozen = model.freeze();
        let batch: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![4, 5, 6, 7, 0], vec![2; 6]];
        let pad_to = 6;
        let lengths: Vec<usize> = batch.iter().map(Vec::len).collect();
        let mut flat = vec![0usize; batch.len() * pad_to];
        for (dst, src) in flat.chunks_mut(pad_to).zip(batch.iter()) {
            dst[..src.len()].copy_from_slice(src);
        }
        assert_eq!(
            frozen.logits_batch(&batch, pad_to),
            frozen.logits_batch_flat(&flat, &lengths, pad_to)
        );
    }

    #[test]
    fn padding_length_does_not_change_logits() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = Model::new(&tiny(), ModelKind::FabNet, &mut rng);
        let frozen = model.freeze();
        let batch = vec![vec![1usize, 2, 3, 4, 5]];
        let a = frozen.logits_batch(&batch, 5);
        let b = frozen.logits_batch(&batch, 8);
        let c = frozen.logits_batch(&batch, tiny().max_seq);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn forward_batch_shape_is_flat_padded() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = Model::new(&tiny(), ModelKind::FNet, &mut rng);
        let frozen = model.freeze();
        let batch = vec![vec![1usize, 2], vec![3usize, 4, 5]];
        let x = frozen.forward_batch(&batch, 4);
        assert_eq!(x.shape(), &[2 * 4, tiny().hidden]);
    }

    #[test]
    fn rejects_invalid_batches() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = Model::new(&tiny(), ModelKind::FNet, &mut rng);
        let frozen = model.freeze();
        let too_long = vec![vec![0usize; tiny().max_seq + 1]];
        for f in [
            Box::new(|| frozen.logits_batch(&too_long, tiny().max_seq + 1))
                as Box<dyn Fn() -> Vec<Vec<f32>>>,
            Box::new(|| frozen.logits_batch(&[Vec::<usize>::new()], 4)),
            Box::new(|| frozen.logits_batch(&Vec::<Vec<usize>>::new(), 4)),
        ] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            assert!(result.is_err());
        }
    }
}
