//! A small training loop for sequence-classification models, built around
//! the allocation-free [`TrainStep`] scratch object.

use crate::models::{Model, PAR_MIN_EXAMPLES};
use crate::optim::{FusedAdamW, Optimizer};
use crate::param::Bindings;
use fab_tensor::Tape;
use rayon::prelude::*;

/// A single labelled training example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Input token ids.
    pub tokens: Vec<usize>,
    /// Ground-truth class label.
    pub label: usize,
}

impl Example {
    /// Creates an example from tokens and a label.
    pub fn new(tokens: Vec<usize>, label: usize) -> Self {
        Self { tokens, label }
    }
}

/// Options controlling [`train_classifier`].
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Gradient accumulation: parameters are updated every `batch_size` examples.
    pub batch_size: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self { epochs: 3, learning_rate: 1e-3, batch_size: 1 }
    }
}

/// Summary statistics produced by [`train_classifier`].
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the held-out set after training.
    pub test_accuracy: f32,
    /// Accuracy on the training set after training.
    pub train_accuracy: f32,
}

impl TrainReport {
    /// Mean loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }
}

/// Classification accuracy of `model` on `examples`.
///
/// The model is frozen once (tape-free snapshot) and the examples are
/// evaluated in parallel across rayon workers; predictions are bit-identical
/// to the serial per-example tape path, so the reported accuracy does not
/// depend on the thread count.
pub fn evaluate(model: &Model, examples: &[Example]) -> f32 {
    if examples.is_empty() {
        return 0.0;
    }
    let correct: usize = if examples.len() < PAR_MIN_EXAMPLES {
        examples.iter().filter(|ex| model.predict_class(&ex.tokens) == ex.label).count()
    } else {
        let frozen = model.freeze();
        (0..examples.len())
            .into_par_iter()
            .map(|i| usize::from(frozen.predict_class(&examples[i].tokens) == examples[i].label))
            .sum()
    };
    correct as f32 / examples.len() as f32
}

/// Reusable training-step scratch: one arena [`Tape`], one [`Bindings`] list
/// and the optimiser state, all retained across iterations.
///
/// Each [`TrainStep::step`] resets the tape (keeping every buffer's
/// capacity), re-records the forward pass, runs the arena backward and
/// applies the fused optimiser update — so steady-state steps on a fixed
/// sequence length perform no heap allocation in the tensor/gradient/
/// optimiser path (asserted by the counting-allocator test in
/// `tests/train_alloc.rs`).
///
/// # Example
///
/// ```rust
/// use fab_nn::{FusedAdamW, Model, ModelConfig, ModelKind, TrainStep};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng);
/// let mut step = TrainStep::new(FusedAdamW::new(1e-3));
/// let loss = step.step(&model, &[1, 2, 3, 4], 1);
/// assert!(loss.is_finite());
/// ```
pub struct TrainStep<O: Optimizer = FusedAdamW> {
    tape: Tape,
    bindings: Bindings,
    optimizer: O,
}

impl<O: Optimizer> TrainStep<O> {
    /// Creates a training-step scratch around `optimizer`.
    pub fn new(optimizer: O) -> Self {
        Self { tape: Tape::new(), bindings: Bindings::new(), optimizer }
    }

    /// Runs one training step — forward, backward, optimiser update — for a
    /// single `(tokens, label)` example and returns the loss.
    pub fn step(&mut self, model: &Model, tokens: &[usize], label: usize) -> f32 {
        self.tape.reset();
        self.bindings.clear();
        let loss = model.loss_on(&self.tape, &mut self.bindings, tokens, label);
        self.tape.backward(loss);
        self.optimizer.step(&self.tape, &self.bindings);
        self.tape.value_scalar(loss)
    }

    /// The reused tape (capacity introspection for the allocation tests).
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// The optimiser driving the updates.
    pub fn optimizer(&self) -> &O {
        &self.optimizer
    }

    /// Mutable access to the optimiser (e.g. to adjust the schedule).
    pub fn optimizer_mut(&mut self) -> &mut O {
        &mut self.optimizer
    }
}

/// Trains `model` on `train` with the fused AdamW optimiser and reports
/// accuracy on `test`.
///
/// Training is deterministic given the model's initial parameters and the
/// example order (no shuffling is performed here; callers shuffle if needed).
/// The loop reuses one [`TrainStep`] across all examples and epochs, so only
/// the first step of each distinct sequence length allocates.
pub fn train_classifier(
    model: &Model,
    train: &[Example],
    test: &[Example],
    options: &TrainOptions,
) -> TrainReport {
    let mut step = TrainStep::new(FusedAdamW::new(options.learning_rate));
    let mut epoch_losses = Vec::with_capacity(options.epochs);
    for _epoch in 0..options.epochs {
        let mut total = 0.0f32;
        for ex in train {
            total += step.step(model, &ex.tokens, ex.label);
        }
        epoch_losses.push(total / train.len().max(1) as f32);
    }
    TrainReport {
        epoch_losses,
        test_accuracy: evaluate(model, test),
        train_accuracy: evaluate(model, train),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A linearly separable toy task: the label is decided by which marker
    /// token appears in the sequence.
    fn toy_dataset(rng: &mut StdRng, n: usize, seq: usize, vocab: usize) -> Vec<Example> {
        (0..n)
            .map(|i| {
                let label = i % 2;
                let marker = if label == 0 { 1 } else { 2 };
                let mut tokens: Vec<usize> = (0..seq).map(|_| rng.gen_range(3..vocab)).collect();
                let pos = rng.gen_range(0..seq);
                tokens[pos] = marker;
                Example::new(tokens, label)
            })
            .collect()
    }

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            hidden: 16,
            ffn_ratio: 2,
            num_layers: 1,
            num_abfly: 0,
            num_heads: 2,
            vocab_size: 16,
            max_seq: 16,
            num_classes: 2,
        }
    }

    #[test]
    fn fabnet_learns_a_separable_task() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = tiny_config();
        let model = Model::new(&config, ModelKind::FabNet, &mut rng);
        let train = toy_dataset(&mut rng, 40, 8, config.vocab_size);
        let test = toy_dataset(&mut rng, 20, 8, config.vocab_size);
        let report = train_classifier(
            &model,
            &train,
            &test,
            &TrainOptions { epochs: 6, learning_rate: 5e-3, batch_size: 1 },
        );
        assert!(
            report.test_accuracy >= 0.75,
            "expected the tiny FABNet to learn the marker task, accuracy {}",
            report.test_accuracy
        );
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first, "loss should decrease: {first} -> {last}");
    }

    #[test]
    fn evaluate_handles_empty_sets() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = Model::new(&tiny_config(), ModelKind::FNet, &mut rng);
        assert_eq!(evaluate(&model, &[]), 0.0);
    }
}
