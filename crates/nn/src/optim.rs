//! Gradient-descent optimisers operating on parameter bindings.
//!
//! [`Sgd`] and [`Adam`] are the seed optimisers, kept as the reference the
//! fused pair is validated against. [`FusedSgd`] and [`FusedAdamW`] perform
//! the whole update — optional global-norm gradient clipping, decoupled
//! weight decay, moment update and parameter write-back — in a single pass
//! per parameter with no intermediate tensors: gradients are read straight
//! from the tape's buffers ([`Tape::with_grad`]) and moments live in flat
//! reused vectors. With weight decay and clipping off, the fused updates are
//! bit-identical to their reference counterparts.

use crate::param::Bindings;
use fab_tensor::{Tape, Tensor};
use rayon::prelude::*;

/// Elements below which a fused update stays on the calling thread (the
/// rayon shim spawns OS threads per call).
const PAR_MIN_ELEMS: usize = 1 << 14;
/// Target elements per parallel chunk of a fused update.
const CHUNK_ELEMS: usize = 1 << 13;

/// An optimiser that applies the gradients accumulated on a tape to the
/// parameters bound during the corresponding forward pass.
pub trait Optimizer {
    /// Applies one update step. Must be called after `tape.backward(..)`.
    fn step(&mut self, tape: &Tape, bindings: &Bindings);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimiser with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, tape: &Tape, bindings: &Bindings) {
        for (id, param) in bindings.iter() {
            if let Some(grad) = tape.try_grad(*id) {
                param.update(|t| *t = t.sub(&grad.scale(self.lr)));
            }
        }
    }
}

/// Adam optimiser (Kingma & Ba) with per-parameter first/second moment state.
///
/// Moment state is keyed by binding order, which is deterministic because
/// every forward pass binds parameters in the same layer order.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with the standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, tape: &Tape, bindings: &Bindings) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (slot, (id, param)) in bindings.iter().enumerate() {
            let Some(grad) = tape.try_grad(*id) else { continue };
            if self.m.len() <= slot {
                self.m.push(Tensor::zeros(grad.shape()));
                self.v.push(Tensor::zeros(grad.shape()));
            }
            if self.m[slot].shape() != grad.shape() {
                // The binding layout changed (e.g. a different model); reset state.
                self.m[slot] = Tensor::zeros(grad.shape());
                self.v[slot] = Tensor::zeros(grad.shape());
            }
            let m = self.m[slot].scale(self.beta1).add(&grad.scale(1.0 - self.beta1));
            let v = self.v[slot].scale(self.beta2).add(&grad.mul(&grad).scale(1.0 - self.beta2));
            self.m[slot] = m.clone();
            self.v[slot] = v.clone();
            let lr = self.lr;
            let eps = self.eps;
            param.update(|p| {
                let update: Vec<f32> = m
                    .as_slice()
                    .iter()
                    .zip(v.as_slice().iter())
                    .map(|(&mi, &vi)| {
                        let mhat = mi / bias1;
                        let vhat = vi / bias2;
                        lr * mhat / (vhat.sqrt() + eps)
                    })
                    .collect();
                let update = Tensor::from_vec(update, p.shape()).expect("adam update shape");
                *p = p.sub(&update);
            });
        }
    }
}

/// Computes the optional global-gradient-norm clip scale: `min(1, c/‖g‖)`
/// over every bound gradient, read without cloning.
fn clip_scale(tape: &Tape, bindings: &Bindings, clip_norm: Option<f32>) -> f32 {
    let Some(c) = clip_norm else { return 1.0 };
    let mut sumsq = 0.0f64;
    for (id, _) in bindings.iter() {
        tape.with_grad(*id, |g| {
            if let Some(g) = g {
                sumsq += g.as_slice().iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>();
            }
        });
    }
    let norm = sumsq.sqrt() as f32;
    if norm > c {
        c / norm
    } else {
        1.0
    }
}

/// One matched `(params, grads, m, v)` chunk of a fused update.
type UpdateChunk<'a> = (&'a mut [f32], &'a [f32], &'a mut [f32], &'a mut [f32]);

/// Splits four parameter-length slices into matched chunks and runs `f` over
/// them, in parallel when the parameter is large enough to amortise thread
/// spawns. Small (i.e. most) parameters run serially with zero allocation.
fn for_each_update_chunk<F>(p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], f: F)
where
    F: Fn(&mut [f32], &[f32], &mut [f32], &mut [f32]) + Sync,
{
    if p.len() < PAR_MIN_ELEMS {
        f(p, g, m, v);
        return;
    }
    let chunks: Vec<UpdateChunk<'_>> = p
        .chunks_mut(CHUNK_ELEMS)
        .zip(g.chunks(CHUNK_ELEMS))
        .zip(m.chunks_mut(CHUNK_ELEMS))
        .zip(v.chunks_mut(CHUNK_ELEMS))
        .map(|(((p, g), m), v)| (p, g, m, v))
        .collect();
    chunks.into_par_iter().for_each(|(p, g, m, v)| f(p, g, m, v));
}

/// AdamW with the full update fused into one pass per parameter: gradient
/// clip scaling, first/second moment update, bias correction, decoupled
/// weight decay and parameter write-back happen element-wise in a single
/// sweep, with no intermediate tensors. Large parameters fan the sweep out
/// over rayon chunks.
///
/// With `weight_decay == 0` and clipping disabled the update is
/// bit-identical to the reference [`Adam`] optimiser (same expression
/// order), which the property tests assert.
#[derive(Debug)]
pub struct FusedAdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    clip_norm: Option<f32>,
    step_count: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl FusedAdamW {
    /// Creates a fused AdamW optimiser with the standard betas (0.9, 0.999),
    /// no weight decay and no gradient clipping — i.e. plain Adam, fused.
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: None,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables decoupled weight decay (the AdamW `θ ← θ − lr·wd·θ` term).
    ///
    /// # Panics
    ///
    /// Panics when `wd` is negative.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Enables global-gradient-norm clipping at `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is not positive.
    pub fn with_clip_norm(mut self, c: f32) -> Self {
        assert!(c > 0.0, "clip norm must be positive");
        self.clip_norm = Some(c);
        self
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Total `f32` capacity of the optimiser's moment buffers; stable across
    /// steady-state steps (asserted by the allocation-reuse tests).
    pub fn state_capacity(&self) -> usize {
        self.m.iter().map(Vec::capacity).sum::<usize>()
            + self.v.iter().map(Vec::capacity).sum::<usize>()
    }
}

impl Optimizer for FusedAdamW {
    fn step(&mut self, tape: &Tape, bindings: &Bindings) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let clip = clip_scale(tape, bindings, self.clip_norm);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        for (slot, (id, param)) in bindings.iter().enumerate() {
            if self.m.len() <= slot {
                self.m.push(Vec::new());
                self.v.push(Vec::new());
            }
            let (m, v) = (&mut self.m[slot], &mut self.v[slot]);
            tape.with_grad(*id, |g| {
                let Some(grad) = g else { return };
                let grad = grad.as_slice();
                if m.len() != grad.len() {
                    // First touch, or the binding layout changed: reset state.
                    m.clear();
                    m.resize(grad.len(), 0.0);
                    v.clear();
                    v.resize(grad.len(), 0.0);
                }
                param.update(|p| {
                    for_each_update_chunk(p.as_mut_slice(), grad, m, v, |p, g, m, v| {
                        for (((pi, &g0), mi), vi) in
                            p.iter_mut().zip(g.iter()).zip(m.iter_mut()).zip(v.iter_mut())
                        {
                            let gi = g0 * clip;
                            let mn = *mi * b1 + gi * (1.0 - b1);
                            let vn = *vi * b2 + gi * gi * (1.0 - b2);
                            *mi = mn;
                            *vi = vn;
                            let mhat = mn / bias1;
                            let vhat = vn / bias2;
                            let p0 = *pi;
                            let mut pn = p0 - lr * mhat / (vhat.sqrt() + eps);
                            if wd > 0.0 {
                                pn -= lr * wd * p0;
                            }
                            *pi = pn;
                        }
                    });
                });
            });
        }
    }
}

/// Stochastic gradient descent with the update fused into one pass:
/// optional global-norm clip, decoupled weight decay and write-back in a
/// single sweep. With weight decay and clipping off it is bit-identical to
/// the reference [`Sgd`].
#[derive(Debug, Clone)]
pub struct FusedSgd {
    lr: f32,
    weight_decay: f32,
    clip_norm: Option<f32>,
}

impl FusedSgd {
    /// Creates a fused SGD optimiser with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr, weight_decay: 0.0, clip_norm: None }
    }

    /// Enables decoupled weight decay.
    ///
    /// # Panics
    ///
    /// Panics when `wd` is negative.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Enables global-gradient-norm clipping at `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is not positive.
    pub fn with_clip_norm(mut self, c: f32) -> Self {
        assert!(c > 0.0, "clip norm must be positive");
        self.clip_norm = Some(c);
        self
    }
}

impl Optimizer for FusedSgd {
    fn step(&mut self, tape: &Tape, bindings: &Bindings) {
        let clip = clip_scale(tape, bindings, self.clip_norm);
        let (lr, wd) = (self.lr, self.weight_decay);
        for (id, param) in bindings.iter() {
            tape.with_grad(*id, |g| {
                let Some(grad) = g else { return };
                param.update(|p| {
                    let update = |p: &mut [f32], g: &[f32]| {
                        for (pi, &g0) in p.iter_mut().zip(g.iter()) {
                            let gi = g0 * clip;
                            let p0 = *pi;
                            let mut pn = p0 - gi * lr;
                            if wd > 0.0 {
                                pn -= lr * wd * p0;
                            }
                            *pi = pn;
                        }
                    };
                    let p = p.as_mut_slice();
                    if p.len() < PAR_MIN_ELEMS {
                        update(p, grad.as_slice());
                    } else {
                        let chunks: Vec<(&mut [f32], &[f32])> = p
                            .chunks_mut(CHUNK_ELEMS)
                            .zip(grad.as_slice().chunks(CHUNK_ELEMS))
                            .collect();
                        chunks.into_par_iter().for_each(|(p, g)| update(p, g));
                    }
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use fab_tensor::Tensor;

    fn quadratic_step<O: Optimizer>(opt: &mut O, param: &Param) -> f32 {
        // Minimise f(w) = sum(w^2); gradient is 2w.
        let tape = Tape::new();
        let mut bindings = Bindings::new();
        let w = param.bind(&tape, &mut bindings);
        let sq = tape.mul(w, w);
        let loss = tape.sum(sq);
        tape.backward(loss);
        opt.step(&tape, &bindings);
        tape.value(loss).as_slice()[0]
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let param = Param::new("w", Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap());
        let mut opt = Sgd::new(0.1);
        let first = quadratic_step(&mut opt, &param);
        for _ in 0..50 {
            quadratic_step(&mut opt, &param);
        }
        let last = quadratic_step(&mut opt, &param);
        assert!(last < first * 1e-3, "loss {first} -> {last}");
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let param = Param::new("w", Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap());
        let mut opt = Adam::new(0.05);
        let first = quadratic_step(&mut opt, &param);
        for _ in 0..200 {
            quadratic_step(&mut opt, &param);
        }
        let last = quadratic_step(&mut opt, &param);
        assert!(last < first * 1e-2, "loss {first} -> {last}");
        assert_eq!(opt.steps(), 202);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_non_positive_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn fused_adamw_matches_reference_adam_bit_exactly() {
        let init = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5, -0.25], &[1, 5]).unwrap();
        let p_ref = Param::new("w", init.clone());
        let p_fused = Param::new("w", init);
        let mut reference = Adam::new(0.05);
        let mut fused = FusedAdamW::new(0.05);
        for _ in 0..25 {
            quadratic_step(&mut reference, &p_ref);
            quadratic_step(&mut fused, &p_fused);
            assert_eq!(
                p_ref.value().as_slice(),
                p_fused.value().as_slice(),
                "fused AdamW (wd=0, no clip) must match Adam bit for bit"
            );
        }
        assert_eq!(fused.steps(), 25);
    }

    #[test]
    fn fused_sgd_matches_reference_sgd_bit_exactly() {
        let init = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap();
        let p_ref = Param::new("w", init.clone());
        let p_fused = Param::new("w", init);
        let mut reference = Sgd::new(0.1);
        let mut fused = FusedSgd::new(0.1);
        for _ in 0..25 {
            quadratic_step(&mut reference, &p_ref);
            quadratic_step(&mut fused, &p_fused);
            assert_eq!(p_ref.value().as_slice(), p_fused.value().as_slice());
        }
    }

    #[test]
    fn fused_adamw_descends_a_quadratic() {
        let param = Param::new("w", Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap());
        let mut opt = FusedAdamW::new(0.05).with_weight_decay(1e-3).with_clip_norm(10.0);
        let first = quadratic_step(&mut opt, &param);
        for _ in 0..200 {
            quadratic_step(&mut opt, &param);
        }
        let last = quadratic_step(&mut opt, &param);
        assert!(last < first * 1e-2, "loss {first} -> {last}");
    }

    #[test]
    fn clip_norm_caps_the_applied_gradient() {
        // With a huge gradient and clip 1.0, one SGD step moves the
        // parameter by at most lr * 1.0 in L2 norm.
        let param = Param::new("w", Tensor::from_vec(vec![100.0, -100.0], &[1, 2]).unwrap());
        let before = param.value();
        let mut opt = FusedSgd::new(0.5).with_clip_norm(1.0);
        quadratic_step(&mut opt, &param);
        let after = param.value();
        let moved: f32 = before
            .as_slice()
            .iter()
            .zip(after.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(moved <= 0.5 * 1.0 + 1e-5, "moved {moved} > lr * clip");
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        // Zero gradient + weight decay must still shrink the parameter.
        let param = Param::new("w", Tensor::from_vec(vec![2.0], &[1, 1]).unwrap());
        let mut opt = FusedSgd::new(0.1).with_weight_decay(0.5);
        let tape = Tape::new();
        let mut bindings = Bindings::new();
        let w = param.bind(&tape, &mut bindings);
        let z = tape.scale(w, 0.0);
        let loss = tape.sum(z);
        tape.backward(loss);
        opt.step(&tape, &bindings);
        assert!(param.value().as_slice()[0] < 2.0);
    }
}
