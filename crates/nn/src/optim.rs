//! Gradient-descent optimisers operating on parameter bindings.

use crate::param::Bindings;
use fab_tensor::{Tape, Tensor};

/// An optimiser that applies the gradients accumulated on a tape to the
/// parameters bound during the corresponding forward pass.
pub trait Optimizer {
    /// Applies one update step. Must be called after `tape.backward(..)`.
    fn step(&mut self, tape: &Tape, bindings: &Bindings);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimiser with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, tape: &Tape, bindings: &Bindings) {
        for (id, param) in bindings.iter() {
            if let Some(grad) = tape.try_grad(*id) {
                param.update(|t| *t = t.sub(&grad.scale(self.lr)));
            }
        }
    }
}

/// Adam optimiser (Kingma & Ba) with per-parameter first/second moment state.
///
/// Moment state is keyed by binding order, which is deterministic because
/// every forward pass binds parameters in the same layer order.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with the standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, tape: &Tape, bindings: &Bindings) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (slot, (id, param)) in bindings.iter().enumerate() {
            let Some(grad) = tape.try_grad(*id) else { continue };
            if self.m.len() <= slot {
                self.m.push(Tensor::zeros(grad.shape()));
                self.v.push(Tensor::zeros(grad.shape()));
            }
            if self.m[slot].shape() != grad.shape() {
                // The binding layout changed (e.g. a different model); reset state.
                self.m[slot] = Tensor::zeros(grad.shape());
                self.v[slot] = Tensor::zeros(grad.shape());
            }
            let m = self.m[slot].scale(self.beta1).add(&grad.scale(1.0 - self.beta1));
            let v = self.v[slot].scale(self.beta2).add(&grad.mul(&grad).scale(1.0 - self.beta2));
            self.m[slot] = m.clone();
            self.v[slot] = v.clone();
            let lr = self.lr;
            let eps = self.eps;
            param.update(|p| {
                let update: Vec<f32> = m
                    .as_slice()
                    .iter()
                    .zip(v.as_slice().iter())
                    .map(|(&mi, &vi)| {
                        let mhat = mi / bias1;
                        let vhat = vi / bias2;
                        lr * mhat / (vhat.sqrt() + eps)
                    })
                    .collect();
                let update = Tensor::from_vec(update, p.shape()).expect("adam update shape");
                *p = p.sub(&update);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use fab_tensor::Tensor;

    fn quadratic_step<O: Optimizer>(opt: &mut O, param: &Param) -> f32 {
        // Minimise f(w) = sum(w^2); gradient is 2w.
        let tape = Tape::new();
        let mut bindings = Bindings::new();
        let w = param.bind(&tape, &mut bindings);
        let sq = tape.mul(w, w);
        let loss = tape.sum(sq);
        tape.backward(loss);
        opt.step(&tape, &bindings);
        tape.value(loss).as_slice()[0]
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let param = Param::new("w", Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap());
        let mut opt = Sgd::new(0.1);
        let first = quadratic_step(&mut opt, &param);
        for _ in 0..50 {
            quadratic_step(&mut opt, &param);
        }
        let last = quadratic_step(&mut opt, &param);
        assert!(last < first * 1e-3, "loss {first} -> {last}");
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let param = Param::new("w", Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap());
        let mut opt = Adam::new(0.05);
        let first = quadratic_step(&mut opt, &param);
        for _ in 0..200 {
            quadratic_step(&mut opt, &param);
        }
        let last = quadratic_step(&mut opt, &param);
        assert!(last < first * 1e-2, "loss {first} -> {last}");
        assert_eq!(opt.steps(), 202);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_non_positive_lr() {
        let _ = Sgd::new(0.0);
    }
}
