//! Individual neural-network layers: dense and butterfly linear maps,
//! multi-head attention, feed-forward networks, Fourier mixing, layer
//! normalisation, embeddings and the classification head.
//!
//! Every layer operates on whole `[rows, features]` activation batches and
//! rides the PR-1 parallel compute core end to end: [`DenseLinear`] lowers to
//! the cache-blocked row-band-parallel `Tensor::matmul`, [`ButterflyLinear`]
//! to the batched `ButterflyMatrix::forward_rows` / `backward_rows` kernels,
//! and [`FourierMixing`] to the plan-cached parallel 2-D FFT — no layer falls
//! back to a per-vector path.

use crate::frozen::{FrozenAttention, FrozenFeedForward, FrozenLayerNorm, FrozenLinear};
use crate::param::{Bindings, Param};
use fab_butterfly::flops as bflops;
use fab_butterfly::{
    butterfly_linear_op, butterfly_linear_padded_op, fourier_mix_op, next_pow2, ButterflyMatrix,
};
use fab_tensor::{kaiming_uniform, normal, Tape, Tensor, VarId};
use rand::rngs::StdRng;

/// A (possibly structured) linear map used for attention projections and FFN
/// layers. Implemented by [`DenseLinear`] and [`ButterflyLinear`] so blocks
/// can swap the two without changing their own code — precisely the
/// substitution FABNet performs on the Transformer.
pub trait Linear {
    /// Applies the layer to a `[rows, d_in]` variable, returning `[rows, d_out]`.
    fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId;
    /// Input feature dimension.
    fn d_in(&self) -> usize;
    /// Output feature dimension.
    fn d_out(&self) -> usize;
    /// Number of trainable scalars.
    fn num_params(&self) -> usize;
    /// FLOPs for a forward pass over `rows` rows.
    fn flops(&self, rows: usize) -> u64;
    /// Snapshots the current weights into a tape-free [`FrozenLinear`].
    fn freeze(&self) -> FrozenLinear;
}

/// A dense (fully-connected) linear layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct DenseLinear {
    w: Param,
    b: Param,
    d_in: usize,
    d_out: usize,
}

impl DenseLinear {
    /// Creates a dense layer with Kaiming-uniform weights and zero bias.
    pub fn new(name: &str, d_in: usize, d_out: usize, rng: &mut StdRng) -> Self {
        Self {
            w: Param::new(format!("{name}.w"), kaiming_uniform(rng, d_in, d_out)),
            b: Param::new(format!("{name}.b"), Tensor::zeros(&[d_out])),
            d_in,
            d_out,
        }
    }
}

impl Linear for DenseLinear {
    fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let w = self.w.bind(tape, bindings);
        let b = self.b.bind(tape, bindings);
        let y = tape.matmul(x, w);
        tape.add_row_broadcast(y, b)
    }

    fn d_in(&self) -> usize {
        self.d_in
    }

    fn d_out(&self) -> usize {
        self.d_out
    }

    fn num_params(&self) -> usize {
        self.d_in * self.d_out + self.d_out
    }

    fn flops(&self, rows: usize) -> u64 {
        bflops::dense_linear_flops(rows, self.d_in, self.d_out)
    }

    fn freeze(&self) -> FrozenLinear {
        FrozenLinear::Dense { w: self.w.value(), b: self.b.value() }
    }
}

/// A butterfly-factorised linear layer.
///
/// The map is a square butterfly matrix of size `n = next_pow2(max(d_in,
/// d_out))`; inputs narrower than `n` are zero-padded and outputs wider than
/// `d_out` are truncated, as in the paper's butterfly layers. Parameters and
/// compute are `O(n log n)` instead of `O(d_in · d_out)`.
#[derive(Debug, Clone)]
pub struct ButterflyLinear {
    w: Param,
    b: Param,
    d_in: usize,
    d_out: usize,
    n: usize,
}

impl ButterflyLinear {
    /// Creates a butterfly layer with a random near-orthogonal factorisation
    /// and zero bias.
    pub fn new(name: &str, d_in: usize, d_out: usize, rng: &mut StdRng) -> Self {
        let n = next_pow2(d_in.max(d_out));
        let bfly = ButterflyMatrix::random(n, rng).expect("power-of-two butterfly size");
        Self {
            w: Param::new(format!("{name}.bfly"), bfly.to_weight_tensor()),
            b: Param::new(format!("{name}.b"), Tensor::zeros(&[d_out])),
            d_in,
            d_out,
            n,
        }
    }

    /// The padded power-of-two butterfly size.
    pub fn butterfly_size(&self) -> usize {
        self.n
    }
}

impl Linear for ButterflyLinear {
    fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let w = self.w.bind(tape, bindings);
        // Narrow/wide layers ride the fused pad + butterfly + truncate op:
        // one tape node instead of a zeros leaf, a concat, the transform and
        // a slice — with bit-identical values and gradients.
        let y = if self.d_in < self.n || self.d_out < self.n {
            butterfly_linear_padded_op(tape, x, w, self.d_out)
        } else {
            butterfly_linear_op(tape, x, w)
        };
        let b = self.b.bind(tape, bindings);
        tape.add_row_broadcast(y, b)
    }

    fn d_in(&self) -> usize {
        self.d_in
    }

    fn d_out(&self) -> usize {
        self.d_out
    }

    fn num_params(&self) -> usize {
        let stages = (self.n as f64).log2() as usize;
        2 * self.n * stages + self.d_out
    }

    fn flops(&self, rows: usize) -> u64 {
        bflops::butterfly_linear_flops(rows, self.n)
    }

    fn freeze(&self) -> FrozenLinear {
        FrozenLinear::Butterfly {
            bfly: ButterflyMatrix::from_weight_tensor(&self.w.value())
                .expect("trained butterfly weights keep their layout"),
            b: self.b.value(),
            d_in: self.d_in,
            d_out: self.d_out,
        }
    }
}

/// Multi-head self-attention with pluggable projection layers.
///
/// In the vanilla Transformer the four projections (`Q`, `K`, `V`, output)
/// are [`DenseLinear`]; in FABNet's ABfly block they are [`ButterflyLinear`]
/// while the score/value computation itself stays dense — exactly the split
/// the accelerator exploits (projections on the Butterfly Processor, the
/// `Q·K^T` / `S·V` products on the Attention Processor).
pub struct MultiHeadAttention {
    wq: Box<dyn Linear>,
    wk: Box<dyn Linear>,
    wv: Box<dyn Linear>,
    wo: Box<dyn Linear>,
    dim: usize,
    num_heads: usize,
}

impl MultiHeadAttention {
    /// Dense projections (vanilla Transformer).
    pub fn new_dense(name: &str, dim: usize, num_heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(dim % num_heads, 0, "hidden dim must be divisible by heads");
        Self {
            wq: Box::new(DenseLinear::new(&format!("{name}.q"), dim, dim, rng)),
            wk: Box::new(DenseLinear::new(&format!("{name}.k"), dim, dim, rng)),
            wv: Box::new(DenseLinear::new(&format!("{name}.v"), dim, dim, rng)),
            wo: Box::new(DenseLinear::new(&format!("{name}.o"), dim, dim, rng)),
            dim,
            num_heads,
        }
    }

    /// Butterfly projections (FABNet ABfly block).
    pub fn new_butterfly(name: &str, dim: usize, num_heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(dim % num_heads, 0, "hidden dim must be divisible by heads");
        Self {
            wq: Box::new(ButterflyLinear::new(&format!("{name}.q"), dim, dim, rng)),
            wk: Box::new(ButterflyLinear::new(&format!("{name}.k"), dim, dim, rng)),
            wv: Box::new(ButterflyLinear::new(&format!("{name}.v"), dim, dim, rng)),
            wo: Box::new(ButterflyLinear::new(&format!("{name}.o"), dim, dim, rng)),
            dim,
            num_heads,
        }
    }

    /// Applies self-attention to a `[seq, dim]` variable.
    pub fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let q = self.wq.forward(tape, x, bindings);
        let k = self.wk.forward(tape, x, bindings);
        let v = self.wv.forward(tape, x, bindings);
        let head_dim = self.dim / self.num_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut heads = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let (lo, hi) = (h * head_dim, (h + 1) * head_dim);
            let qh = tape.slice_cols(q, lo, hi);
            let kh = tape.slice_cols(k, lo, hi);
            let vh = tape.slice_cols(v, lo, hi);
            let kt = tape.transpose(kh);
            let scores = tape.scale(tape.matmul(qh, kt), scale);
            let probs = tape.softmax_rows(scores);
            heads.push(tape.matmul(probs, vh));
        }
        let concat = tape.concat_cols(&heads);
        self.wo.forward(tape, concat, bindings)
    }

    /// Number of trainable scalars across the four projections.
    pub fn num_params(&self) -> usize {
        self.wq.num_params() + self.wk.num_params() + self.wv.num_params() + self.wo.num_params()
    }

    /// FLOPs of the projections plus the attention core for a `seq`-length input.
    pub fn flops(&self, seq: usize) -> u64 {
        let proj =
            self.wq.flops(seq) + self.wk.flops(seq) + self.wv.flops(seq) + self.wo.flops(seq);
        proj + bflops::attention_core_flops(seq, self.dim)
    }

    /// Hidden dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Snapshots the four projections into a tape-free [`FrozenAttention`].
    pub fn freeze(&self) -> FrozenAttention {
        FrozenAttention {
            wq: self.wq.freeze(),
            wk: self.wk.freeze(),
            wv: self.wv.freeze(),
            wo: self.wo.freeze(),
            dim: self.dim,
            num_heads: self.num_heads,
        }
    }
}

/// A two-layer feed-forward network with GELU activation.
pub struct FeedForward {
    lin1: Box<dyn Linear>,
    lin2: Box<dyn Linear>,
}

impl FeedForward {
    /// Dense FFN with expansion ratio `ratio` (vanilla Transformer / FNet).
    pub fn new_dense(name: &str, dim: usize, ratio: usize, rng: &mut StdRng) -> Self {
        Self {
            lin1: Box::new(DenseLinear::new(&format!("{name}.ffn1"), dim, dim * ratio, rng)),
            lin2: Box::new(DenseLinear::new(&format!("{name}.ffn2"), dim * ratio, dim, rng)),
        }
    }

    /// Butterfly FFN with expansion ratio `ratio` (FABNet).
    pub fn new_butterfly(name: &str, dim: usize, ratio: usize, rng: &mut StdRng) -> Self {
        Self {
            lin1: Box::new(ButterflyLinear::new(&format!("{name}.ffn1"), dim, dim * ratio, rng)),
            lin2: Box::new(ButterflyLinear::new(&format!("{name}.ffn2"), dim * ratio, dim, rng)),
        }
    }

    /// Applies `lin2(gelu(lin1(x)))`.
    pub fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let h = self.lin1.forward(tape, x, bindings);
        let a = tape.gelu(h);
        self.lin2.forward(tape, a, bindings)
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.lin1.num_params() + self.lin2.num_params()
    }

    /// FLOPs for a `seq`-length input.
    pub fn flops(&self, seq: usize) -> u64 {
        self.lin1.flops(seq) + self.lin2.flops(seq)
    }

    /// Snapshots both layers into a tape-free [`FrozenFeedForward`].
    pub fn freeze(&self) -> FrozenFeedForward {
        FrozenFeedForward { lin1: self.lin1.freeze(), lin2: self.lin2.freeze() }
    }
}

/// The FNet / FBfly parameter-free Fourier token-mixing layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct FourierMixing;

impl FourierMixing {
    /// Creates the (stateless) mixing layer.
    pub fn new() -> Self {
        Self
    }

    /// Applies the 2-D real FFT mixing to a `[seq, hidden]` variable.
    pub fn forward(&self, tape: &Tape, x: VarId) -> VarId {
        fourier_mix_op(tape, x)
    }

    /// FLOPs for a `[seq, hidden]` input.
    pub fn flops(&self, seq: usize, hidden: usize) -> u64 {
        bflops::fourier_mix_flops(next_pow2(seq), next_pow2(hidden))
    }
}

/// Layer normalisation with learned scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over the last dimension of size `dim`.
    pub fn new(name: &str, dim: usize) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Normalises each row of `x`.
    pub fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let g = self.gamma.bind(tape, bindings);
        let b = self.beta.bind(tape, bindings);
        tape.layer_norm(x, g, b, self.eps)
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }

    /// Snapshots scale/shift into a tape-free [`FrozenLayerNorm`].
    pub fn freeze(&self) -> FrozenLayerNorm {
        FrozenLayerNorm { gamma: self.gamma.value(), beta: self.beta.value(), eps: self.eps }
    }
}

/// Token + learned positional embedding.
pub struct Embedding {
    tokens: Param,
    positions: Param,
    hidden: usize,
}

impl Embedding {
    /// Creates embedding tables for `vocab` tokens and `max_seq` positions.
    pub fn new(name: &str, vocab: usize, max_seq: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            tokens: Param::new(format!("{name}.tok"), normal(rng, &[vocab, hidden], 0.0, 0.02)),
            positions: Param::new(
                format!("{name}.pos"),
                normal(rng, &[max_seq, hidden], 0.0, 0.02),
            ),
            hidden,
        }
    }

    /// Embeds a token sequence into a `[seq, hidden]` variable.
    ///
    /// # Panics
    ///
    /// Panics when the sequence is longer than the positional table.
    pub fn forward(&self, tape: &Tape, tokens: &[usize], bindings: &mut Bindings) -> VarId {
        let table = self.tokens.bind(tape, bindings);
        let pos_table = self.positions.bind(tape, bindings);
        let tok = tape.embedding(table, tokens);
        let pos = tape.embedding_iota(pos_table, tokens.len());
        tape.add(tok, pos)
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.tokens.len() + self.positions.len()
    }

    /// Hidden dimension of the embeddings.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Snapshots the `(token, position)` tables for the frozen path.
    pub(crate) fn freeze_tables(&self) -> (Tensor, Tensor) {
        (self.tokens.value(), self.positions.value())
    }
}

/// Mean-pooling classification head.
pub struct ClassifierHead {
    lin: DenseLinear,
}

impl ClassifierHead {
    /// Creates a head mapping pooled `[1, hidden]` features to `classes` logits.
    pub fn new(name: &str, hidden: usize, classes: usize, rng: &mut StdRng) -> Self {
        Self { lin: DenseLinear::new(name, hidden, classes, rng) }
    }

    /// Pools over the sequence and produces `[1, classes]` logits.
    pub fn forward(&self, tape: &Tape, x: VarId, bindings: &mut Bindings) -> VarId {
        let pooled = tape.mean_pool_rows(x);
        self.lin.forward(tape, pooled, bindings)
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.lin.num_params()
    }

    /// Snapshots the projection into a tape-free [`FrozenLinear`].
    pub fn freeze(&self) -> FrozenLinear {
        self.lin.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn dense_linear_shapes_and_params() {
        let mut r = rng();
        let lin = DenseLinear::new("t", 8, 4, &mut r);
        assert_eq!(lin.num_params(), 8 * 4 + 4);
        let tape = Tape::new();
        let mut b = Bindings::new();
        let x = tape.leaf(Tensor::ones(&[3, 8]));
        let y = lin.forward(&tape, x, &mut b);
        assert_eq!(tape.shape(y), vec![3, 4]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn butterfly_linear_pads_and_truncates() {
        let mut r = rng();
        // d_in=12, d_out=6 -> butterfly size 16.
        let lin = ButterflyLinear::new("t", 12, 6, &mut r);
        assert_eq!(lin.butterfly_size(), 16);
        let tape = Tape::new();
        let mut b = Bindings::new();
        let x = tape.leaf(Tensor::ones(&[2, 12]));
        let y = lin.forward(&tape, x, &mut b);
        assert_eq!(tape.shape(y), vec![2, 6]);
    }

    #[test]
    fn butterfly_linear_uses_far_fewer_params_than_dense() {
        let mut r = rng();
        let dense = DenseLinear::new("d", 1024, 1024, &mut r);
        let bfly = ButterflyLinear::new("b", 1024, 1024, &mut r);
        assert!(dense.num_params() / bfly.num_params() > 40);
    }

    #[test]
    fn attention_output_shape_matches_input() {
        let mut r = rng();
        let attn = MultiHeadAttention::new_dense("a", 8, 2, &mut r);
        let tape = Tape::new();
        let mut b = Bindings::new();
        let x = tape.leaf(Tensor::ones(&[5, 8]));
        let y = attn.forward(&tape, x, &mut b);
        assert_eq!(tape.shape(y), vec![5, 8]);
    }

    #[test]
    fn attention_gradients_flow_to_all_projections() {
        let mut r = rng();
        let attn = MultiHeadAttention::new_butterfly("a", 8, 2, &mut r);
        let tape = Tape::new();
        let mut b = Bindings::new();
        let x = tape.leaf(fab_tensor::uniform(&mut r, &[4, 8], -1.0, 1.0));
        let y = attn.forward(&tape, x, &mut b);
        let loss = tape.sum(y);
        tape.backward(loss);
        let with_grads = b.iter().filter(|(id, _)| tape.try_grad(*id).is_some()).count();
        // Biases and all butterfly weights should receive gradients.
        assert_eq!(with_grads, b.len());
    }

    #[test]
    fn feed_forward_expands_and_contracts() {
        let mut r = rng();
        let ffn = FeedForward::new_dense("f", 8, 4, &mut r);
        let tape = Tape::new();
        let mut b = Bindings::new();
        let x = tape.leaf(Tensor::ones(&[3, 8]));
        let y = ffn.forward(&tape, x, &mut b);
        assert_eq!(tape.shape(y), vec![3, 8]);
        assert_eq!(ffn.num_params(), (8 * 32 + 32) + (32 * 8 + 8));
    }

    #[test]
    fn fourier_mixing_is_parameter_free() {
        let fm = FourierMixing::new();
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[8, 4]));
        let y = fm.forward(&tape, x);
        assert_eq!(tape.shape(y), vec![8, 4]);
        assert!(fm.flops(8, 4) > 0);
    }

    #[test]
    fn layer_norm_normalises_rows() {
        let ln = LayerNorm::new("ln", 4);
        let tape = Tape::new();
        let mut b = Bindings::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap());
        let y = ln.forward(&tape, x, &mut b);
        let v = tape.value(y);
        assert!(v.mean().abs() < 1e-5);
    }

    #[test]
    fn embedding_produces_position_dependent_vectors() {
        let mut r = rng();
        let emb = Embedding::new("e", 10, 8, 4, &mut r);
        let tape = Tape::new();
        let mut b = Bindings::new();
        // Same token at two positions must embed differently thanks to the
        // positional table.
        let out = emb.forward(&tape, &[3, 3], &mut b);
        let v = tape.value(out);
        let row0: Vec<f32> = (0..4).map(|c| v.at(0, c)).collect();
        let row1: Vec<f32> = (0..4).map(|c| v.at(1, c)).collect();
        assert_ne!(row0, row1);
    }

    #[test]
    fn classifier_head_outputs_logits() {
        let mut r = rng();
        let head = ClassifierHead::new("h", 8, 3, &mut r);
        let tape = Tape::new();
        let mut b = Bindings::new();
        let x = tape.leaf(Tensor::ones(&[5, 8]));
        let y = head.forward(&tape, x, &mut b);
        assert_eq!(tape.shape(y), vec![1, 3]);
    }
}
