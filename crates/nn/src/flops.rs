//! Analytic FLOP and parameter models for the three architectures.
//!
//! These mirror the layer implementations exactly but never materialise any
//! weights, so they can be evaluated for BERT-Large-sized configurations.
//! They drive the reproduction of Fig. 1 (operation breakdown), Fig. 3
//! (latency breakdown inputs), Fig. 17 (FLOP / model-size reduction) and feed
//! the workload descriptions consumed by `fab-accel` and `fab-baselines`.

use crate::config::{ModelConfig, ModelKind};
use fab_butterfly::flops as k;
use fab_butterfly::next_pow2;
use serde::{Deserialize, Serialize};

/// Forward-pass FLOPs of one model, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlopsBreakdown {
    /// The attention score/value computation (`Q·K^T`, softmax, `S·V`).
    pub attention_core: u64,
    /// All linear layers: Q/K/V/output projections and the FFN (dense or butterfly).
    pub linear: u64,
    /// Fourier token mixing (FNet / FBfly blocks).
    pub fourier: u64,
    /// Everything else (layer norm, shortcut additions).
    pub other: u64,
}

impl FlopsBreakdown {
    /// Total FLOPs.
    pub fn total(&self) -> u64 {
        self.attention_core + self.linear + self.fourier + self.other
    }

    /// Fraction of total FLOPs spent in the attention core.
    pub fn attention_fraction(&self) -> f64 {
        self.attention_core as f64 / self.total().max(1) as f64
    }

    /// Fraction of total FLOPs spent in linear layers.
    pub fn linear_fraction(&self) -> f64 {
        self.linear as f64 / self.total().max(1) as f64
    }
}

/// Trainable-parameter counts of one model, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParamBreakdown {
    /// Token and positional embedding tables.
    pub embedding: u64,
    /// Attention projection weights (dense or butterfly).
    pub attention_proj: u64,
    /// Feed-forward network weights (dense or butterfly).
    pub ffn: u64,
    /// Layer-norm scales/shifts and the classification head.
    pub other: u64,
}

impl ParamBreakdown {
    /// Total parameter count.
    pub fn total(&self) -> u64 {
        self.embedding + self.attention_proj + self.ffn + self.other
    }

    /// Parameter count excluding the embedding tables — the quantity the
    /// paper's "model size" comparisons use (the embedding is identical
    /// across the compared models).
    pub fn total_without_embedding(&self) -> u64 {
        self.attention_proj + self.ffn + self.other
    }
}

fn dense_linear_params(d_in: usize, d_out: usize) -> u64 {
    (d_in * d_out + d_out) as u64
}

fn butterfly_linear_params(d_in: usize, d_out: usize) -> u64 {
    let n = next_pow2(d_in.max(d_out));
    let stages = (n as f64).log2() as usize;
    (2 * n * stages + d_out) as u64
}

/// FLOPs breakdown of a forward pass over a `seq`-length input.
pub fn flops_breakdown(config: &ModelConfig, kind: ModelKind, seq: usize) -> FlopsBreakdown {
    let h = config.hidden;
    let r = config.ffn_ratio;
    let ln_per_block = 2 * k::layer_norm_flops(seq, h) + 2 * (seq * h) as u64;
    let mut out = FlopsBreakdown::default();
    let add_transformer_block = |out: &mut FlopsBreakdown| {
        out.attention_core += k::attention_core_flops(seq, h);
        out.linear += 4 * k::dense_linear_flops(seq, h, h) + k::ffn_flops(seq, h, r);
        out.other += ln_per_block;
    };
    let add_fnet_block = |out: &mut FlopsBreakdown| {
        out.fourier += k::fourier_mix_flops(next_pow2(seq), next_pow2(h));
        out.linear += k::ffn_flops(seq, h, r);
        out.other += ln_per_block;
    };
    let add_fbfly_block = |out: &mut FlopsBreakdown| {
        out.fourier += k::fourier_mix_flops(next_pow2(seq), next_pow2(h));
        out.linear += 2 * k::butterfly_linear_flops(seq, next_pow2(h * r));
        out.other += ln_per_block;
    };
    let add_abfly_block = |out: &mut FlopsBreakdown| {
        out.attention_core += k::attention_core_flops(seq, h);
        out.linear += 4 * k::butterfly_linear_flops(seq, next_pow2(h))
            + 2 * k::butterfly_linear_flops(seq, next_pow2(h * r));
        out.other += ln_per_block;
    };
    match kind {
        ModelKind::Transformer => {
            for _ in 0..config.num_layers {
                add_transformer_block(&mut out);
            }
        }
        ModelKind::FNet => {
            for _ in 0..config.num_layers {
                add_fnet_block(&mut out);
            }
        }
        ModelKind::FabNet => {
            for _ in 0..config.num_fbfly() {
                add_fbfly_block(&mut out);
            }
            for _ in 0..config.num_abfly {
                add_abfly_block(&mut out);
            }
        }
    }
    out
}

/// Parameter breakdown of a model.
pub fn param_breakdown(config: &ModelConfig, kind: ModelKind) -> ParamBreakdown {
    let h = config.hidden;
    let r = config.ffn_ratio;
    let mut out = ParamBreakdown {
        embedding: ((config.vocab_size + config.max_seq) * h) as u64,
        ..ParamBreakdown::default()
    };
    // Classification head + per-block layer norms.
    out.other += dense_linear_params(h, config.num_classes);
    out.other += (config.num_layers * 4 * h) as u64;
    match kind {
        ModelKind::Transformer => {
            out.attention_proj += config.num_layers as u64 * 4 * dense_linear_params(h, h);
            out.ffn += config.num_layers as u64
                * (dense_linear_params(h, h * r) + dense_linear_params(h * r, h));
        }
        ModelKind::FNet => {
            out.ffn += config.num_layers as u64
                * (dense_linear_params(h, h * r) + dense_linear_params(h * r, h));
        }
        ModelKind::FabNet => {
            out.attention_proj += config.num_abfly as u64 * 4 * butterfly_linear_params(h, h);
            out.ffn += config.num_layers as u64
                * (butterfly_linear_params(h, h * r) + butterfly_linear_params(h * r, h));
        }
    }
    out
}

/// The FLOP reduction factor of FABNet over another model kind for a task
/// with sequence length `seq` (Fig. 17, left).
pub fn flops_reduction(
    fabnet: &ModelConfig,
    other: &ModelConfig,
    other_kind: ModelKind,
    seq: usize,
) -> f64 {
    let fab = flops_breakdown(fabnet, ModelKind::FabNet, seq).total() as f64;
    let base = flops_breakdown(other, other_kind, seq).total() as f64;
    base / fab.max(1.0)
}

/// The parameter (model size) reduction factor of FABNet over another model
/// kind (Fig. 17, right). Embeddings are excluded, matching the paper's
/// comparison of compressed weights.
pub fn param_reduction(fabnet: &ModelConfig, other: &ModelConfig, other_kind: ModelKind) -> f64 {
    let fab = param_breakdown(fabnet, ModelKind::FabNet).total_without_embedding() as f64;
    let base = param_breakdown(other, other_kind).total_without_embedding() as f64;
    base / fab.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Model;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn analytic_params_match_constructed_model() {
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0);
        for kind in [ModelKind::Transformer, ModelKind::FNet, ModelKind::FabNet] {
            let model = Model::new(&config, kind, &mut rng);
            let analytic = param_breakdown(&config, kind).total();
            assert_eq!(model.num_params() as u64, analytic, "kind {:?}", kind);
        }
    }

    #[test]
    fn analytic_flops_match_constructed_model() {
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0);
        let seq = 16;
        for kind in [ModelKind::Transformer, ModelKind::FNet, ModelKind::FabNet] {
            let model = Model::new(&config, kind, &mut rng);
            let analytic = flops_breakdown(&config, kind, seq);
            // Block-level FLOPs exclude the residual-add "other" term counted here.
            let diff = analytic.total() as i64 - model.flops(seq) as i64;
            let slack = (2 * config.num_layers * seq * config.hidden) as i64;
            assert!(
                diff.abs() <= slack,
                "kind {:?}: {} vs {}",
                kind,
                analytic.total(),
                model.flops(seq)
            );
        }
    }

    #[test]
    fn linear_layers_dominate_short_sequences_for_bert() {
        // Fig. 1: at sequence length 128 linear layers are > 80% of operations.
        let config = ModelConfig::bert_base();
        let b = flops_breakdown(&config, ModelKind::Transformer, 128);
        assert!(b.linear_fraction() > 0.8, "linear fraction {}", b.linear_fraction());
    }

    #[test]
    fn attention_dominates_very_long_sequences_for_bert() {
        let config = ModelConfig::bert_base();
        let b = flops_breakdown(&config, ModelKind::Transformer, 8192);
        assert!(b.attention_fraction() > 0.5, "attention fraction {}", b.attention_fraction());
    }

    #[test]
    fn fabnet_flops_reduction_is_in_paper_range() {
        // Fig. 17: 10–66x FLOP reduction over the vanilla Transformer on LRA
        // tasks (sequence lengths 1024–4096).
        let fabnet = ModelConfig::fabnet_base();
        let transformer = ModelConfig::bert_base();
        for seq in [1024usize, 2048, 4096] {
            let r = flops_reduction(&fabnet, &transformer, ModelKind::Transformer, seq);
            assert!(r > 8.0 && r < 120.0, "seq {seq}: reduction {r}");
        }
    }

    #[test]
    fn fabnet_param_reduction_is_in_paper_range() {
        // Fig. 17: 2–22x parameter reduction over the vanilla Transformer.
        let fabnet = ModelConfig::fabnet_base();
        let transformer = ModelConfig::bert_base();
        let r = param_reduction(&fabnet, &transformer, ModelKind::Transformer);
        assert!(r > 10.0 && r < 80.0, "reduction {r}");
    }

    #[test]
    fn fabnet_beats_fnet_in_both_metrics() {
        let fabnet = ModelConfig::fabnet_base();
        let fnet = ModelConfig::fabnet_base();
        let fr = flops_reduction(&fabnet, &fnet, ModelKind::FNet, 1024);
        let pr = param_reduction(&fabnet, &fnet, ModelKind::FNet);
        assert!(fr > 1.5, "flops reduction over FNet {fr}");
        assert!(pr > 1.5, "param reduction over FNet {pr}");
    }
}
