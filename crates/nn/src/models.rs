//! End-to-end classification models: Transformer, FNet and FABNet.

use crate::blocks::{ABflyBlock, EncoderBlock, FBflyBlock, FNetBlock, TransformerBlock};
use crate::config::{ModelConfig, ModelKind};
use crate::frozen::FrozenModel;
use crate::layers::{ClassifierHead, Embedding};
use crate::param::Bindings;
use fab_tensor::{Tape, Tensor, VarId};
use rand::rngs::StdRng;
use rayon::prelude::*;

/// Below this many examples, batch prediction stays on the calling thread;
/// the rayon shim spawns OS threads per call, which only pays off when there
/// are several forward passes to fan out.
pub(crate) const PAR_MIN_EXAMPLES: usize = 4;

/// A sequence-classification model assembled from encoder blocks according to
/// a [`ModelConfig`] and [`ModelKind`].
///
/// For [`ModelKind::FabNet`] the block stack follows Fig. 5: `num_fbfly()`
/// FBfly blocks at the bottom and `num_abfly` ABfly blocks stacked on top.
pub struct Model {
    config: ModelConfig,
    kind: ModelKind,
    embedding: Embedding,
    blocks: Vec<Box<dyn EncoderBlock>>,
    head: ClassifierHead,
}

impl Model {
    /// Builds a model with freshly initialised parameters.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`ModelConfig::validate`].
    pub fn new(config: &ModelConfig, kind: ModelKind, rng: &mut StdRng) -> Self {
        config.validate().expect("invalid model configuration");
        let embedding =
            Embedding::new("embed", config.vocab_size, config.max_seq, config.hidden, rng);
        let mut blocks: Vec<Box<dyn EncoderBlock>> = Vec::with_capacity(config.num_layers);
        for i in 0..config.num_layers {
            let name = format!("block{i}");
            let block: Box<dyn EncoderBlock> = match kind {
                ModelKind::Transformer => Box::new(TransformerBlock::new(
                    &name,
                    config.hidden,
                    config.num_heads,
                    config.ffn_ratio,
                    rng,
                )),
                ModelKind::FNet => {
                    Box::new(FNetBlock::new(&name, config.hidden, config.ffn_ratio, rng))
                }
                ModelKind::FabNet => {
                    if i < config.num_fbfly() {
                        Box::new(FBflyBlock::new(&name, config.hidden, config.ffn_ratio, rng))
                    } else {
                        Box::new(ABflyBlock::new(
                            &name,
                            config.hidden,
                            config.num_heads,
                            config.ffn_ratio,
                            rng,
                        ))
                    }
                }
            };
            blocks.push(block);
        }
        let head = ClassifierHead::new("head", config.hidden, config.num_classes, rng);
        Self { config: config.clone(), kind, embedding, blocks, head }
    }

    /// The configuration the model was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Which architecture this model instantiates.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The encoder blocks in execution order.
    pub fn blocks(&self) -> &[Box<dyn EncoderBlock>] {
        &self.blocks
    }

    /// Records the full forward pass on `tape`, returning `[1, classes]` logits.
    ///
    /// # Panics
    ///
    /// Panics when `tokens` is empty or longer than `config.max_seq`.
    pub fn forward(&self, tape: &Tape, tokens: &[usize], bindings: &mut Bindings) -> VarId {
        assert!(!tokens.is_empty(), "cannot run a model on an empty sequence");
        assert!(
            tokens.len() <= self.config.max_seq,
            "sequence length {} exceeds max_seq {}",
            tokens.len(),
            self.config.max_seq
        );
        let mut x = self.embedding.forward(tape, tokens, bindings);
        for block in &self.blocks {
            x = block.forward(tape, x, bindings);
        }
        self.head.forward(tape, x, bindings)
    }

    /// Convenience inference entry point: returns the class logits for a
    /// token sequence without exposing the tape.
    pub fn predict(&self, tokens: &[usize]) -> Vec<f32> {
        let tape = Tape::new();
        let mut bindings = Bindings::new();
        let logits = self.forward(&tape, tokens, &mut bindings);
        tape.value(logits).into_vec()
    }

    /// Returns the predicted class for a token sequence.
    pub fn predict_class(&self, tokens: &[usize]) -> usize {
        let logits = self.predict(tokens);
        logits
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc })
            .0
    }

    /// Records a training step's loss for `(tokens, label)` and returns the
    /// tape, loss variable and parameter bindings.
    pub fn loss(&self, tokens: &[usize], label: usize) -> (Tape, VarId, Bindings) {
        let tape = Tape::new();
        let mut bindings = Bindings::new();
        let loss = self.loss_on(&tape, &mut bindings, tokens, label);
        (tape, loss, bindings)
    }

    /// Records a training step's loss on a caller-provided (typically
    /// [`Tape::reset`]-reused) tape — the allocation-free entry point used by
    /// [`crate::TrainStep`].
    pub fn loss_on(
        &self,
        tape: &Tape,
        bindings: &mut Bindings,
        tokens: &[usize],
        label: usize,
    ) -> VarId {
        let logits = self.forward(tape, tokens, bindings);
        tape.cross_entropy(logits, &[label])
    }

    /// Total number of trainable scalar parameters (embedding + blocks + head).
    pub fn num_params(&self) -> usize {
        self.embedding.num_params()
            + self.blocks.iter().map(|b| b.num_params()).sum::<usize>()
            + self.head.num_params()
    }

    /// Total forward FLOPs of the encoder blocks for a `seq`-length input
    /// (embedding lookups and the classifier head are negligible and excluded,
    /// as in the paper's operation counts).
    pub fn flops(&self, seq: usize) -> u64 {
        self.blocks.iter().map(|b| b.flops(seq)).sum()
    }

    /// Snapshots the current parameter values into an immutable, `Send +
    /// Sync`, tape-free [`FrozenModel`] for inference (see the
    /// [`crate::frozen`] module docs for the exactness guarantees).
    pub fn freeze(&self) -> FrozenModel {
        let (tok_table, pos_table) = self.embedding.freeze_tables();
        FrozenModel {
            config: self.config.clone(),
            kind: self.kind,
            tok_table,
            pos_table,
            blocks: self.blocks.iter().map(|b| b.freeze()).collect(),
            head: self.head.freeze(),
            fast_math: false,
        }
    }

    /// Returns per-example logits for a batch of sequences.
    ///
    /// The model is frozen once and the examples fan out across rayon
    /// workers; each example's logits are bit-identical to
    /// [`Model::predict`] on that sequence (the tape and frozen paths run
    /// the same kernels in the same order).
    pub fn predict_batch(&self, batch: &[Vec<usize>]) -> Vec<Vec<f32>> {
        if batch.len() < PAR_MIN_EXAMPLES {
            return batch.iter().map(|tokens| self.predict(tokens)).collect();
        }
        let frozen = self.freeze();
        (0..batch.len()).into_par_iter().map(|i| frozen.logits(&batch[i])).collect()
    }

    /// Returns a short human-readable description of the block stack, e.g.
    /// `"FBfly x10 + ABfly x2"`.
    pub fn architecture_summary(&self) -> String {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for block in &self.blocks {
            match counts.last_mut() {
                Some((name, count)) if *name == block.name() => *count += 1,
                _ => counts.push((block.name(), 1)),
            }
        }
        counts
            .iter()
            .map(|(name, count)| format!("{name} x{count}"))
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Returns the hidden-state tensor after the final encoder block for a
    /// token sequence (used by the accelerator cross-validation tests).
    pub fn encode(&self, tokens: &[usize]) -> Tensor {
        let tape = Tape::new();
        let mut bindings = Bindings::new();
        let mut x = self.embedding.forward(&tape, tokens, &mut bindings);
        for block in &self.blocks {
            x = block.forward(&tape, x, &mut bindings);
        }
        tape.value(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> ModelConfig {
        ModelConfig::tiny_for_tests()
    }

    #[test]
    fn fabnet_stacks_fbfly_then_abfly() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = Model::new(&tiny(), ModelKind::FabNet, &mut rng);
        assert_eq!(model.architecture_summary(), "FBfly x1 + ABfly x1");
    }

    #[test]
    fn transformer_and_fnet_block_stacks() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Model::new(&tiny(), ModelKind::Transformer, &mut rng);
        assert_eq!(t.architecture_summary(), "Transformer x2");
        let f = Model::new(&tiny(), ModelKind::FNet, &mut rng);
        assert_eq!(f.architecture_summary(), "FNet x2");
    }

    #[test]
    fn predict_returns_class_logits() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = Model::new(&tiny(), ModelKind::FabNet, &mut rng);
        let logits = model.predict(&[1, 2, 3, 4]);
        assert_eq!(logits.len(), tiny().num_classes);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fabnet_has_far_fewer_params_than_transformer() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = tiny().with_hidden(64);
        let t = Model::new(&config, ModelKind::Transformer, &mut rng);
        let f = Model::new(&config, ModelKind::FabNet, &mut rng);
        assert!(t.num_params() > f.num_params());
    }

    #[test]
    fn loss_backward_produces_gradients_for_all_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Model::new(&tiny(), ModelKind::FabNet, &mut rng);
        let (tape, loss, bindings) = model.loss(&[1, 2, 3, 4, 5, 6, 7, 0], 2);
        tape.backward(loss);
        let have = bindings.iter().filter(|(id, _)| tape.try_grad(*id).is_some()).count();
        assert_eq!(have, bindings.len());
        assert!(tape.value(loss).as_slice()[0] > 0.0);
    }

    #[test]
    fn rejects_sequences_beyond_max_len() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = Model::new(&tiny(), ModelKind::FNet, &mut rng);
        let tokens = vec![0usize; tiny().max_seq + 1];
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.predict(&tokens)));
        assert!(result.is_err());
    }

    #[test]
    fn flops_ordering_matches_paper() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = tiny().with_hidden(64).with_abfly(0);
        let t = Model::new(&config, ModelKind::Transformer, &mut rng);
        let f = Model::new(&config, ModelKind::FNet, &mut rng);
        let fab = Model::new(&config, ModelKind::FabNet, &mut rng);
        let seq = 128;
        assert!(t.flops(seq) > f.flops(seq));
        assert!(f.flops(seq) > fab.flops(seq));
    }
}
