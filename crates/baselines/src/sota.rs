//! The state-of-the-art attention accelerators of Table V, under the paper's
//! normalisation (every ASIC scaled to 128 multipliers at 1 GHz; FPGA designs
//! reported as implemented), together with helpers to assemble the full
//! comparison table including this work.

use serde::{Deserialize, Serialize};

/// Implementation technology of a published accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Technology {
    /// ASIC, with the process node in nanometres.
    Asic(u32),
    /// FPGA, with the process node in nanometres.
    Fpga(u32),
}

/// One row of Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SotaAccelerator {
    /// Accelerator name.
    pub name: &'static str,
    /// Publication venue and year, for reference.
    pub venue: &'static str,
    /// Implementation technology.
    pub technology: Technology,
    /// Normalised end-to-end latency on the one-layer vanilla Transformer /
    /// LRA-Image workload, in milliseconds.
    pub latency_ms: f64,
    /// Power consumption in watts (after the paper's linear power scaling).
    pub power_w: f64,
}

impl SotaAccelerator {
    /// Throughput in predictions per second.
    pub fn throughput_pred_per_s(&self) -> f64 {
        1e3 / self.latency_ms
    }

    /// Energy efficiency in predictions per joule.
    pub fn energy_eff_pred_per_j(&self) -> f64 {
        self.throughput_pred_per_s() / self.power_w
    }
}

/// The seven published accelerators of Table V with their normalised numbers.
pub fn sota_catalogue() -> Vec<SotaAccelerator> {
    use Technology::*;
    vec![
        SotaAccelerator {
            name: "A3",
            venue: "HPCA'20",
            technology: Asic(40),
            latency_ms: 56.0,
            power_w: 1.217,
        },
        SotaAccelerator {
            name: "SpAtten",
            venue: "HPCA'21",
            technology: Asic(40),
            latency_ms: 48.8,
            power_w: 1.060,
        },
        SotaAccelerator {
            name: "Sanger",
            venue: "MICRO'21",
            technology: Asic(55),
            latency_ms: 45.2,
            power_w: 0.801,
        },
        SotaAccelerator {
            name: "Energon",
            venue: "TCAD'21",
            technology: Asic(45),
            latency_ms: 44.2,
            power_w: 2.633,
        },
        SotaAccelerator {
            name: "ELSA",
            venue: "ISCA'21",
            technology: Asic(40),
            latency_ms: 34.7,
            power_w: 0.976,
        },
        SotaAccelerator {
            name: "DOTA",
            venue: "ASPLOS'22",
            technology: Asic(22),
            latency_ms: 34.1,
            power_w: 0.858,
        },
        SotaAccelerator {
            name: "FTRANS",
            venue: "ISLPED'20",
            technology: Fpga(16),
            latency_ms: 61.6,
            power_w: 25.130,
        },
    ]
}

/// The paper's reported numbers for its own design (640 DSPs on a VCU128),
/// used as the reference when checking reproduced results.
pub fn paper_this_work() -> SotaAccelerator {
    SotaAccelerator {
        name: "Butterfly accelerator (paper)",
        venue: "MICRO'22",
        technology: Technology::Fpga(16),
        latency_ms: 2.4,
        power_w: 11.355,
    }
}

/// A row of the assembled comparison (Table V) including derived metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Accelerator name.
    pub name: String,
    /// Latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput in predictions per second.
    pub throughput: f64,
    /// Power in watts.
    pub power_w: f64,
    /// Energy efficiency in predictions per joule.
    pub energy_eff: f64,
    /// Speedup of "this work" over this row.
    pub speedup_of_this_work: f64,
}

/// Assembles the full Table V given the measured latency and power of this
/// work's design.
pub fn comparison_table(our_latency_ms: f64, our_power_w: f64) -> Vec<ComparisonRow> {
    let mut rows: Vec<ComparisonRow> = sota_catalogue()
        .into_iter()
        .map(|s| ComparisonRow {
            name: s.name.to_string(),
            latency_ms: s.latency_ms,
            throughput: s.throughput_pred_per_s(),
            power_w: s.power_w,
            energy_eff: s.energy_eff_pred_per_j(),
            speedup_of_this_work: s.latency_ms / our_latency_ms,
        })
        .collect();
    let ours_throughput = 1e3 / our_latency_ms;
    rows.push(ComparisonRow {
        name: "Our work (reproduced)".to_string(),
        latency_ms: our_latency_ms,
        throughput: ours_throughput,
        power_w: our_power_w,
        energy_eff: ours_throughput / our_power_w,
        speedup_of_this_work: 1.0,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table_v() {
        let cat = sota_catalogue();
        assert_eq!(cat.len(), 7);
        let dota = cat.iter().find(|s| s.name == "DOTA").unwrap();
        assert!((dota.latency_ms - 34.1).abs() < 1e-9);
        assert!((dota.energy_eff_pred_per_j() - 34.18).abs() < 0.2);
        let ftrans = cat.iter().find(|s| s.name == "FTRANS").unwrap();
        assert!((ftrans.energy_eff_pred_per_j() - 0.65).abs() < 0.05);
    }

    #[test]
    fn paper_speedup_range_is_14_to_24x_over_asics() {
        // Table V: 14.2-23.2x speedup over the ASIC designs at 2.4 ms.
        let ours = paper_this_work();
        let speedups: Vec<f64> = sota_catalogue()
            .iter()
            .filter(|s| matches!(s.technology, Technology::Asic(_)))
            .map(|s| s.latency_ms / ours.latency_ms)
            .collect();
        let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        assert!((min - 14.2).abs() < 0.3, "min speedup {min}");
        assert!((max - 23.3).abs() < 0.4, "max speedup {max}");
    }

    #[test]
    fn paper_energy_efficiency_beats_every_baseline() {
        let ours = paper_this_work();
        for s in sota_catalogue() {
            assert!(ours.energy_eff_pred_per_j() > s.energy_eff_pred_per_j(), "{}", s.name);
        }
    }

    #[test]
    fn comparison_table_includes_all_rows_plus_ours() {
        let table = comparison_table(2.4, 11.355);
        assert_eq!(table.len(), 8);
        let ftrans = table.iter().find(|r| r.name == "FTRANS").unwrap();
        assert!((ftrans.speedup_of_this_work - 25.67).abs() < 0.2);
    }
}
