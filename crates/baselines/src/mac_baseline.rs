//! The baseline MAC-array accelerator of Section VI-D.
//!
//! The design is a conventional systolic/MAC accelerator: multiplier arrays
//! followed by adder trees, with fine-grained intra- and inter-layer
//! pipelining and load-balanced parallelism allocation. It executes dense
//! linear layers and the attention core at high utilisation, but:
//!
//! * Fourier layers are implemented as dense DFT matrix multiplications
//!   (the baseline has no FFT datapath), and
//! * butterfly linear layers run at low PE utilisation because their strided,
//!   stage-dependent access pattern does not map onto the MAC arrays.
//!
//! Both effects are exactly why Fig. 19's "FABNet on baseline" bar improves
//! over "BERT on baseline" only modestly, while the butterfly accelerator
//! unlocks the full reduction.

use fab_accel::workload::{LayerOp, LayerSchedule};
use serde::{Deserialize, Serialize};

/// The baseline accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacBaseline {
    /// Total number of multipliers.
    pub multipliers: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Off-chip bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Numeric precision in bytes.
    pub precision_bytes: usize,
    /// PE utilisation on dense GEMM / attention workloads.
    pub dense_utilization: f64,
    /// PE utilisation on butterfly-sparse workloads.
    pub butterfly_utilization: f64,
}

impl MacBaseline {
    /// The Section VI-D reference design: 2048 multipliers on a VCU128 with
    /// HBM, clocked at 200 MHz.
    pub fn vcu128_2048() -> Self {
        Self {
            multipliers: 2048,
            clock_mhz: 200.0,
            bandwidth_gbps: 450.0,
            precision_bytes: 2,
            dense_utilization: 0.85,
            butterfly_utilization: 0.25,
        }
    }

    /// Returns a copy with a different multiplier budget.
    pub fn with_multipliers(mut self, multipliers: usize) -> Self {
        self.multipliers = multipliers;
        self
    }

    /// Bytes transferable per cycle.
    fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / (self.clock_mhz * 1e6)
    }

    /// MAC count and utilisation of one op on this design.
    fn macs_and_utilization(&self, op: &LayerOp) -> (u64, f64) {
        match *op {
            LayerOp::DenseLinear { rows, d_in, d_out } => {
                ((rows * d_in * d_out) as u64, self.dense_utilization)
            }
            LayerOp::AttentionCore { seq, hidden, .. } => {
                (2 * (seq * seq * hidden) as u64, self.dense_utilization)
            }
            // Dense DFT matmuls along both dimensions.
            LayerOp::Fft2d { seq, hidden } => {
                ((seq * hidden * hidden + hidden * seq * seq) as u64, self.dense_utilization)
            }
            // The butterfly factors are executed stage by stage; the MAC
            // arrays cannot keep their pipelines full on the strided accesses.
            LayerOp::ButterflyLinear { rows, n } => {
                let stages = (n as f64).log2().ceil() as u64;
                (rows as u64 * stages * 2 * n as u64, self.butterfly_utilization)
            }
            LayerOp::PostProcess { rows, hidden } => ((rows * hidden) as u64, 1.0),
        }
    }

    /// Simulates one forward pass of `schedule` on the baseline design.
    pub fn simulate(&self, schedule: &LayerSchedule) -> BaselineReport {
        let mut total_cycles = 0u64;
        for op in schedule.ops() {
            let (macs, util) = self.macs_and_utilization(op);
            let effective = (self.multipliers as f64 * util).max(1.0);
            let compute = (macs as f64 / effective).ceil() as u64;
            let bytes = op.bytes_in(self.precision_bytes) + op.bytes_out(self.precision_bytes);
            let memory = (bytes as f64 / self.bytes_per_cycle()).ceil() as u64;
            total_cycles += compute.max(memory);
        }
        BaselineReport { clock_mhz: self.clock_mhz, total_cycles }
    }
}

impl Default for MacBaseline {
    fn default() -> Self {
        Self::vcu128_2048()
    }
}

/// Latency report of the baseline accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Clock frequency of the design (MHz).
    pub clock_mhz: f64,
    /// Total cycles for one forward pass.
    pub total_cycles: u64,
}

impl BaselineReport {
    /// Latency in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_nn::{ModelConfig, ModelKind};

    fn schedule(kind: ModelKind, seq: usize) -> LayerSchedule {
        let config = match kind {
            ModelKind::Transformer => ModelConfig::bert_base(),
            _ => ModelConfig::fabnet_base(),
        };
        LayerSchedule::from_model(&config, kind, seq)
    }

    #[test]
    fn fabnet_on_baseline_beats_bert_on_baseline_modestly() {
        // Fig. 19: the algorithm alone gives 1.6-2.3x on the baseline hardware.
        let baseline = MacBaseline::vcu128_2048();
        for seq in [128usize, 256, 512, 1024] {
            let bert = baseline.simulate(&schedule(ModelKind::Transformer, seq));
            let fabnet = baseline.simulate(&schedule(ModelKind::FabNet, seq));
            let speedup = bert.total_seconds() / fabnet.total_seconds();
            assert!(speedup > 1.2 && speedup < 4.0, "seq {seq}: algorithm speedup {speedup}");
        }
    }

    #[test]
    fn butterfly_accelerator_beats_baseline_by_an_order_of_magnitude() {
        // Fig. 19: the hardware contributes a further 19.5-53.3x.
        use fab_accel::{AcceleratorConfig, Simulator};
        let baseline = MacBaseline::vcu128_2048();
        let butterfly = Simulator::new(AcceleratorConfig::vcu128_be120());
        for seq in [128usize, 1024] {
            let sched = schedule(ModelKind::FabNet, seq);
            let base = baseline.simulate(&sched);
            let accel = butterfly.simulate(&sched);
            let speedup = base.total_seconds() / accel.total_seconds();
            assert!(speedup > 5.0, "seq {seq}: hardware speedup {speedup}");
        }
    }

    #[test]
    fn latency_scales_with_multiplier_budget() {
        let sched = schedule(ModelKind::Transformer, 512);
        let small = MacBaseline::vcu128_2048().with_multipliers(512).simulate(&sched);
        let big = MacBaseline::vcu128_2048().simulate(&sched);
        assert!(small.total_cycles > 2 * big.total_cycles);
    }
}
