//! # fab-baselines
//!
//! The comparison points of the paper's evaluation:
//!
//! * [`mac_baseline`] — the baseline FPGA accelerator of Section VI-D: an
//!   array of multiply-accumulate units with intra-/inter-layer pipelining
//!   that executes dense linear layers and attention natively, implements
//!   Fourier layers as dense DFT matrix multiplications, and exploits
//!   butterfly sparsity only poorly (Fig. 19's reference design);
//! * [`device`] — analytic roofline models of the CPUs and GPUs used in
//!   Section VI-E (Nvidia V100, TITAN Xp, Jetson Nano, Raspberry Pi 4, Intel
//!   Xeon Gold 6154), substituting for the physical boards (see DESIGN.md);
//! * [`sota`] — the published state-of-the-art attention accelerators of
//!   Table V (A3, SpAtten, Sanger, Energon, ELSA, DOTA, FTRANS) with the
//!   paper's 128-multiplier / 1 GHz normalisation.

#![warn(missing_docs)]

pub mod device;
pub mod mac_baseline;
pub mod sota;

pub use device::{latency_breakdown, DeviceKind, DeviceModel, LatencyBreakdown};
pub use mac_baseline::{BaselineReport, MacBaseline};
pub use sota::{sota_catalogue, ComparisonRow, SotaAccelerator};
