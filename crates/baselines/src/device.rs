//! Analytic roofline models of the CPU and GPU platforms used by the paper's
//! Section VI-E comparison and Section II-C latency breakdown.
//!
//! Each device is described by its effective peak throughput, memory
//! bandwidth, board power and a per-kernel launch/framework overhead. A
//! layer's latency is `max(compute, memory) + overhead` — the standard
//! roofline plus the fixed per-op cost that dominates small butterfly/FFT
//! kernels on GPUs (which is why the FPGA wins at short sequence lengths in
//! Fig. 20 despite its much lower raw peak).

use fab_accel::workload::LayerSchedule;
use fab_nn::flops::FlopsBreakdown;
use fab_nn::{ModelConfig, ModelKind};
use serde::{Deserialize, Serialize};

/// The platforms of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Nvidia V100 (server GPU).
    V100,
    /// Nvidia TITAN Xp (workstation GPU).
    TitanXp,
    /// Nvidia Jetson Nano (edge GPU).
    JetsonNano,
    /// Raspberry Pi 4 (edge CPU).
    RaspberryPi4,
    /// Intel Xeon Gold 6154 (server CPU).
    XeonGold6154,
}

/// Roofline description of one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Which device this models.
    pub kind: DeviceKind,
    /// Display name.
    pub name: String,
    /// Effective sustained throughput on transformer-style kernels (GFLOP/s).
    pub effective_gflops: f64,
    /// Sustained memory bandwidth (GB/s).
    pub bandwidth_gbps: f64,
    /// Board/SoC power when running the workload (W).
    pub power_w: f64,
    /// Fixed per-operation overhead (kernel launch, framework dispatch), in seconds.
    pub per_op_overhead_s: f64,
    /// Relative efficiency of the (unfused) attention score/value computation
    /// compared to dense GEMM on this device: softmax, transposes and the
    /// small head dimension keep attention far from GEMM throughput.
    pub attention_efficiency: f64,
}

impl DeviceModel {
    /// Builds the model for one platform.
    ///
    /// Effective throughputs are sustained numbers for transformer inference
    /// (well below datasheet peaks), chosen so the relative results of
    /// Fig. 3 and Fig. 20 are reproduced; see EXPERIMENTS.md for calibration.
    pub fn new(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::V100 => Self {
                kind,
                name: "Nvidia V100".into(),
                effective_gflops: 18_000.0,
                bandwidth_gbps: 700.0,
                power_w: 250.0,
                per_op_overhead_s: 18e-6,
                attention_efficiency: 0.15,
            },
            DeviceKind::TitanXp => Self {
                kind,
                name: "Nvidia TITAN Xp".into(),
                effective_gflops: 9_000.0,
                bandwidth_gbps: 400.0,
                power_w: 220.0,
                per_op_overhead_s: 18e-6,
                attention_efficiency: 0.15,
            },
            DeviceKind::JetsonNano => Self {
                kind,
                name: "Nvidia Jetson Nano".into(),
                effective_gflops: 230.0,
                bandwidth_gbps: 20.0,
                power_w: 10.0,
                per_op_overhead_s: 60e-6,
                attention_efficiency: 0.15,
            },
            DeviceKind::RaspberryPi4 => Self {
                kind,
                name: "Raspberry Pi 4".into(),
                effective_gflops: 6.0,
                bandwidth_gbps: 3.5,
                power_w: 5.0,
                per_op_overhead_s: 15e-6,
                attention_efficiency: 0.18,
            },
            DeviceKind::XeonGold6154 => Self {
                kind,
                name: "Intel Xeon Gold 6154".into(),
                effective_gflops: 900.0,
                bandwidth_gbps: 100.0,
                power_w: 200.0,
                per_op_overhead_s: 10e-6,
                attention_efficiency: 0.18,
            },
        }
    }

    /// Latency of a single operation given its FLOPs and memory traffic.
    pub fn op_latency_s(&self, flops: u64, bytes: u64) -> f64 {
        let compute = flops as f64 / (self.effective_gflops * 1e9);
        let memory = bytes as f64 / (self.bandwidth_gbps * 1e9);
        compute.max(memory) + self.per_op_overhead_s
    }

    /// Latency of an attention score/value operation, which runs at
    /// [`DeviceModel::attention_efficiency`] of the dense-GEMM throughput.
    pub fn attention_latency_s(&self, flops: u64, bytes: u64) -> f64 {
        let compute = flops as f64 / (self.effective_gflops * self.attention_efficiency * 1e9);
        let memory = bytes as f64 / (self.bandwidth_gbps * 1e9);
        compute.max(memory) + self.per_op_overhead_s
    }

    /// End-to-end latency of a model forward pass described by `schedule`.
    pub fn simulate(&self, schedule: &LayerSchedule, precision_bytes: usize) -> f64 {
        schedule
            .ops()
            .map(|op| {
                let bytes = op.bytes_in(precision_bytes) + op.bytes_out(precision_bytes);
                if op.is_attention() {
                    self.attention_latency_s(op.flops(), bytes)
                } else {
                    self.op_latency_s(op.flops(), bytes)
                }
            })
            .sum()
    }

    /// Energy per prediction in joules for a given latency.
    pub fn energy_per_prediction(&self, latency_s: f64) -> f64 {
        latency_s * self.power_w
    }

    /// Achieved GOP/s per watt for a workload with `flops` operations.
    pub fn gops_per_watt(&self, flops: u64, latency_s: f64) -> f64 {
        flops as f64 / latency_s / 1e9 / self.power_w
    }
}

/// Execution-time breakdown of a Transformer forward pass on a device
/// (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Seconds spent in attention (score/value) computation.
    pub attention_s: f64,
    /// Seconds spent in linear layers (projections + FFN).
    pub linear_s: f64,
    /// Seconds spent in everything else (layer norm, residuals, transposes, IO).
    pub other_s: f64,
}

impl LatencyBreakdown {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.attention_s + self.linear_s + self.other_s
    }

    /// Percentage of time in attention.
    pub fn attention_pct(&self) -> f64 {
        100.0 * self.attention_s / self.total_s()
    }

    /// Percentage of time in linear layers.
    pub fn linear_pct(&self) -> f64 {
        100.0 * self.linear_s / self.total_s()
    }
}

/// Computes the Fig. 3 execution-time breakdown of a Transformer with
/// configuration `config` and sequence length `seq` on `device`.
///
/// Compute-bound components scale with their FLOPs; the "other" category adds
/// the per-op overheads and the activation traffic of the norm/residual ops.
pub fn latency_breakdown(
    device: &DeviceModel,
    config: &ModelConfig,
    seq: usize,
) -> LatencyBreakdown {
    let flops: FlopsBreakdown = fab_nn::flops::flops_breakdown(config, ModelKind::Transformer, seq);
    let schedule = LayerSchedule::from_model(config, ModelKind::Transformer, seq);
    // Traffic estimates: attention reads/writes Q, K, V and the score matrix;
    // linear layers read weights and activations.
    let bytes_per_elem = 2u64;
    let attn_bytes = config.num_layers as u64
        * (4 * (seq * config.hidden) as u64 + 2 * (seq * seq) as u64)
        * bytes_per_elem;
    let linear_bytes = config.num_layers as u64
        * ((4 * config.hidden * config.hidden
            + 2 * config.hidden * config.hidden * config.ffn_ratio
            + 6 * seq * config.hidden) as u64)
        * bytes_per_elem;
    let other_bytes = config.num_layers as u64 * (4 * seq * config.hidden) as u64 * bytes_per_elem;
    let ops_per_layer = 9.0;
    let overhead = config.num_layers as f64 * ops_per_layer * device.per_op_overhead_s;
    let _ = schedule;
    LatencyBreakdown {
        attention_s: device.attention_latency_s(flops.attention_core, attn_bytes),
        linear_s: device.op_latency_s(flops.linear, linear_bytes),
        other_s: device.op_latency_s(flops.other, other_bytes) + overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_layers_dominate_short_sequences_on_gpu_and_cpu() {
        // Fig. 3: at sequence length 256 linear layers take the majority of
        // the time on both the V100 and the Xeon.
        let config = ModelConfig::bert_large();
        for kind in [DeviceKind::V100, DeviceKind::XeonGold6154] {
            let b = latency_breakdown(&DeviceModel::new(kind), &config, 256);
            assert!(b.linear_pct() > 50.0, "{kind:?}: linear {}%", b.linear_pct());
        }
    }

    #[test]
    fn attention_becomes_dominant_at_long_sequences() {
        // Fig. 3: by sequence length 2048 attention dominates.
        let config = ModelConfig::bert_large();
        for kind in [DeviceKind::V100, DeviceKind::XeonGold6154] {
            let b = latency_breakdown(&DeviceModel::new(kind), &config, 2048);
            assert!(
                b.attention_pct() > b.linear_pct(),
                "{kind:?}: attention {}% vs linear {}%",
                b.attention_pct(),
                b.linear_pct()
            );
        }
    }

    #[test]
    fn server_gpus_are_faster_than_edge_devices() {
        let config = ModelConfig::fabnet_base();
        let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, 512);
        let v100 = DeviceModel::new(DeviceKind::V100).simulate(&schedule, 2);
        let nano = DeviceModel::new(DeviceKind::JetsonNano).simulate(&schedule, 2);
        let rpi = DeviceModel::new(DeviceKind::RaspberryPi4).simulate(&schedule, 2);
        assert!(v100 < nano && nano < rpi);
    }

    #[test]
    fn gpu_latency_has_an_overhead_floor_at_short_sequences() {
        let config = ModelConfig::fabnet_base();
        let short = LayerSchedule::from_model(&config, ModelKind::FabNet, 128);
        let v100 = DeviceModel::new(DeviceKind::V100);
        let latency = v100.simulate(&short, 2);
        let num_ops = short.ops().count() as f64;
        assert!(latency >= num_ops * v100.per_op_overhead_s);
    }

    #[test]
    fn energy_metrics_are_consistent() {
        let d = DeviceModel::new(DeviceKind::JetsonNano);
        let e = d.energy_per_prediction(0.01);
        assert!((e - 0.1).abs() < 1e-9);
        assert!(d.gops_per_watt(1_000_000_000, 0.01) > 0.0);
    }
}
