//! PR-2 batcher property tests: logits served through the dynamic batcher
//! (bucketed, padded, fused batches) must match the single-request tape path
//! bit-for-bit at `RAYON_NUM_THREADS=1` and to 1e-5 at any thread count,
//! across odd batch sizes and mixed sequence lengths.

use fab_nn::{Model, ModelConfig, ModelKind};
use fab_serve::{InferenceSession, ServeConfig, Server};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Serialises tests that mutate `RAYON_NUM_THREADS`, which is process-global.
static THREAD_ENV_LOCK: Mutex<()> = Mutex::new(());

fn model_for(seed: u64, kind: ModelKind) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(&ModelConfig::tiny_for_tests(), kind, &mut rng)
}

fn mixed_batch(rng: &mut StdRng, n: usize, vocab: usize, max_len: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..=max_len);
            (0..len).map(|_| rng.gen_range(0..vocab)).collect()
        })
        .collect()
}

/// Submits every sequence through the server (async, so the batcher can
/// coalesce them) and returns the per-request logits in submission order.
fn serve_all(
    model: &Model,
    exact: bool,
    config: ServeConfig,
    batch: &[Vec<usize>],
) -> Vec<Vec<f32>> {
    let session = if exact { InferenceSession::exact(model) } else { InferenceSession::new(model) };
    let server = Server::start(session, config);
    let handle = server.handle();
    let pending: Vec<_> =
        batch.iter().map(|tokens| handle.submit(tokens.clone()).expect("accepted")).collect();
    let logits: Vec<Vec<f32>> =
        pending.into_iter().map(|p| p.wait().expect("served").logits).collect();
    let stats = server.stats();
    assert_eq!(stats.completed as usize, batch.len());
    server.shutdown();
    logits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn served_batches_match_single_requests_bit_for_bit_serial(
        batch_size in 1usize..12,
        seed in 0u64..500,
    ) {
        let _guard = THREAD_ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let kind = if seed % 2 == 0 { ModelKind::FabNet } else { ModelKind::FNet };
        let model = model_for(seed, kind);
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbadc0de);
        let batch = mixed_batch(&mut rng, batch_size, config.vocab_size, config.max_seq);
        let serve_config = ServeConfig {
            max_batch: 5, // odd vs the batch sizes: forces partial batches
            max_wait_us: 2_000,
            num_workers: 2,
            ..ServeConfig::default()
        };
        let served = serve_all(&model, true, serve_config, &batch);
        std::env::remove_var("RAYON_NUM_THREADS");
        for (tokens, got) in batch.iter().zip(served.iter()) {
            let reference = model.predict(tokens);
            prop_assert!(
                &reference == got,
                "serial served logits diverged for len {}: {reference:?} vs {got:?}",
                tokens.len()
            );
        }
    }

    #[test]
    fn fast_math_batches_match_fast_math_single_requests_bit_for_bit(
        batch_size in 1usize..12,
        seed in 0u64..500,
    ) {
        // Batching invariance of the default (fast-math) serving session:
        // whatever batch a request rides in, its logits equal the same
        // session's single-request answer exactly.
        let model = model_for(seed, ModelKind::FabNet);
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let batch = mixed_batch(&mut rng, batch_size, config.vocab_size, config.max_seq);
        let serve_config =
            ServeConfig { max_batch: 5, max_wait_us: 2_000, ..ServeConfig::default() };
        let served = serve_all(&model, false, serve_config, &batch);
        let session = InferenceSession::new(&model);
        for (tokens, got) in batch.iter().zip(served.iter()) {
            let single = session.logits(tokens);
            prop_assert!(
                &single == got,
                "fast-math batching changed logits for len {}",
                tokens.len()
            );
        }
    }

    #[test]
    fn served_batches_match_single_requests_at_default_threads(
        batch_size in 1usize..16,
        seed in 0u64..500,
    ) {
        let kind = if seed % 2 == 0 { ModelKind::FabNet } else { ModelKind::Transformer };
        let model = model_for(seed, kind);
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + 7);
        let batch = mixed_batch(&mut rng, batch_size, config.vocab_size, config.max_seq);
        let serve_config =
            ServeConfig { max_batch: 7, max_wait_us: 1_000, ..ServeConfig::default() };
        let served = serve_all(&model, false, serve_config, &batch);
        for (tokens, got) in batch.iter().zip(served.iter()) {
            let reference = model.predict(tokens);
            prop_assert!(reference.len() == got.len());
            let max_diff = reference
                .iter()
                .zip(got.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            prop_assert!(
                max_diff <= 1e-5,
                "served logits diverged by {max_diff} for len {}",
                tokens.len()
            );
        }
    }
}

/// Direct (serverless) check of the bucketed/padded fused path: every pad
/// length that a bucket could choose yields bit-identical logits.
#[test]
fn fused_batch_is_pad_invariant_and_bit_exact() {
    let _guard = THREAD_ENV_LOCK.lock().unwrap();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let model = model_for(41, ModelKind::FabNet);
    let frozen = model.freeze();
    let config = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(99);
    let batch = mixed_batch(&mut rng, 7, config.vocab_size, 9);
    let max_len = batch.iter().map(Vec::len).max().unwrap();
    let reference: Vec<Vec<f32>> = batch.iter().map(|t| model.predict(t)).collect();
    for pad_to in max_len..=config.max_seq {
        assert_eq!(frozen.logits_batch(&batch, pad_to), reference, "pad_to {pad_to}");
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// PR-6 drain property: a server shut down while requests are still queued
/// answers every accepted request — with a prediction, or with an explicit
/// error for requests whose deadline expired — across worker counts,
/// bucket mixes and deadline mixes. Zero accepted requests dropped.
mod drain {
    use super::*;
    use fab_serve::ServeError;
    use std::time::Duration;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn shutdown_while_queued_answers_every_accepted_request(
            num_workers in 1usize..5,
            batch_size in 1usize..48,
            seed in 0u64..500,
        ) {
            let model = model_for(seed, ModelKind::FabNet);
            let config = ModelConfig::tiny_for_tests();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xd5a1);
            let batch = mixed_batch(&mut rng, batch_size, config.vocab_size, config.max_seq);
            let serve_config = ServeConfig {
                max_batch: 3,
                max_wait_us: 200,
                queue_capacity: 1024, // everything is accepted
                num_workers,
                ..ServeConfig::default()
            };
            let server = Server::start(InferenceSession::new(&model), serve_config);
            let handle = server.handle();
            // A mix of undeadlined requests and very tight deadlines, so the
            // drain interleaves answering and shedding.
            let pending: Vec<_> = batch
                .iter()
                .enumerate()
                .map(|(i, tokens)| {
                    let deadline =
                        (i % 3 == 2).then(|| Duration::from_micros(1 + (i as u64 % 50)));
                    (
                        deadline.is_some(),
                        handle
                            .submit_with_deadline(tokens.clone(), deadline)
                            .expect("accepted"),
                    )
                })
                .collect();
            // Shut down immediately: most of the batch is still queued.
            server.shutdown();
            for (i, (had_deadline, p)) in pending.into_iter().enumerate() {
                match p.wait_timeout(Duration::from_secs(30)) {
                    Some(Ok(prediction)) => {
                        prop_assert!(!prediction.logits.is_empty(), "request {i}: empty logits");
                    }
                    Some(Err(ServeError::DeadlineExceeded)) => {
                        prop_assert!(had_deadline, "request {i} shed without a deadline");
                    }
                    Some(Err(e)) => {
                        prop_assert!(false, "request {i}: unexpected explicit error {e}");
                    }
                    None => prop_assert!(false, "request {i} was dropped by the drain"),
                }
            }
        }
    }
}
