//! Pluggable batch-formation policies.
//!
//! PR 2 hard-wired the length-bucket batcher into the server's queue; this
//! module factors the "which requests ride the next batch" decision out
//! into the [`BatchPolicy`] trait so alternative schedulers compose with
//! the same worker pool, supervision, shedding, and drain machinery:
//!
//! - [`LengthBucketPolicy`] — the original policy (per-bucket FIFO, full
//!   bucket dispatches first, otherwise global-FIFO head after
//!   `max_wait`), used by [`Server::start`](crate::Server::start).
//! - `fab-fleet`'s tenant-aware weighted-fair scheduler — plugged in via
//!   [`Server::start_with_policy`](crate::Server::start_with_policy).
//!
//! The contract: the server validates and constructs a [`QueuedRequest`],
//! the policy queues it ([`BatchPolicy::admit`]) and later hands back a
//! batch ([`BatchPolicy::next_batch`]). Everything around that decision —
//! admission capacity, deadline shedding, padding, panic isolation,
//! metrics, zero-drop drain — stays in the server, so every policy
//! inherits the PR-6 robustness guarantees unchanged.

use crate::server::{Prediction, ServeError};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Priority class of a request, ordered from most to least
/// latency-sensitive.
///
/// Classes are *weighted*, not strict: a scheduler serving them (e.g.
/// fab-fleet's) drains higher classes proportionally more often, but a
/// lower class with a nonzero weight always keeps a bounded share — a
/// saturating interactive tenant cannot starve background work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground traffic (the default).
    #[default]
    Interactive,
    /// Throughput-oriented bulk traffic.
    Batch,
    /// Best-effort traffic that only needs to not starve.
    Background,
}

impl Priority {
    /// All classes, ordered from most to least latency-sensitive.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Stable dense index (`0..3`) for per-class tables.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }

    /// Canonical lowercase name (`interactive` / `batch` / `background`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }

    /// Parses a canonical name back into a class.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            "background" => Some(Priority::Background),
            _ => None,
        }
    }
}

/// Quality-of-service labels a request carries through the queue.
///
/// The default ([`RequestQos::default`]) is an anonymous interactive
/// request — exactly what [`ServerHandle::submit`](crate::ServerHandle::submit)
/// produces — so QoS-unaware callers and QoS-unaware policies compose
/// without special cases.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestQos {
    /// Tenant the request is billed to (`None` = anonymous, which
    /// tenant-aware schedulers treat as one shared default tenant).
    pub tenant: Option<String>,
    /// Priority class.
    pub priority: Priority,
}

/// One validated, admitted request travelling from the queue to a worker.
///
/// Only the server constructs these on the submit path (after vocabulary,
/// length, and deadline validation); policies merely hold and reorder
/// them. Tests and benchmarks driving a policy directly can mint one with
/// [`QueuedRequest::detached`].
#[derive(Debug)]
pub struct QueuedRequest {
    pub(crate) tokens: Vec<usize>,
    pub(crate) enqueued: Instant,
    /// Absolute shed deadline; the server answers the request
    /// [`ServeError::DeadlineExceeded`] instead of running it once this
    /// instant passes.
    pub(crate) deadline: Option<Instant>,
    pub(crate) qos: RequestQos,
    pub(crate) resp: mpsc::Sender<Result<Prediction, ServeError>>,
}

impl QueuedRequest {
    /// Sequence length in tokens.
    pub fn seq_len(&self) -> usize {
        self.tokens.len()
    }

    /// When the request entered the queue.
    pub fn enqueued_at(&self) -> Instant {
        self.enqueued
    }

    /// The request's QoS labels.
    pub fn qos(&self) -> &RequestQos {
        &self.qos
    }

    /// Whether the request's deadline has passed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Builds a request with no server behind it, for driving a
    /// [`BatchPolicy`] directly in tests and benchmarks. The returned
    /// receiver observes whatever response the driver eventually sends.
    pub fn detached(
        tokens: Vec<usize>,
        deadline: Option<Duration>,
        qos: RequestQos,
    ) -> (Self, mpsc::Receiver<Result<Prediction, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        (Self { tokens, enqueued: now, deadline: deadline.map(|d| now + d), qos, resp: tx }, rx)
    }
}

/// What a policy wants the calling worker to do next.
pub enum BatchDecision {
    /// Run these requests as one batch. `pad_to` fixes the padded length
    /// (e.g. a bucket boundary); `None` lets the server pad to the longest
    /// surviving sequence. Expired requests may be included — the server
    /// sheds them after the policy hands the batch over.
    Dispatch {
        /// The requests riding this batch, oldest first.
        requests: Vec<QueuedRequest>,
        /// Fixed padded length, or `None` to pad to the longest sequence.
        pad_to: Option<usize>,
    },
    /// Work is queued but still coalescing; sleep until this instant (or
    /// the next submission) and ask again.
    WaitUntil(Instant),
    /// The queue is empty.
    Idle,
}

/// A batch-formation policy: owns the queued requests between admission
/// and dispatch, and decides their grouping and order.
///
/// Implementations must uphold two invariants the server's guarantees
/// build on:
///
/// - **No request is dropped.** Every admitted request is eventually
///   returned by `next_batch` — `rush == true` (shutdown drain) must
///   dispatch pending work immediately without further waiting.
/// - **Work conservation under rush.** While the queue is non-empty,
///   `next_batch(.., rush: true)` never returns `WaitUntil`/`Idle`.
pub trait BatchPolicy: Send {
    /// Accepts one validated request into the queue, or returns it to the
    /// server to reject with [`ServeError::Overloaded`] (policy-internal
    /// bounds, e.g. a per-tenant queue cap; the global capacity bound is
    /// enforced by the server before calling this).
    fn admit(&mut self, req: QueuedRequest) -> Result<(), QueuedRequest>;

    /// Decides the next batch of at most `max_batch` requests. `rush` is
    /// set during shutdown: dispatch immediately instead of waiting for
    /// batches to fill.
    fn next_batch(&mut self, max_batch: usize, now: Instant, rush: bool) -> BatchDecision;

    /// Requests currently queued.
    fn depth(&self) -> usize;

    /// Longest sequence this policy accepts (drives the server's
    /// [`ServeError::SequenceTooLong`] validation and scratch sizing).
    fn max_seq_len(&self) -> usize;
}

/// The PR-2 length-bucket policy: per-bucket FIFO queues over ascending
/// length boundaries.
///
/// A worker first dispatches any bucket already holding a full
/// `max_batch` (oldest head first among those); otherwise it picks the
/// bucket whose head request is oldest (global FIFO across buckets) and
/// dispatches it once that head has waited `max_wait` or the server is
/// shutting down. An idle server therefore adds at most `max_wait` of
/// batching delay, a saturated one runs full batches back to back, and a
/// full batch never waits behind a stale request in another bucket.
pub struct LengthBucketPolicy {
    /// Ascending bucket boundaries; a request joins the first bucket whose
    /// boundary covers its length.
    buckets: Vec<usize>,
    /// Per-bucket FIFO queues, aligned with `buckets`.
    queues: Vec<VecDeque<QueuedRequest>>,
    depth: usize,
    max_wait: Duration,
    /// Pad every batch to its bucket boundary instead of the longest
    /// sequence in the batch (uniform shapes for shape-specialised
    /// backends).
    pad_to_bucket_boundary: bool,
}

impl LengthBucketPolicy {
    /// Creates the policy over ascending, deduplicated bucket boundaries.
    ///
    /// # Panics
    ///
    /// Panics when `buckets` is empty.
    pub fn new(buckets: Vec<usize>, max_wait: Duration, pad_to_bucket_boundary: bool) -> Self {
        assert!(!buckets.is_empty(), "at least one bucket boundary");
        let queues = (0..buckets.len()).map(|_| VecDeque::new()).collect();
        Self { buckets, queues, depth: 0, max_wait, pad_to_bucket_boundary }
    }
}

impl BatchPolicy for LengthBucketPolicy {
    fn admit(&mut self, req: QueuedRequest) -> Result<(), QueuedRequest> {
        let bucket = self
            .buckets
            .iter()
            .position(|&b| req.seq_len() <= b)
            .expect("server validated the length against max_seq_len");
        self.queues[bucket].push_back(req);
        self.depth += 1;
        Ok(())
    }

    fn next_batch(&mut self, max_batch: usize, now: Instant, rush: bool) -> BatchDecision {
        if self.depth == 0 {
            return BatchDecision::Idle;
        }
        // Prefer a bucket that can already dispatch a full batch (oldest
        // head first among those) — a full batch must never wait behind a
        // lone stale request in another bucket. With no full bucket, fall
        // back to the bucket whose head has waited longest (global FIFO)
        // and dispatch it once its wait deadline expires.
        let heads = || {
            self.queues.iter().enumerate().filter_map(|(b, q)| q.front().map(|r| (b, r.enqueued)))
        };
        let full_bucket =
            heads().filter(|&(b, _)| self.queues[b].len() >= max_batch).min_by_key(|&(_, e)| e);
        let (bucket, enqueued, is_full) = match full_bucket {
            Some((b, e)) => (b, e, true),
            None => {
                let (b, e) =
                    heads().min_by_key(|&(_, e)| e).expect("depth > 0 implies a non-empty bucket");
                (b, e, false)
            }
        };
        let ready = rush || is_full || now.duration_since(enqueued) >= self.max_wait;
        if !ready {
            return BatchDecision::WaitUntil(enqueued + self.max_wait);
        }
        let take = self.queues[bucket].len().min(max_batch);
        self.depth -= take;
        let requests: Vec<QueuedRequest> = self.queues[bucket].drain(..take).collect();
        let pad_to = self.pad_to_bucket_boundary.then(|| self.buckets[bucket]);
        BatchDecision::Dispatch { requests, pad_to }
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn max_seq_len(&self) -> usize {
        *self.buckets.last().expect("at least one bucket")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(len: usize) -> QueuedRequest {
        QueuedRequest::detached(vec![1; len], None, RequestQos::default()).0
    }

    #[test]
    fn priority_round_trips_through_parse() {
        for p in Priority::ALL {
            assert_eq!(Priority::parse(p.name()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::default(), Priority::Interactive);
    }

    #[test]
    fn full_bucket_dispatches_before_max_wait() {
        let mut p = LengthBucketPolicy::new(vec![8, 16], Duration::from_secs(10), false);
        for _ in 0..4 {
            p.admit(req(5)).unwrap();
        }
        match p.next_batch(4, Instant::now(), false) {
            BatchDecision::Dispatch { requests, pad_to } => {
                assert_eq!(requests.len(), 4);
                assert_eq!(pad_to, None);
            }
            _ => panic!("full bucket must dispatch immediately"),
        }
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn partial_bucket_waits_until_its_head_deadline() {
        let mut p = LengthBucketPolicy::new(vec![8], Duration::from_secs(10), false);
        p.admit(req(3)).unwrap();
        match p.next_batch(4, Instant::now(), false) {
            BatchDecision::WaitUntil(at) => assert!(at > Instant::now()),
            _ => panic!("partial bucket must wait for max_wait"),
        }
        // Rush (shutdown drain) overrides the wait.
        match p.next_batch(4, Instant::now(), true) {
            BatchDecision::Dispatch { requests, .. } => assert_eq!(requests.len(), 1),
            _ => panic!("rush must dispatch pending work"),
        }
    }

    #[test]
    fn bucket_boundary_padding_is_reported() {
        let mut p = LengthBucketPolicy::new(vec![8, 16], Duration::ZERO, true);
        p.admit(req(10)).unwrap();
        match p.next_batch(4, Instant::now(), false) {
            BatchDecision::Dispatch { pad_to, .. } => assert_eq!(pad_to, Some(16)),
            _ => panic!("zero max_wait dispatches immediately"),
        }
    }

    #[test]
    fn empty_policy_is_idle() {
        let mut p = LengthBucketPolicy::new(vec![8], Duration::ZERO, false);
        assert!(matches!(p.next_batch(4, Instant::now(), true), BatchDecision::Idle));
        assert_eq!(p.max_seq_len(), 8);
    }
}
