//! Serving metrics: lock-free counters and log-scaled latency histograms,
//! snapshotted into a [`ServerStats`] report.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Linear sub-buckets per power-of-two range, as `log2`: each octave is
/// split into `2^SUB_BITS` equal-width buckets, bounding the quantile
/// estimation error at `1 / 2^SUB_BITS` (≈ 6.25%) of the value instead of
/// the old pure power-of-two layout's factor-of-two band — which made every
/// percentile collapse onto bucket edges like `131071 µs` under load (the
/// saturation BENCH_PR2.json recorded as `p50 = p95 = 131071`).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Highest resolved most-significant bit: values at or above `2^40` µs
/// (~12.7 days) clamp into the final bucket, far beyond any request
/// lifetime.
const MAX_MSB: u32 = 40;
/// Total bucket count: one linear region for values `< SUBS` plus
/// `(MAX_MSB - SUB_BITS)` log-linear octaves of `SUBS` buckets each.
const HIST_BUCKETS: usize = SUBS + (MAX_MSB - SUB_BITS) as usize * SUBS;

/// Index of the bucket containing `us` in the log-linear layout.
fn bucket_index(us: u64) -> usize {
    if us < SUBS as u64 {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros() as u64;
    let octave = (msb as usize).min(MAX_MSB as usize - 1) - SUB_BITS as usize;
    let sub = if msb >= u64::from(MAX_MSB) {
        SUBS - 1
    } else {
        ((us >> (msb - u64::from(SUB_BITS))) & (SUBS as u64 - 1)) as usize
    };
    SUBS + octave * SUBS + sub
}

/// Inclusive upper bound of bucket `idx` (the value a quantile reports).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let octave = (idx - SUBS) / SUBS;
    let sub = ((idx - SUBS) % SUBS) as u64;
    let msb = octave as u64 + u64::from(SUB_BITS);
    let base = 1u64 << msb;
    let width = 1u64 << (msb - u64::from(SUB_BITS));
    base + (sub + 1) * width - 1
}

/// A concurrent latency histogram with log-linear microsecond buckets
/// (HDR-histogram style: power-of-two octaves, each split into [`SUBS`]
/// linear sub-buckets).
///
/// Recording is a single relaxed atomic increment; a reported quantile is
/// the upper bound of the bucket containing the target rank, clamped to the
/// observed maximum — accurate to within ≈ 6.25% of the value.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one latency sample in microseconds.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) in microseconds: the upper
    /// boundary of the bucket containing the target rank, clamped to the
    /// observed maximum. Returns 0 when nothing was recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_upper(i).min(self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Snapshots count, mean, p50/p95/p99 and max.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
            },
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time summary of one latency histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median (bucket-resolution estimate, clamped to the observed max).
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Largest recorded sample.
    pub max_us: u64,
}

/// The shared metric registry updated by the queue and the workers.
#[derive(Debug)]
pub(crate) struct Metrics {
    pub(crate) started: Instant,
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) shed_expired: AtomicU64,
    pub(crate) batch_panics: AtomicU64,
    pub(crate) worker_restarts: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_examples: AtomicU64,
    pub(crate) max_batch_observed: AtomicU64,
    pub(crate) peak_queue_depth: AtomicU64,
    /// End-to-end latency: submit → response sent.
    pub(crate) latency: LatencyHistogram,
    /// Time spent waiting in the queue before batch formation.
    pub(crate) queue_wait: LatencyHistogram,
    /// Model time per dispatched batch.
    pub(crate) service: LatencyHistogram,
    /// Sliding completion-rate window behind `retry_after_ms`.
    drain_window: Mutex<DrainWindow>,
}

/// Recent completion-rate estimate: refreshed whenever `retry_after_ms`
/// finds the window at least [`DRAIN_WINDOW`] old, so the hint tracks what
/// this server is draining *now* rather than a lifetime average that an
/// old burst (or a long idle stretch) would skew for minutes.
#[derive(Debug)]
struct DrainWindow {
    /// When the window was last rolled.
    at: Instant,
    /// `completed` counter at the last roll.
    completed: u64,
    /// Completions per second over the last non-empty window; halved on
    /// each stalled window so the hint of a wedged pool grows toward the
    /// 5 s clamp instead of quoting a stale rate forever.
    rate_rps: f64,
}

/// Minimum age before the drain-rate window rolls over.
const DRAIN_WINDOW: Duration = Duration::from_millis(250);

impl Metrics {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            batch_panics: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_examples: AtomicU64::new(0),
            max_batch_observed: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            service: LatencyHistogram::new(),
            drain_window: Mutex::new(DrainWindow {
                at: Instant::now(),
                completed: 0,
                rate_rps: 0.0,
            }),
        }
    }

    /// Suggests how long an [`Overloaded`](crate::ServeError::Overloaded)
    /// producer should wait before retrying: the time this server needs to
    /// drain its current queue at its *recent* completion rate (a sliding
    /// window of at least [`DRAIN_WINDOW`], decayed while completions
    /// stall), clamped to `[10 ms, 5 s]`. The rate is observed per server
    /// — one per model profile — so a saturated pool's hint never reflects
    /// another pool's drain speed. Before any request completes the hint
    /// is a flat 100 ms.
    pub(crate) fn retry_after_ms(&self, depth: usize) -> u64 {
        let completed = self.completed.load(Ordering::Relaxed);
        let mut w = self.drain_window.lock().unwrap_or_else(PoisonError::into_inner);
        let elapsed = w.at.elapsed();
        if elapsed >= DRAIN_WINDOW {
            let delta = completed.saturating_sub(w.completed);
            if delta > 0 {
                w.rate_rps = delta as f64 / elapsed.as_secs_f64();
            } else {
                w.rate_rps /= 2.0;
            }
            w.at = Instant::now();
            w.completed = completed;
        }
        if w.rate_rps <= f64::MIN_POSITIVE {
            // No windowed rate yet: fall back to the lifetime average, or
            // a flat 100 ms before the first completion.
            let elapsed_s = self.started.elapsed().as_secs_f64();
            if completed == 0 || elapsed_s <= 0.0 {
                return 100;
            }
            w.rate_rps = completed as f64 / elapsed_s;
        }
        ((depth as f64 / w.rate_rps) * 1000.0).round().clamp(10.0, 5000.0) as u64
    }

    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        workers: usize,
        session_kind: &'static str,
    ) -> ServerStats {
        let elapsed_s = self.started.elapsed().as_secs_f64();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_examples.load(Ordering::Relaxed);
        ServerStats {
            session_kind,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            batch_panics: self.batch_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            queue_depth,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            batches,
            mean_batch_occupancy: if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            max_batch_observed: self.max_batch_observed.load(Ordering::Relaxed),
            throughput_rps: if elapsed_s > 0.0 { completed as f64 / elapsed_s } else { 0.0 },
            elapsed_s,
            workers,
            latency: self.latency.summary(),
            queue_wait: self.queue_wait.summary(),
            service: self.service.summary(),
        }
    }
}

/// A point-in-time snapshot of the server's aggregate metrics.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Which forward path the session runs (`exact` / `fastmath` / `int8`,
    /// see [`crate::SessionKind`]).
    pub session_kind: &'static str,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed (responses sent).
    pub completed: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected: u64,
    /// Requests answered with an explicit error because their forward pass
    /// panicked even when retried in isolation.
    pub failed: u64,
    /// Requests shed because their deadline expired before a forward pass
    /// was spent on them (answered with
    /// [`DeadlineExceeded`](crate::ServeError::DeadlineExceeded)).
    pub shed_expired: u64,
    /// Batched forward passes that panicked; the batch's requests were
    /// retried in per-request isolation.
    pub batch_panics: u64,
    /// Worker threads the supervisor respawned after they died.
    pub worker_restarts: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub peak_queue_depth: u64,
    /// Batches dispatched to inference sessions.
    pub batches: u64,
    /// Mean examples per dispatched batch.
    pub mean_batch_occupancy: f64,
    /// Largest batch dispatched.
    pub max_batch_observed: u64,
    /// Completed requests per second since the server started.
    pub throughput_rps: f64,
    /// Seconds since the server started.
    pub elapsed_s: f64,
    /// Number of worker threads.
    pub workers: usize,
    /// End-to-end request latency (submit → response).
    pub latency: HistogramSummary,
    /// Queue-wait component of the latency.
    pub queue_wait: HistogramSummary,
    /// Per-batch model service time.
    pub service: HistogramSummary,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests : {} completed, {} rejected, {} failed, {} queued (peak {})",
            self.completed, self.rejected, self.failed, self.queue_depth, self.peak_queue_depth
        )?;
        writeln!(
            f,
            "faults   : {} shed (deadline), {} batch panics, {} worker restarts",
            self.shed_expired, self.batch_panics, self.worker_restarts
        )?;
        writeln!(
            f,
            "batches  : {} dispatched, {:.2} mean occupancy (max {}), {} workers ({} path)",
            self.batches,
            self.mean_batch_occupancy,
            self.max_batch_observed,
            self.workers,
            self.session_kind
        )?;
        writeln!(f, "rate     : {:.1} req/s over {:.2}s", self.throughput_rps, self.elapsed_s)?;
        writeln!(
            f,
            "latency  : p50 {}us  p95 {}us  p99 {}us  max {}us",
            self.latency.p50_us, self.latency.p95_us, self.latency.p99_us, self.latency.max_us
        )?;
        write!(
            f,
            "queueing : p50 {}us  p99 {}us   service/batch: p50 {}us  p99 {}us",
            self.queue_wait.p50_us,
            self.queue_wait.p99_us,
            self.service.p50_us,
            self.service.p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.max_us, 0);
    }

    #[test]
    fn quantiles_are_monotonic_and_bounded_by_max() {
        let h = LatencyHistogram::new();
        for us in [3u64, 9, 17, 120, 900, 5_000, 70_000] {
            h.record(us);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
        assert_eq!(s.max_us, 70_000);
    }

    #[test]
    fn single_sample_percentiles_equal_the_sample() {
        let h = LatencyHistogram::new();
        h.record(1000);
        let s = h.summary();
        assert_eq!(s.p50_us, 1000.min(s.max_us));
        assert_eq!(s.p99_us, s.p50_us);
    }

    #[test]
    fn bucket_estimate_is_within_a_factor_of_two() {
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(1500);
        }
        let p50 = h.quantile_us(0.5);
        assert!((1024..=2047).contains(&p50) || p50 == 1500, "p50 {p50}");
    }

    /// The regression BENCH_PR2.json exposed: every percentile of a loaded
    /// run collapsed onto the power-of-two bucket edge 131071 µs. A sample
    /// larger than 0.2 s must round-trip through the histogram with
    /// log-linear (≤ 1/16) resolution, not a factor-of-two band.
    #[test]
    fn large_sample_round_trips_through_the_histogram() {
        // Single >0.2 s sample: clamping to the observed max makes it exact.
        let h = LatencyHistogram::new();
        h.record(250_000);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, 250_000);
        assert_eq!(s.p99_us, 250_000);
        assert_eq!(s.max_us, 250_000);

        // Mixed large samples: the median lands within 1/16 of the true
        // median instead of snapping to 131071.
        let h = LatencyHistogram::new();
        for us in [210_000u64, 215_000, 221_000, 230_000, 252_000, 301_000, 407_000] {
            h.record(us);
        }
        let p50 = h.quantile_us(0.5);
        assert_ne!(p50, 131_071, "p50 must not saturate at the old bucket edge");
        assert!(
            (230_000..=230_000 + 230_000 / 16 + 1).contains(&p50),
            "p50 {p50} outside the 1/16-resolution band around 230000"
        );
        let p99 = h.quantile_us(0.99);
        assert!(
            (407_000..=407_000 + 407_000 / 16 + 1).contains(&p99.max(407_000)) && p99 <= 407_000,
            "p99 {p99} must clamp to the observed max"
        );
    }

    /// The retry hint tracks the *recent* completion rate, not the
    /// lifetime average: after a fast burst, a long stall must grow the
    /// hint (windowed decay) instead of quoting the stale burst rate.
    #[test]
    fn retry_hint_follows_the_recent_drain_rate() {
        let m = Metrics::new();
        // Before any completion: the flat fallback.
        assert_eq!(m.retry_after_ms(50), 100);
        // 200 completions land, then the first window rolls: the hint for
        // a 100-deep queue reflects the recent (fast) rate — far below the
        // 5 s clamp.
        m.completed.store(200, Ordering::Relaxed);
        std::thread::sleep(DRAIN_WINDOW);
        let busy = m.retry_after_ms(100);
        assert!((10..=1000).contains(&busy), "hint {busy}ms does not reflect a fast drain");
        // The server then stalls completely: each stalled window halves
        // the remembered rate, so the hint grows.
        std::thread::sleep(DRAIN_WINDOW);
        let s1 = m.retry_after_ms(100);
        std::thread::sleep(DRAIN_WINDOW);
        let s2 = m.retry_after_ms(100);
        assert!(s1 >= busy && s2 >= s1 * 2 - 1, "stall must grow the hint: {busy} {s1} {s2}");
        assert!(s2 <= 5000, "hint must stay clamped");
    }

    /// Bucket upper bounds are strictly monotonic and every value maps into
    /// a bucket whose bounds contain it.
    #[test]
    fn bucket_layout_is_monotonic_and_covering() {
        let mut prev = None;
        for idx in 0..HIST_BUCKETS {
            let upper = bucket_upper(idx);
            if let Some(p) = prev {
                assert!(upper > p, "bucket {idx} upper {upper} <= previous {p}");
            }
            prev = Some(upper);
        }
        for us in [0u64, 1, 15, 16, 17, 31, 32, 1000, 131_071, 131_072, 200_000, 1 << 39, u64::MAX]
        {
            let idx = bucket_index(us);
            assert!(idx < HIST_BUCKETS, "{us} -> {idx}");
            if us < (1 << MAX_MSB) {
                assert!(bucket_upper(idx) >= us, "{us} above its bucket upper");
                if idx > 0 {
                    assert!(bucket_upper(idx - 1) < us, "{us} below its bucket");
                }
            }
        }
    }
}
