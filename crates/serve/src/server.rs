//! The dynamic-batching server: a bounded MPSC request queue drained into
//! sequence-length-bucketed batches by a supervised pool of std-thread
//! workers.
//!
//! ```text
//!  clients ──submit──▶ bounded queue (admission control, per-bucket FIFO,
//!                          │          per-request deadlines)
//!                          │  drain ≤ max_batch, wait ≤ max_wait_us,
//!                          │  shed expired requests before the forward pass
//!                          ▼
//!                length-bucketed micro-batch (padded to the longest
//!                sequence in the batch; bucket boundary = upper bound)
//!                          │
//!                          ▼
//!        worker pool ──▶ InferenceSession::logits_batch ──▶ responses
//!             ▲
//!        supervisor (respawns dead workers with exponential backoff)
//! ```
//!
//! Batch formation is delegated to a pluggable [`BatchPolicy`]
//! (see [`crate::policy`]): [`Server::start`] installs the PR-2
//! [`LengthBucketPolicy`] (full bucket dispatches first, otherwise the
//! globally-oldest head after `max_wait_us`), while
//! [`Server::start_with_policy`] accepts any other scheduler — e.g.
//! fab-fleet's tenant-aware weighted-fair policy — on top of the same
//! worker pool, supervision, shedding, and drain machinery.
//!
//! # Robustness guarantees
//!
//! - **No silent drops.** Every request accepted by [`ServerHandle::submit`]
//!   is answered: with a [`Prediction`], or with an explicit [`ServeError`]
//!   (deadline expired, forward pass panicked, server stopped). Graceful
//!   shutdown drains the queue — if every worker has died, [`Server::shutdown`]
//!   drains it inline on the calling thread.
//! - **Deadlines shed before compute.** A request whose deadline expires
//!   while queued is answered [`ServeError::DeadlineExceeded`] at batch
//!   formation, before any forward pass is spent on it.
//! - **Panic isolation.** A panicking batched forward fails no one else:
//!   the batch's requests are retried one by one, so only requests that
//!   panic in isolation get [`ServeError::ModelPanicked`].
//! - **Poison recovery.** Queue locks recover from mutex poisoning instead
//!   of cascading one producer's panic into every worker and caller.
//! - **Supervision.** A supervisor thread respawns dead worker threads with
//!   fresh scratch and exponential backoff (a hot-failing model cannot make
//!   the pool spin), counted in [`ServerStats::worker_restarts`].

use crate::metrics::{Metrics, ServerStats};
use crate::policy::{BatchDecision, BatchPolicy, LengthBucketPolicy, QueuedRequest, RequestQos};
use crate::session::{InferenceSession, SessionScratch};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning: a panic in one lock holder
/// must not cascade-kill every other worker and caller. The queue state is
/// a set of independently-valid queues plus counters, so observing a
/// poisoned-but-consistent snapshot is always safe.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How long a worker must stay alive for the supervisor to consider it
/// healthy and reset its restart backoff.
const HEALTHY_AFTER: Duration = Duration::from_secs(5);
/// Supervisor poll interval for dead-worker detection.
const SUPERVISE_EVERY: Duration = Duration::from_millis(2);

/// Knobs of the dynamic micro-batcher.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest number of requests fused into one batch.
    pub max_batch: usize,
    /// Longest time the oldest queued request may wait for its batch to
    /// fill before being dispatched anyway, in microseconds.
    pub max_wait_us: u64,
    /// Admission-control bound: requests beyond this many queued are
    /// rejected with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Number of worker threads (0 = one per available core, capped at 4).
    pub num_workers: usize,
    /// Ascending sequence-length bucket boundaries; a request joins the
    /// first bucket whose boundary covers its length. Empty = derive
    /// doubling boundaries from the session's `max_seq` (16, 32, …,
    /// max_seq).
    pub buckets: Vec<usize>,
    /// When `true`, every batch is padded all the way to its bucket
    /// boundary (uniform shapes, e.g. for shape-specialised backends). The
    /// default `false` pads only to the longest sequence in the batch —
    /// the boundary stays the upper bound, but stragglers cost less.
    pub pad_to_bucket_boundary: bool,
    /// Initial supervisor backoff before respawning a dead worker, in
    /// milliseconds. Doubles on every consecutive death (capped at
    /// [`ServeConfig::restart_backoff_max_ms`]) and resets once a worker
    /// stays alive for a few seconds.
    pub restart_backoff_ms: u64,
    /// Upper bound of the exponential restart backoff, in milliseconds.
    pub restart_backoff_max_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait_us: 500,
            queue_capacity: 1024,
            num_workers: 0,
            buckets: Vec::new(),
            pad_to_bucket_boundary: false,
            restart_backoff_ms: 10,
            restart_backoff_max_ms: 1000,
        }
    }
}

impl ServeConfig {
    /// Validates the policy-independent knobs and fills in the worker
    /// count.
    fn resolved_core(mut self) -> Self {
        assert!(self.max_batch >= 1, "max_batch must be at least 1");
        assert!(self.queue_capacity >= 1, "queue_capacity must be at least 1");
        assert!(self.restart_backoff_ms >= 1, "restart_backoff_ms must be at least 1");
        if self.num_workers == 0 {
            self.num_workers =
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
        }
        self
    }

    /// Resolves defaults against a session: fills in worker count and
    /// derives bucket boundaries when unset.
    fn resolved(mut self, max_seq: usize) -> Self {
        self = self.resolved_core();
        if self.buckets.is_empty() {
            let mut b = 16usize;
            while b < max_seq {
                self.buckets.push(b);
                b *= 2;
            }
            self.buckets.push(max_seq);
        }
        self.buckets.sort_unstable();
        self.buckets.dedup();
        assert!(
            *self.buckets.last().expect("at least one bucket") <= max_seq,
            "bucket boundary beyond the session's max_seq {max_seq}"
        );
        self
    }
}

/// Why the server could not take or finish a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the queue is full.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// Suggested wait before retrying, in milliseconds: the time
        /// *this* server (one per model profile) needs to drain its
        /// current queue at its recently-observed completion rate — a
        /// sliding window, not a lifetime average, so a pool that just
        /// slowed down or sped up hints accordingly and a saturated int8
        /// pool never inflates the hint of an idle f32 pool (clamped to
        /// `[10 ms, 5 s]`). Surfaces as the HTTP `Retry-After` hint and
        /// drives `fabctl`'s backoff.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before a forward pass was spent on
    /// it; it was shed at submission or batch-formation time.
    DeadlineExceeded,
    /// The sequence is longer than the largest configured bucket.
    SequenceTooLong {
        /// Length of the rejected sequence.
        len: usize,
        /// Largest acceptable length.
        max: usize,
    },
    /// The sequence is empty.
    EmptySequence,
    /// A token id is outside the model's vocabulary.
    InvalidToken {
        /// The offending token id.
        id: usize,
        /// Vocabulary size of the served model.
        vocab: usize,
    },
    /// The model forward pass panicked on this request even when it was
    /// retried in isolation (outside any batch).
    ModelPanicked,
    /// The server was shut down (or a worker failed) before this request
    /// could be served.
    ServerStopped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, retry_after_ms } => {
                write!(f, "queue full ({depth} requests pending); retry in {retry_after_ms}ms")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "deadline expired before the request was served")
            }
            ServeError::SequenceTooLong { len, max } => {
                write!(f, "sequence length {len} exceeds the largest bucket {max}")
            }
            ServeError::EmptySequence => write!(f, "cannot serve an empty sequence"),
            ServeError::InvalidToken { id, vocab } => {
                write!(f, "token id {id} outside the model vocabulary of {vocab}")
            }
            ServeError::ModelPanicked => {
                write!(f, "model forward pass panicked while serving the request")
            }
            ServeError::ServerStopped => {
                write!(f, "server shut down or failed before serving the request")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed prediction with its per-request serving metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Class logits.
    pub logits: Vec<f32>,
    /// Argmax class.
    pub class: usize,
    /// Time spent queued before batch formation, in microseconds.
    pub queue_wait_us: u64,
    /// Model time of the batch this request rode in, in microseconds.
    pub service_us: u64,
    /// Number of requests in that batch.
    pub batch_size: usize,
    /// Bucket boundary the batch was padded to.
    pub padded_len: usize,
}

/// Mutex-guarded queue state (the MPSC channel core): the batch policy
/// owning the queued requests, plus the shutdown latch.
struct PolicyState {
    policy: Box<dyn BatchPolicy>,
    /// Set once by [`Server::shutdown`]; workers drain and exit.
    shutdown: bool,
}

/// Supervisor bookkeeping for one worker thread slot.
struct WorkerSlot {
    handle: Option<std::thread::JoinHandle<()>>,
    /// Times this slot's worker died and was respawned.
    restarts: u64,
    /// Backoff before the next respawn of this slot.
    backoff: Duration,
    /// Dead slot: earliest instant the supervisor may respawn it.
    respawn_at: Option<Instant>,
    /// When the current worker was spawned (backoff resets after a healthy
    /// lifetime).
    spawned_at: Instant,
}

struct Shared {
    state: Mutex<PolicyState>,
    work: Condvar,
    config: ServeConfig,
    /// Longest sequence the installed policy accepts (bounds validation
    /// and scratch sizing).
    max_seq: usize,
    session: Arc<InferenceSession>,
    metrics: Metrics,
    /// Worker-thread registry, owned jointly by the supervisor (respawn)
    /// and shutdown (join).
    workers: Mutex<Vec<WorkerSlot>>,
    /// Fault injection: each pending unit makes one worker thread exit at
    /// its next loop iteration, simulating a dead worker.
    kill_workers: AtomicUsize,
}

/// The dynamic-batching inference server.
///
/// Start one with [`Server::start`], hand [`ServerHandle`]s (cheap clones)
/// to client threads, and read aggregate [`ServerStats`] at any time.
/// Dropping the server shuts it down gracefully: queued requests are
/// drained, then the workers exit.
pub struct Server {
    shared: Arc<Shared>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool (plus its supervisor thread) and returns the
    /// running server.
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid (zero `max_batch`/`queue_capacity`,
    /// or a bucket boundary beyond the session's `max_seq`).
    pub fn start(session: InferenceSession, config: ServeConfig) -> Self {
        let config = config.resolved(session.max_seq());
        let policy = LengthBucketPolicy::new(
            config.buckets.clone(),
            Duration::from_micros(config.max_wait_us),
            config.pad_to_bucket_boundary,
        );
        Self::launch(session, config, Box::new(policy))
    }

    /// Like [`Server::start`], but with a caller-supplied [`BatchPolicy`]
    /// instead of the default length-bucket batcher. `config.buckets` and
    /// `config.pad_to_bucket_boundary` are ignored (batch formation
    /// belongs to the policy); the pool, capacity, and supervision knobs
    /// still apply.
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid (zero `max_batch` /
    /// `queue_capacity` / `restart_backoff_ms`).
    pub fn start_with_policy(
        session: InferenceSession,
        config: ServeConfig,
        policy: Box<dyn BatchPolicy>,
    ) -> Self {
        Self::launch(session, config.resolved_core(), policy)
    }

    fn launch(
        session: InferenceSession,
        config: ServeConfig,
        policy: Box<dyn BatchPolicy>,
    ) -> Self {
        let max_seq = policy.max_seq_len().min(session.max_seq());
        let shared = Arc::new(Shared {
            state: Mutex::new(PolicyState { policy, shutdown: false }),
            work: Condvar::new(),
            config: config.clone(),
            max_seq,
            session: Arc::new(session),
            metrics: Metrics::new(),
            workers: Mutex::new(Vec::new()),
            kill_workers: AtomicUsize::new(0),
        });
        {
            let mut slots = lock_recover(&shared.workers);
            for i in 0..config.num_workers {
                slots.push(WorkerSlot {
                    handle: Some(spawn_worker(&shared, i)),
                    restarts: 0,
                    backoff: Duration::from_millis(config.restart_backoff_ms),
                    respawn_at: None,
                    spawned_at: Instant::now(),
                });
            }
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fab-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared))
                .expect("spawn serve supervisor")
        };
        Self { shared, supervisor: Some(supervisor) }
    }

    /// Returns a cloneable handle clients use to submit requests.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The resolved configuration (defaults filled in).
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Snapshots the aggregate serving metrics.
    pub fn stats(&self) -> ServerStats {
        self.handle().stats()
    }

    /// Fault injection for tests and benchmarks: makes one worker thread
    /// exit (as if it had died) at its next loop iteration. The supervisor
    /// detects the death and respawns the slot with fresh scratch after its
    /// backoff, incrementing [`ServerStats::worker_restarts`].
    pub fn inject_worker_exit(&self) {
        self.handle().inject_worker_exit()
    }

    /// Drains the queue, stops the workers and waits for them to exit.
    /// Requests submitted after this call are rejected with
    /// [`ServeError::ServerStopped`]; requests admitted before it are all
    /// answered (with a prediction or an explicit error) — if every worker
    /// died, the remaining queue is drained inline on this thread.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn begin_shutdown(&self) {
        lock_recover(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
    }

    /// Idempotent shutdown core shared by [`Server::shutdown`] and `Drop`.
    fn finish(&mut self) {
        self.begin_shutdown();
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        let handles: Vec<_> = {
            let mut slots = lock_recover(&self.shared.workers);
            slots.iter_mut().filter_map(|s| s.handle.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // Every live worker drains the queue before exiting; this inline
        // drain only runs work when all workers died (e.g. fault injection
        // mid-shutdown) so admitted requests are still never dropped.
        let mut scratch =
            SessionScratch::with_capacity(self.shared.config.max_batch, self.shared.max_seq);
        while let Some(batch) = next_batch(&self.shared) {
            run_batch(&self.shared, batch, &mut scratch);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// A cheap, cloneable, `Send` handle for submitting inference requests.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Enqueues a request without blocking for its completion.
    ///
    /// Admission control applies immediately: a full queue rejects with
    /// [`ServeError::Overloaded`] rather than blocking the producer —
    /// backpressure surfaces at the edge instead of growing the queue
    /// without bound.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptySequence`], [`ServeError::SequenceTooLong`],
    /// [`ServeError::Overloaded`], or [`ServeError::ServerStopped`].
    pub fn submit(&self, tokens: Vec<usize>) -> Result<PendingPrediction, ServeError> {
        self.submit_with_deadline(tokens, None)
    }

    /// Enqueues a request that must start being served within `deadline`.
    ///
    /// The deadline travels with the request through the queue: once it
    /// expires, the request is shed at batch-formation time — before any
    /// forward pass is spent on it — and answered
    /// [`ServeError::DeadlineExceeded`] (counted in
    /// [`ServerStats::shed_expired`]). A zero deadline is shed immediately.
    ///
    /// # Errors
    ///
    /// Same as [`ServerHandle::submit`], plus an immediate
    /// [`ServeError::DeadlineExceeded`] for a zero `deadline`.
    pub fn submit_with_deadline(
        &self,
        tokens: Vec<usize>,
        deadline: Option<Duration>,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_with_qos(tokens, deadline, RequestQos::default())
    }

    /// Enqueues a request carrying explicit QoS labels (tenant and
    /// priority class), which QoS-aware batch policies (fab-fleet's
    /// weighted-fair scheduler) use for ordering; the default
    /// [`LengthBucketPolicy`] ignores them.
    ///
    /// # Errors
    ///
    /// Same as [`ServerHandle::submit_with_deadline`].
    pub fn submit_with_qos(
        &self,
        tokens: Vec<usize>,
        deadline: Option<Duration>,
        qos: RequestQos,
    ) -> Result<PendingPrediction, ServeError> {
        if tokens.is_empty() {
            return Err(ServeError::EmptySequence);
        }
        let max = self.shared.max_seq;
        if tokens.len() > max {
            return Err(ServeError::SequenceTooLong { len: tokens.len(), max });
        }
        let vocab = self.shared.session.vocab_size();
        if let Some(&id) = tokens.iter().find(|&&id| id >= vocab) {
            return Err(ServeError::InvalidToken { id, vocab });
        }
        if deadline.is_some_and(|d| d.is_zero()) {
            self.shared.metrics.shed_expired.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExceeded);
        }
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        {
            let mut st = lock_recover(&self.shared.state);
            if st.shutdown {
                return Err(ServeError::ServerStopped);
            }
            let depth = st.policy.depth();
            if depth >= self.shared.config.queue_capacity {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth,
                    retry_after_ms: self.shared.metrics.retry_after_ms(depth),
                });
            }
            let req = QueuedRequest {
                tokens,
                enqueued: now,
                deadline: deadline.map(|d| now + d),
                qos,
                resp: tx,
            };
            if st.policy.admit(req).is_err() {
                // Policy-internal bound (e.g. a per-tenant queue cap).
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth,
                    retry_after_ms: self.shared.metrics.retry_after_ms(depth),
                });
            }
            self.shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
            self.shared
                .metrics
                .peak_queue_depth
                .fetch_max(st.policy.depth() as u64, Ordering::Relaxed);
        }
        self.shared.work.notify_all();
        Ok(PendingPrediction { rx })
    }

    /// Submits a request and blocks until its prediction arrives.
    ///
    /// # Errors
    ///
    /// Same as [`ServerHandle::submit`], plus [`ServeError::ServerStopped`]
    /// when the server shuts down before responding.
    pub fn infer(&self, tokens: Vec<usize>) -> Result<Prediction, ServeError> {
        self.submit(tokens)?.wait()
    }

    /// Snapshots the aggregate serving metrics.
    pub fn stats(&self) -> ServerStats {
        let depth = lock_recover(&self.shared.state).policy.depth();
        self.shared.metrics.snapshot(
            depth,
            self.shared.config.num_workers,
            self.shared.session.kind().name(),
        )
    }

    /// Fault injection for tests and benchmarks: see
    /// [`Server::inject_worker_exit`].
    pub fn inject_worker_exit(&self) {
        self.shared.kill_workers.fetch_add(1, Ordering::Relaxed);
        // Wake sleeping workers so one observes the kill promptly.
        self.shared.work.notify_all();
    }
}

/// A submitted request whose prediction has not arrived yet.
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PendingPrediction {
    /// Blocks until the prediction (or its explicit error) arrives.
    ///
    /// # Errors
    ///
    /// The request's explicit failure ([`ServeError::DeadlineExceeded`],
    /// [`ServeError::ModelPanicked`], [`ServeError::ServerStopped`]), or
    /// [`ServeError::ServerStopped`] when the server dropped the request's
    /// response channel without answering.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::ServerStopped),
        }
    }

    /// Like [`PendingPrediction::wait`], but gives up after `timeout`
    /// (returning `None`; the request stays in flight server-side).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Prediction, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ServerStopped)),
        }
    }
}

/// A batch drained from the queue, ready for one session call.
struct DrainedBatch {
    requests: Vec<QueuedRequest>,
    padded_len: usize,
}

/// The worker loop: form a batch (blocking on the condvar while the queue
/// is empty or the head batch is still filling), run the session, respond.
fn worker_loop(shared: &Shared) {
    let mut scratch = SessionScratch::with_capacity(shared.config.max_batch, shared.max_seq);
    loop {
        if take_injected_kill(shared) {
            return; // fault injection: this worker "dies" without cleanup
        }
        match next_batch(shared) {
            Some(batch) => run_batch(shared, batch, &mut scratch),
            None => return,
        }
    }
}

/// Consumes one pending injected worker kill, if any.
fn take_injected_kill(shared: &Shared) -> bool {
    shared
        .kill_workers
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// Blocks until a batch is ready (returning it) or shutdown completes with
/// an empty queue (returning `None`). Requests whose deadline expired while
/// queued are shed here — answered [`ServeError::DeadlineExceeded`] without
/// a forward pass.
fn next_batch(shared: &Shared) -> Option<DrainedBatch> {
    let max_batch = shared.config.max_batch;
    let mut st = lock_recover(&shared.state);
    loop {
        // Honour a kill that arrived while this worker slept on the condvar
        // (fault injection cannot be outwaited by an idle pool) — but never
        // during shutdown, when this loop is also the inline drain of last
        // resort and must answer every remaining request.
        if !st.shutdown && take_injected_kill(shared) {
            return None;
        }
        let rush = st.shutdown;
        match st.policy.next_batch(max_batch, Instant::now(), rush) {
            BatchDecision::Dispatch { requests, pad_to } => {
                // Shed requests whose deadline expired while queued —
                // answered without spending a forward pass on them.
                let now = Instant::now();
                let mut live = Vec::with_capacity(requests.len());
                for req in requests {
                    if req.expired(now) {
                        shed_expired(shared, req);
                    } else {
                        live.push(req);
                    }
                }
                if live.is_empty() {
                    continue; // the whole batch expired; look for more work
                }
                let padded_len = pad_to.unwrap_or_else(|| {
                    live.iter().map(|r| r.tokens.len()).max().expect("non-empty batch")
                });
                return Some(DrainedBatch { requests: live, padded_len });
            }
            BatchDecision::Idle => {
                if st.shutdown {
                    return None;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            BatchDecision::WaitUntil(at) => {
                let timeout = at.saturating_duration_since(Instant::now());
                let (guard, _) =
                    shared.work.wait_timeout(st, timeout).unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
    }
}

/// Answers one expired request with [`ServeError::DeadlineExceeded`].
fn shed_expired(shared: &Shared, req: QueuedRequest) {
    shared.metrics.shed_expired.fetch_add(1, Ordering::Relaxed);
    let _ = req.resp.send(Err(ServeError::DeadlineExceeded));
}

/// Runs one drained batch through the session and fulfils its requests.
///
/// A panicking batched forward pass fails no other request in the batch:
/// the panic is counted in [`ServerStats::batch_panics`] and every request
/// is retried in isolation — requests that panic even alone are answered
/// [`ServeError::ModelPanicked`] (counted in [`ServerStats::failed`]), the
/// rest get their predictions, and the worker stays alive for the next
/// batch either way.
fn run_batch(shared: &Shared, batch: DrainedBatch, scratch: &mut SessionScratch) {
    let t0 = Instant::now();
    let refs: Vec<&[usize]> = batch.requests.iter().map(|r| r.tokens.as_slice()).collect();
    let forward = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.session.logits_batch(&refs, batch.padded_len, scratch)
    }));
    drop(refs);
    let logits = match forward {
        Ok(logits) => logits,
        Err(_) => {
            shared.metrics.batch_panics.fetch_add(1, Ordering::Relaxed);
            run_batch_isolated(shared, batch);
            return;
        }
    };
    let service_us = t0.elapsed().as_micros() as u64;
    let n = batch.requests.len();
    let m = &shared.metrics;
    m.batches.fetch_add(1, Ordering::Relaxed);
    m.batched_examples.fetch_add(n as u64, Ordering::Relaxed);
    m.max_batch_observed.fetch_max(n as u64, Ordering::Relaxed);
    m.service.record(service_us);
    for (req, lg) in batch.requests.into_iter().zip(logits) {
        let queue_wait_us = t0.duration_since(req.enqueued).as_micros() as u64;
        m.queue_wait.record(queue_wait_us);
        m.latency.record(req.enqueued.elapsed().as_micros() as u64);
        m.completed.fetch_add(1, Ordering::Relaxed);
        let class = fab_nn::argmax(&lg);
        // The client may have dropped its receiver; that is not an error.
        let _ = req.resp.send(Ok(Prediction {
            logits: lg,
            class,
            queue_wait_us,
            service_us,
            batch_size: n,
            padded_len: batch.padded_len,
        }));
    }
}

/// Fallback after a batched forward pass panicked: serve each request of
/// the batch alone, so one poisonous input cannot take down its batchmates.
fn run_batch_isolated(shared: &Shared, batch: DrainedBatch) {
    let m = &shared.metrics;
    for req in batch.requests {
        let t0 = Instant::now();
        let forward = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.session.logits(&req.tokens)
        }));
        match forward {
            Ok(lg) => {
                let service_us = t0.elapsed().as_micros() as u64;
                let queue_wait_us = t0.duration_since(req.enqueued).as_micros() as u64;
                m.queue_wait.record(queue_wait_us);
                m.latency.record(req.enqueued.elapsed().as_micros() as u64);
                m.service.record(service_us);
                m.batches.fetch_add(1, Ordering::Relaxed);
                m.batched_examples.fetch_add(1, Ordering::Relaxed);
                m.completed.fetch_add(1, Ordering::Relaxed);
                let class = fab_nn::argmax(&lg);
                let _ = req.resp.send(Ok(Prediction {
                    logits: lg,
                    class,
                    queue_wait_us,
                    service_us,
                    batch_size: 1,
                    padded_len: req.tokens.len(),
                }));
            }
            Err(_) => {
                m.failed.fetch_add(1, Ordering::Relaxed);
                let _ = req.resp.send(Err(ServeError::ModelPanicked));
            }
        }
    }
}

/// Spawns the worker thread for registry slot `i`.
fn spawn_worker(shared: &Arc<Shared>, i: usize) -> std::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("fab-serve-{i}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawn serve worker")
}

/// The supervisor loop: detect dead worker threads (panicked beyond batch
/// isolation, or killed by fault injection), join them, and respawn the
/// slot after an exponential backoff so a hot-failing model cannot spin
/// the pool. Exits on shutdown — [`Server::finish`] then joins the
/// remaining workers and drains the queue inline if none survived.
fn supervisor_loop(shared: &Arc<Shared>) {
    loop {
        if lock_recover(&shared.state).shutdown {
            return;
        }
        std::thread::sleep(SUPERVISE_EVERY);
        let now = Instant::now();
        let mut slots = lock_recover(&shared.workers);
        for i in 0..slots.len() {
            let slot = &mut slots[i];
            if slot.handle.as_ref().is_some_and(|h| h.is_finished()) {
                let _ = slot.handle.take().expect("checked above").join();
                if lock_recover(&shared.state).shutdown {
                    continue; // normal exit during drain, not a death
                }
                shared.metrics.worker_restarts.fetch_add(1, Ordering::Relaxed);
                slot.restarts += 1;
                if now.duration_since(slot.spawned_at) >= HEALTHY_AFTER {
                    slot.backoff = Duration::from_millis(shared.config.restart_backoff_ms);
                }
                slot.respawn_at = Some(now + slot.backoff);
                slot.backoff = (slot.backoff * 2)
                    .min(Duration::from_millis(shared.config.restart_backoff_max_ms));
            }
            if slot.handle.is_none() && slot.respawn_at.is_some_and(|at| now >= at) {
                slot.handle = Some(spawn_worker(shared, i));
                slot.respawn_at = None;
                slot.spawned_at = Instant::now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_nn::{Model, ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// An exact (bit-identical to the tape path) session, so tests can
    /// compare served logits with `Model::predict` by equality.
    fn tiny_session() -> (Model, InferenceSession) {
        let mut rng = StdRng::seed_from_u64(5);
        let model = Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng);
        let session = InferenceSession::exact(&model);
        (model, session)
    }

    #[test]
    fn served_logits_match_direct_predict() {
        let (model, session) = tiny_session();
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        let tokens = vec![1usize, 2, 3, 4, 5];
        let p = handle.infer(tokens.clone()).expect("request served");
        assert_eq!(p.logits, model.predict(&tokens));
        assert_eq!(p.class, model.predict_class(&tokens));
        assert!(p.batch_size >= 1);
        assert!(p.padded_len >= tokens.len());
        server.shutdown();
    }

    #[test]
    fn quantized_session_serves_through_the_batcher() {
        use fab_quant::{quantize_frozen, CalibrationConfig};
        let mut rng = StdRng::seed_from_u64(21);
        let config = ModelConfig::tiny_for_tests();
        let model = Model::new(&config, ModelKind::Transformer, &mut rng);
        let frozen = model.freeze().with_fast_math(true);
        let calib: Vec<Vec<usize>> = (0..6)
            .map(|i| (0..8).map(|j| (i * 7 + j * 3 + 1) % config.vocab_size).collect())
            .collect();
        let quant = quantize_frozen(&frozen, &calib, &CalibrationConfig::default());
        let session = InferenceSession::quantized(quant.clone());
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        let tokens = vec![1usize, 2, 3, 4, 5];
        let p = handle.infer(tokens.clone()).expect("request served");
        // Served logits are bit-identical to the direct quantized forward
        // (batch invariance), and the stats report the int8 path.
        assert_eq!(p.logits, quant.logits(&tokens));
        assert_eq!(p.class, quant.predict_class(&tokens));
        let stats = server.stats();
        assert_eq!(stats.session_kind, "int8");
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    #[test]
    fn f32_sessions_report_their_kind_in_stats() {
        let (_model, session) = tiny_session();
        let server = Server::start(session, ServeConfig::default());
        assert_eq!(server.stats().session_kind, "exact");
        server.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_up_front() {
        let (_model, session) = tiny_session();
        let max_seq = session.max_seq();
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        assert_eq!(handle.infer(vec![]), Err(ServeError::EmptySequence));
        assert_eq!(
            handle.infer(vec![0; max_seq + 1]),
            Err(ServeError::SequenceTooLong { len: max_seq + 1, max: max_seq })
        );
        let vocab = server.shared.session.vocab_size();
        assert_eq!(
            handle.infer(vec![0, vocab + 3]),
            Err(ServeError::InvalidToken { id: vocab + 3, vocab })
        );
        assert_eq!(server.stats().completed, 0);
    }

    #[test]
    fn requests_coalesce_into_batches() {
        let (_model, session) = tiny_session();
        let config = ServeConfig {
            max_batch: 8,
            max_wait_us: 200_000,
            num_workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        let pending: Vec<_> =
            (0..8).map(|i| handle.submit(vec![1, 2, 3, (i % 4) + 1]).unwrap()).collect();
        let sizes: Vec<usize> = pending.into_iter().map(|p| p.wait().unwrap().batch_size).collect();
        // All 8 requests land in the same bucket; the batch dispatches as
        // soon as it is full, well before the 200ms deadline, so at least
        // the last-served requests rode a multi-request batch.
        assert!(*sizes.iter().max().unwrap() > 1, "no batching happened: {sizes:?}");
        let stats = server.stats();
        assert_eq!(stats.completed, 8);
        assert!(stats.mean_batch_occupancy > 1.0);
        server.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_full_with_retry_hint() {
        let (_model, session) = tiny_session();
        // One worker stuck behind a long max_wait with a tiny queue.
        let config = ServeConfig {
            max_batch: 16,
            max_wait_us: 300_000,
            queue_capacity: 2,
            num_workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        let mut pending = Vec::new();
        let mut rejected = 0;
        for _ in 0..6 {
            match handle.submit(vec![1, 2, 3]) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { retry_after_ms, .. }) => {
                    rejected += 1;
                    assert!(
                        (10..=5000).contains(&retry_after_ms),
                        "retry hint {retry_after_ms}ms outside its clamp"
                    );
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected > 0, "expected admission control to kick in");
        for p in pending {
            p.wait().unwrap();
        }
        assert_eq!(server.stats().rejected, rejected);
        server.shutdown();
    }

    #[test]
    fn full_batch_is_not_blocked_by_a_stale_request_in_another_bucket() {
        let (_model, session) = tiny_session();
        let config = ServeConfig {
            max_batch: 8,
            max_wait_us: 2_000_000, // 2s deadline: hitting it would be obvious
            num_workers: 1,
            buckets: vec![4, 16],
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        // A lone short request parks in the 4-bucket...
        let stale = handle.submit(vec![1, 2, 3]).unwrap();
        // ...then a full batch lands in the 16-bucket.
        let t0 = Instant::now();
        let full: Vec<_> = (0..8).map(|_| handle.submit(vec![2; 10]).unwrap()).collect();
        for p in full {
            p.wait().unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "full batch waited {:?} behind a stale request in another bucket",
            t0.elapsed()
        );
        server.shutdown();
        stale.wait().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (_model, session) = tiny_session();
        let config = ServeConfig { max_wait_us: 100_000, num_workers: 1, ..ServeConfig::default() };
        let server = Server::start(session, config);
        let handle = server.handle();
        let pending: Vec<_> = (0..5).map(|_| handle.submit(vec![2, 3, 4]).unwrap()).collect();
        server.shutdown();
        for p in pending {
            p.wait().expect("queued request served during graceful shutdown");
        }
        assert_eq!(handle.infer(vec![1, 2]), Err(ServeError::ServerStopped));
    }

    #[test]
    fn mixed_lengths_land_in_matching_buckets() {
        let (model, session) = tiny_session();
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        let short = handle.infer(vec![1; 3]).unwrap();
        let long = handle.infer(vec![1; 16]).unwrap();
        assert!(short.padded_len >= 3 && short.padded_len <= 16);
        assert_eq!(long.padded_len, 16);
        assert_eq!(short.logits, model.predict(&[1; 3]));
        assert_eq!(long.logits, model.predict(&[1; 16]));
        server.shutdown();
    }

    #[test]
    fn zero_deadline_is_shed_at_submission() {
        let (_model, session) = tiny_session();
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        assert_eq!(
            handle
                .submit_with_deadline(vec![1, 2, 3], Some(Duration::ZERO))
                .map(|_| ())
                .unwrap_err(),
            ServeError::DeadlineExceeded
        );
        assert_eq!(server.stats().shed_expired, 1);
        assert_eq!(server.stats().completed, 0);
        server.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_before_the_forward_pass() {
        let (_model, session) = tiny_session();
        // One worker parked on a long batching wait, so queued requests
        // expire before the batch forms.
        let config = ServeConfig {
            max_batch: 16,
            max_wait_us: 150_000,
            num_workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        let doomed: Vec<_> = (0..3)
            .map(|_| {
                handle
                    .submit_with_deadline(vec![1, 2, 3], Some(Duration::from_millis(1)))
                    .expect("admitted")
            })
            .collect();
        let alive = handle.submit(vec![4, 5, 6]).expect("admitted");
        for p in doomed {
            assert_eq!(p.wait(), Err(ServeError::DeadlineExceeded));
        }
        alive.wait().expect("undeadlined request survives");
        let stats = server.stats();
        assert_eq!(stats.shed_expired, 3);
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    #[test]
    fn killed_workers_are_respawned_by_the_supervisor() {
        let (model, session) = tiny_session();
        let config = ServeConfig {
            num_workers: 1,
            restart_backoff_ms: 1,
            max_wait_us: 100,
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        handle.infer(vec![1, 2, 3]).expect("pre-kill request served");
        server.inject_worker_exit();
        // The (sole) worker dies; the supervisor must respawn it and the
        // server must keep answering. Allow generous time for backoff.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut served = None;
        while Instant::now() < deadline {
            match handle.submit(vec![2, 3, 4]) {
                Ok(p) => {
                    if let Some(result) = p.wait_timeout(Duration::from_millis(500)) {
                        served = Some(result.expect("respawned worker serves"));
                        break;
                    }
                }
                Err(e) => panic!("submission failed during respawn: {e}"),
            }
        }
        let p = served.expect("supervisor never respawned the worker");
        assert_eq!(p.logits, model.predict(&[2, 3, 4]));
        assert!(server.stats().worker_restarts >= 1, "restart not counted");
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_inline_when_every_worker_died() {
        let (model, session) = tiny_session();
        let config = ServeConfig {
            num_workers: 2,
            max_wait_us: 500_000,
            // Keep dead workers down across the whole test: backoff starts
            // beyond the test's lifetime, so only the inline drain can
            // answer the queued requests.
            restart_backoff_ms: 60_000,
            restart_backoff_max_ms: 60_000,
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        server.inject_worker_exit();
        server.inject_worker_exit();
        // Give the workers time to observe the kill and die.
        std::thread::sleep(Duration::from_millis(50));
        let pending: Vec<_> = (0..4).map(|_| handle.submit(vec![1, 2, 3]).unwrap()).collect();
        server.shutdown();
        for p in pending {
            let served = p.wait().expect("inline drain answers queued requests");
            assert_eq!(served.logits, model.predict(&[1, 2, 3]));
        }
    }

    #[test]
    fn poisoned_queue_lock_recovers_instead_of_cascading() {
        let (model, session) = tiny_session();
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        // Poison the queue mutex: a panicking producer mid-critical-section.
        let shared = Arc::clone(&server.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.state.lock().unwrap();
            panic!("poison the serve queue");
        })
        .join();
        assert!(server.shared.state.is_poisoned(), "test failed to poison the lock");
        // Every path that takes the lock must keep working.
        let p = handle.infer(vec![1, 2, 3]).expect("request served on a poisoned lock");
        assert_eq!(p.logits, model.predict(&[1, 2, 3]));
        assert!(server.stats().completed >= 1);
        server.shutdown();
    }

    #[test]
    fn panicking_batch_spares_its_batchmates() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng);
        let marker = 7usize;
        let session = InferenceSession::exact(&model).with_panic_on_token(marker);
        let config = ServeConfig {
            max_batch: 8,
            max_wait_us: 100_000,
            num_workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        // One poisonous request plus healthy batchmates, all in one bucket.
        let victims: Vec<_> = (0..4).map(|_| handle.submit(vec![1, 2, 3]).unwrap()).collect();
        let poisonous = handle.submit(vec![1, marker, 3]).unwrap();
        let mut batch_fill: Vec<_> =
            (0..3).map(|_| handle.submit(vec![1, 2, 3]).unwrap()).collect();
        // Healthy batchmates still get answers (served in isolation).
        for p in victims.into_iter().chain(batch_fill.drain(..)) {
            let served = p.wait().expect("batchmates survive the panic");
            assert_eq!(served.logits, model.predict(&[1, 2, 3]));
        }
        // The poisonous request gets an explicit error, not a hang.
        assert_eq!(poisonous.wait(), Err(ServeError::ModelPanicked));
        let stats = server.stats();
        assert!(stats.batch_panics >= 1, "panic not counted: {stats}");
        assert_eq!(stats.failed, 1);
        // The worker survived: a fresh request is served.
        handle.infer(vec![4, 5, 6]).expect("worker keeps serving after the panic");
        server.shutdown();
    }
}
