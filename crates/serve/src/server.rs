//! The dynamic-batching server: a bounded MPSC request queue drained into
//! sequence-length-bucketed batches by a pool of std-thread workers.
//!
//! ```text
//!  clients ──submit──▶ bounded queue (admission control, per-bucket FIFO)
//!                          │  drain ≤ max_batch, wait ≤ max_wait_us
//!                          ▼
//!                length-bucketed micro-batch (padded to the longest
//!                sequence in the batch; bucket boundary = upper bound)
//!                          │
//!                          ▼
//!        worker pool ──▶ InferenceSession::logits_batch ──▶ responses
//! ```
//!
//! Batching policy: a worker first dispatches any bucket already holding a
//! full `max_batch` (oldest head first among those); otherwise it picks the
//! bucket whose head request is oldest (global FIFO across buckets) and
//! dispatches it once that head has waited `max_wait_us` or the server is
//! shutting down. An idle server therefore adds at most `max_wait_us` of
//! batching delay, a saturated one runs full batches back to back, and a
//! full batch never waits behind a stale request in another bucket.

use crate::metrics::{Metrics, ServerStats};
use crate::session::{InferenceSession, SessionScratch};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Knobs of the dynamic micro-batcher.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest number of requests fused into one batch.
    pub max_batch: usize,
    /// Longest time the oldest queued request may wait for its batch to
    /// fill before being dispatched anyway, in microseconds.
    pub max_wait_us: u64,
    /// Admission-control bound: requests beyond this many queued are
    /// rejected with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Number of worker threads (0 = one per available core, capped at 4).
    pub num_workers: usize,
    /// Ascending sequence-length bucket boundaries; a request joins the
    /// first bucket whose boundary covers its length. Empty = derive
    /// doubling boundaries from the session's `max_seq` (16, 32, …,
    /// max_seq).
    pub buckets: Vec<usize>,
    /// When `true`, every batch is padded all the way to its bucket
    /// boundary (uniform shapes, e.g. for shape-specialised backends). The
    /// default `false` pads only to the longest sequence in the batch —
    /// the boundary stays the upper bound, but stragglers cost less.
    pub pad_to_bucket_boundary: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait_us: 500,
            queue_capacity: 1024,
            num_workers: 0,
            buckets: Vec::new(),
            pad_to_bucket_boundary: false,
        }
    }
}

impl ServeConfig {
    /// Resolves defaults against a session: fills in worker count and
    /// derives bucket boundaries when unset.
    fn resolved(mut self, max_seq: usize) -> Self {
        assert!(self.max_batch >= 1, "max_batch must be at least 1");
        assert!(self.queue_capacity >= 1, "queue_capacity must be at least 1");
        if self.num_workers == 0 {
            self.num_workers =
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
        }
        if self.buckets.is_empty() {
            let mut b = 16usize;
            while b < max_seq {
                self.buckets.push(b);
                b *= 2;
            }
            self.buckets.push(max_seq);
        }
        self.buckets.sort_unstable();
        self.buckets.dedup();
        assert!(
            *self.buckets.last().expect("at least one bucket") <= max_seq,
            "bucket boundary beyond the session's max_seq {max_seq}"
        );
        self
    }
}

/// Why the server could not take or finish a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the queue is full.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// The sequence is longer than the largest configured bucket.
    SequenceTooLong {
        /// Length of the rejected sequence.
        len: usize,
        /// Largest acceptable length.
        max: usize,
    },
    /// The sequence is empty.
    EmptySequence,
    /// A token id is outside the model's vocabulary.
    InvalidToken {
        /// The offending token id.
        id: usize,
        /// Vocabulary size of the served model.
        vocab: usize,
    },
    /// The server was shut down (or a worker failed) before this request
    /// could be served.
    ServerStopped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "queue full ({depth} requests pending); retry later")
            }
            ServeError::SequenceTooLong { len, max } => {
                write!(f, "sequence length {len} exceeds the largest bucket {max}")
            }
            ServeError::EmptySequence => write!(f, "cannot serve an empty sequence"),
            ServeError::InvalidToken { id, vocab } => {
                write!(f, "token id {id} outside the model vocabulary of {vocab}")
            }
            ServeError::ServerStopped => {
                write!(f, "server shut down or failed before serving the request")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed prediction with its per-request serving metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Class logits.
    pub logits: Vec<f32>,
    /// Argmax class.
    pub class: usize,
    /// Time spent queued before batch formation, in microseconds.
    pub queue_wait_us: u64,
    /// Model time of the batch this request rode in, in microseconds.
    pub service_us: u64,
    /// Number of requests in that batch.
    pub batch_size: usize,
    /// Bucket boundary the batch was padded to.
    pub padded_len: usize,
}

/// One queued request.
struct Request {
    tokens: Vec<usize>,
    enqueued: Instant,
    resp: mpsc::Sender<Prediction>,
}

/// Mutex-guarded queue state (the MPSC channel core).
struct QueueState {
    /// Per-bucket FIFO queues, aligned with the resolved bucket boundaries.
    queues: Vec<VecDeque<Request>>,
    /// Total requests across all buckets.
    depth: usize,
    /// Set once by [`Server::shutdown`]; workers drain and exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    work: Condvar,
    config: ServeConfig,
    session: Arc<InferenceSession>,
    metrics: Metrics,
}

/// The dynamic-batching inference server.
///
/// Start one with [`Server::start`], hand [`ServerHandle`]s (cheap clones)
/// to client threads, and read aggregate [`ServerStats`] at any time.
/// Dropping the server shuts it down gracefully: queued requests are
/// drained, then the workers exit.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool and returns the running server.
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid (zero `max_batch`/`queue_capacity`,
    /// or a bucket boundary beyond the session's `max_seq`).
    pub fn start(session: InferenceSession, config: ServeConfig) -> Self {
        let config = config.resolved(session.max_seq());
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queues: (0..config.buckets.len()).map(|_| VecDeque::new()).collect(),
                depth: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            config: config.clone(),
            session: Arc::new(session),
            metrics: Metrics::new(),
        });
        let workers = (0..config.num_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fab-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Returns a cloneable handle clients use to submit requests.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The resolved configuration (defaults filled in).
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Snapshots the aggregate serving metrics.
    pub fn stats(&self) -> ServerStats {
        let depth = self.shared.state.lock().expect("serve queue poisoned").depth;
        self.shared.metrics.snapshot(
            depth,
            self.shared.config.num_workers,
            self.shared.session.kind().name(),
        )
    }

    /// Drains the queue, stops the workers and waits for them to exit.
    /// Requests submitted after this call are rejected with
    /// [`ServeError::ServerStopped`].
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.state.lock().expect("serve queue poisoned").shutdown = true;
        self.shared.work.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A cheap, cloneable, `Send` handle for submitting inference requests.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Enqueues a request without blocking for its completion.
    ///
    /// Admission control applies immediately: a full queue rejects with
    /// [`ServeError::Overloaded`] rather than blocking the producer —
    /// backpressure surfaces at the edge instead of growing the queue
    /// without bound.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptySequence`], [`ServeError::SequenceTooLong`],
    /// [`ServeError::Overloaded`], or [`ServeError::ServerStopped`].
    pub fn submit(&self, tokens: Vec<usize>) -> Result<PendingPrediction, ServeError> {
        if tokens.is_empty() {
            return Err(ServeError::EmptySequence);
        }
        let buckets = &self.shared.config.buckets;
        let max = *buckets.last().expect("at least one bucket");
        if tokens.len() > max {
            return Err(ServeError::SequenceTooLong { len: tokens.len(), max });
        }
        let vocab = self.shared.session.vocab_size();
        if let Some(&id) = tokens.iter().find(|&&id| id >= vocab) {
            return Err(ServeError::InvalidToken { id, vocab });
        }
        let bucket = buckets
            .iter()
            .position(|&b| tokens.len() <= b)
            .expect("length is covered by the last bucket");
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().expect("serve queue poisoned");
            if st.shutdown {
                return Err(ServeError::ServerStopped);
            }
            if st.depth >= self.shared.config.queue_capacity {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded { depth: st.depth });
            }
            st.queues[bucket].push_back(Request { tokens, enqueued: Instant::now(), resp: tx });
            st.depth += 1;
            self.shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
            self.shared.metrics.peak_queue_depth.fetch_max(st.depth as u64, Ordering::Relaxed);
        }
        self.shared.work.notify_all();
        Ok(PendingPrediction { rx })
    }

    /// Submits a request and blocks until its prediction arrives.
    ///
    /// # Errors
    ///
    /// Same as [`ServerHandle::submit`], plus [`ServeError::ServerStopped`]
    /// when the server shuts down before responding.
    pub fn infer(&self, tokens: Vec<usize>) -> Result<Prediction, ServeError> {
        self.submit(tokens)?.wait()
    }

    /// Snapshots the aggregate serving metrics.
    pub fn stats(&self) -> ServerStats {
        let depth = self.shared.state.lock().expect("serve queue poisoned").depth;
        self.shared.metrics.snapshot(
            depth,
            self.shared.config.num_workers,
            self.shared.session.kind().name(),
        )
    }
}

/// A submitted request whose prediction has not arrived yet.
pub struct PendingPrediction {
    rx: mpsc::Receiver<Prediction>,
}

impl PendingPrediction {
    /// Blocks until the prediction arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::ServerStopped`] when the server shut down before
    /// serving this request.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ServerStopped)
    }
}

/// A batch drained from the queue, ready for one session call.
struct DrainedBatch {
    requests: Vec<Request>,
    padded_len: usize,
}

/// The worker loop: form a batch (blocking on the condvar while the queue
/// is empty or the head batch is still filling), run the session, respond.
fn worker_loop(shared: &Shared) {
    let mut scratch = SessionScratch::with_capacity(
        shared.config.max_batch,
        *shared.config.buckets.last().expect("at least one bucket"),
    );
    while let Some(batch) = next_batch(shared) {
        run_batch(shared, batch, &mut scratch);
    }
}

/// Blocks until a batch is ready (returning it) or shutdown completes with
/// an empty queue (returning `None`).
fn next_batch(shared: &Shared) -> Option<DrainedBatch> {
    let max_batch = shared.config.max_batch;
    let max_wait = Duration::from_micros(shared.config.max_wait_us);
    let mut st = shared.state.lock().expect("serve queue poisoned");
    loop {
        if st.depth == 0 {
            if st.shutdown {
                return None;
            }
            st = shared.work.wait(st).expect("serve queue poisoned");
            continue;
        }
        // Prefer a bucket that can already dispatch a full batch (oldest
        // head first among those) — a full batch must never wait behind a
        // lone stale request in another bucket. With no full bucket, fall
        // back to the bucket whose head has waited longest (global FIFO)
        // and dispatch it once its deadline expires.
        let heads =
            || st.queues.iter().enumerate().filter_map(|(b, q)| q.front().map(|r| (b, r.enqueued)));
        let full_bucket =
            heads().filter(|&(b, _)| st.queues[b].len() >= max_batch).min_by_key(|&(_, e)| e);
        let (bucket, enqueued, is_full) = match full_bucket {
            Some((b, e)) => (b, e, true),
            None => {
                let (b, e) =
                    heads().min_by_key(|&(_, e)| e).expect("depth > 0 implies a non-empty bucket");
                (b, e, false)
            }
        };
        let waited = enqueued.elapsed();
        let ready = st.shutdown || is_full || waited >= max_wait;
        if !ready {
            let (guard, _) =
                shared.work.wait_timeout(st, max_wait - waited).expect("serve queue poisoned");
            st = guard;
            continue;
        }
        let take = st.queues[bucket].len().min(max_batch);
        let requests: Vec<Request> = st.queues[bucket].drain(..take).collect();
        st.depth -= requests.len();
        let padded_len = if shared.config.pad_to_bucket_boundary {
            shared.config.buckets[bucket]
        } else {
            requests.iter().map(|r| r.tokens.len()).max().expect("non-empty batch")
        };
        return Some(DrainedBatch { requests, padded_len });
    }
}

/// Runs one drained batch through the session and fulfils its requests.
///
/// A panicking forward pass (which admission-time validation should make
/// impossible) fails only its own batch: the requests' response senders are
/// dropped, so waiting clients observe [`ServeError::ServerStopped`] instead
/// of blocking forever, and the worker stays alive for the next batch.
fn run_batch(shared: &Shared, batch: DrainedBatch, scratch: &mut SessionScratch) {
    let t0 = Instant::now();
    let refs: Vec<&[usize]> = batch.requests.iter().map(|r| r.tokens.as_slice()).collect();
    let forward = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.session.logits_batch(&refs, batch.padded_len, scratch)
    }));
    drop(refs);
    let logits = match forward {
        Ok(logits) => logits,
        Err(_) => {
            shared.metrics.failed.fetch_add(batch.requests.len() as u64, Ordering::Relaxed);
            return;
        }
    };
    let service_us = t0.elapsed().as_micros() as u64;
    let n = batch.requests.len();
    let m = &shared.metrics;
    m.batches.fetch_add(1, Ordering::Relaxed);
    m.batched_examples.fetch_add(n as u64, Ordering::Relaxed);
    m.max_batch_observed.fetch_max(n as u64, Ordering::Relaxed);
    m.service.record(service_us);
    for (req, lg) in batch.requests.into_iter().zip(logits) {
        let queue_wait_us = t0.duration_since(req.enqueued).as_micros() as u64;
        m.queue_wait.record(queue_wait_us);
        m.latency.record(req.enqueued.elapsed().as_micros() as u64);
        m.completed.fetch_add(1, Ordering::Relaxed);
        let class = fab_nn::argmax(&lg);
        // The client may have dropped its receiver; that is not an error.
        let _ = req.resp.send(Prediction {
            logits: lg,
            class,
            queue_wait_us,
            service_us,
            batch_size: n,
            padded_len: batch.padded_len,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_nn::{Model, ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// An exact (bit-identical to the tape path) session, so tests can
    /// compare served logits with `Model::predict` by equality.
    fn tiny_session() -> (Model, InferenceSession) {
        let mut rng = StdRng::seed_from_u64(5);
        let model = Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng);
        let session = InferenceSession::exact(&model);
        (model, session)
    }

    #[test]
    fn served_logits_match_direct_predict() {
        let (model, session) = tiny_session();
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        let tokens = vec![1usize, 2, 3, 4, 5];
        let p = handle.infer(tokens.clone()).expect("request served");
        assert_eq!(p.logits, model.predict(&tokens));
        assert_eq!(p.class, model.predict_class(&tokens));
        assert!(p.batch_size >= 1);
        assert!(p.padded_len >= tokens.len());
        server.shutdown();
    }

    #[test]
    fn quantized_session_serves_through_the_batcher() {
        use fab_quant::{quantize_frozen, CalibrationConfig};
        let mut rng = StdRng::seed_from_u64(21);
        let config = ModelConfig::tiny_for_tests();
        let model = Model::new(&config, ModelKind::Transformer, &mut rng);
        let frozen = model.freeze().with_fast_math(true);
        let calib: Vec<Vec<usize>> = (0..6)
            .map(|i| (0..8).map(|j| (i * 7 + j * 3 + 1) % config.vocab_size).collect())
            .collect();
        let quant = quantize_frozen(&frozen, &calib, &CalibrationConfig::default());
        let session = InferenceSession::quantized(quant.clone());
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        let tokens = vec![1usize, 2, 3, 4, 5];
        let p = handle.infer(tokens.clone()).expect("request served");
        // Served logits are bit-identical to the direct quantized forward
        // (batch invariance), and the stats report the int8 path.
        assert_eq!(p.logits, quant.logits(&tokens));
        assert_eq!(p.class, quant.predict_class(&tokens));
        let stats = server.stats();
        assert_eq!(stats.session_kind, "int8");
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    #[test]
    fn f32_sessions_report_their_kind_in_stats() {
        let (_model, session) = tiny_session();
        let server = Server::start(session, ServeConfig::default());
        assert_eq!(server.stats().session_kind, "exact");
        server.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_up_front() {
        let (_model, session) = tiny_session();
        let max_seq = session.max_seq();
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        assert_eq!(handle.infer(vec![]), Err(ServeError::EmptySequence));
        assert_eq!(
            handle.infer(vec![0; max_seq + 1]),
            Err(ServeError::SequenceTooLong { len: max_seq + 1, max: max_seq })
        );
        let vocab = server.shared.session.vocab_size();
        assert_eq!(
            handle.infer(vec![0, vocab + 3]),
            Err(ServeError::InvalidToken { id: vocab + 3, vocab })
        );
        assert_eq!(server.stats().completed, 0);
    }

    #[test]
    fn requests_coalesce_into_batches() {
        let (_model, session) = tiny_session();
        let config = ServeConfig {
            max_batch: 8,
            max_wait_us: 200_000,
            num_workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        let pending: Vec<_> =
            (0..8).map(|i| handle.submit(vec![1, 2, 3, (i % 4) + 1]).unwrap()).collect();
        let sizes: Vec<usize> = pending.into_iter().map(|p| p.wait().unwrap().batch_size).collect();
        // All 8 requests land in the same bucket; the batch dispatches as
        // soon as it is full, well before the 200ms deadline, so at least
        // the last-served requests rode a multi-request batch.
        assert!(*sizes.iter().max().unwrap() > 1, "no batching happened: {sizes:?}");
        let stats = server.stats();
        assert_eq!(stats.completed, 8);
        assert!(stats.mean_batch_occupancy > 1.0);
        server.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let (_model, session) = tiny_session();
        // One worker stuck behind a long max_wait with a tiny queue.
        let config = ServeConfig {
            max_batch: 16,
            max_wait_us: 300_000,
            queue_capacity: 2,
            num_workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        let mut pending = Vec::new();
        let mut rejected = 0;
        for _ in 0..6 {
            match handle.submit(vec![1, 2, 3]) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected > 0, "expected admission control to kick in");
        for p in pending {
            p.wait().unwrap();
        }
        assert_eq!(server.stats().rejected, rejected);
        server.shutdown();
    }

    #[test]
    fn full_batch_is_not_blocked_by_a_stale_request_in_another_bucket() {
        let (_model, session) = tiny_session();
        let config = ServeConfig {
            max_batch: 8,
            max_wait_us: 2_000_000, // 2s deadline: hitting it would be obvious
            num_workers: 1,
            buckets: vec![4, 16],
            ..ServeConfig::default()
        };
        let server = Server::start(session, config);
        let handle = server.handle();
        // A lone short request parks in the 4-bucket...
        let stale = handle.submit(vec![1, 2, 3]).unwrap();
        // ...then a full batch lands in the 16-bucket.
        let t0 = Instant::now();
        let full: Vec<_> = (0..8).map(|_| handle.submit(vec![2; 10]).unwrap()).collect();
        for p in full {
            p.wait().unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "full batch waited {:?} behind a stale request in another bucket",
            t0.elapsed()
        );
        server.shutdown();
        stale.wait().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (_model, session) = tiny_session();
        let config = ServeConfig { max_wait_us: 100_000, num_workers: 1, ..ServeConfig::default() };
        let server = Server::start(session, config);
        let handle = server.handle();
        let pending: Vec<_> = (0..5).map(|_| handle.submit(vec![2, 3, 4]).unwrap()).collect();
        server.shutdown();
        for p in pending {
            p.wait().expect("queued request served during graceful shutdown");
        }
        assert_eq!(handle.infer(vec![1, 2]), Err(ServeError::ServerStopped));
    }

    #[test]
    fn mixed_lengths_land_in_matching_buckets() {
        let (model, session) = tiny_session();
        let server = Server::start(session, ServeConfig::default());
        let handle = server.handle();
        let short = handle.infer(vec![1; 3]).unwrap();
        let long = handle.infer(vec![1; 16]).unwrap();
        assert!(short.padded_len >= 3 && short.padded_len <= 16);
        assert_eq!(long.padded_len, 16);
        assert_eq!(short.logits, model.predict(&[1; 3]));
        assert_eq!(long.logits, model.predict(&[1; 16]));
        server.shutdown();
    }
}
