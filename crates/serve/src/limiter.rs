//! Adaptive admission: an AIMD concurrency limiter.
//!
//! Static queue caps reject at a cliff — healthy until the queue fills,
//! then a wall of 429s. The [`AimdLimiter`] instead tracks how many
//! requests a model currently has in flight (admitted, not yet answered)
//! against an adaptive limit: completions inside the latency SLO grow the
//! limit additively (one slot per [`AimdConfig::increase_every`] on-SLO
//! completions), an SLO breach cuts it multiplicatively (to
//! [`AimdConfig::decrease_pct`] percent, at most once per
//! [`AimdConfig::cooldown_ms`] so one late burst does not collapse the
//! limit to the floor). TCP congestion control, pointed at a worker pool.
//!
//! The limiter is deliberately decoupled from the queue: the queue cap
//! bounds *memory*, the AIMD limit bounds *latency*. Under sustained
//! overload the limit converges to roughly the largest concurrency the
//! pool can serve within SLO, which is exactly the signal the fleet's
//! degradation ladder keys off — an acquire failure here is the "this
//! precision is out of capacity" event that reroutes traffic to a cheaper
//! precision of the same task.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Knobs for one [`AimdLimiter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AimdConfig {
    /// Starting concurrency limit.
    pub initial_limit: u64,
    /// Floor the multiplicative decrease never cuts below (≥ 1).
    pub min_limit: u64,
    /// Ceiling the additive increase never grows past.
    pub max_limit: u64,
    /// The latency SLO in microseconds: completions at or under it are
    /// "good" (grow the limit), over it are breaches (cut it).
    pub slo_us: u64,
    /// On-SLO completions per +1 of limit.
    pub increase_every: u64,
    /// Multiplicative-decrease target as a percentage (e.g. 70 cuts the
    /// limit to 70%).
    pub decrease_pct: u64,
    /// Minimum milliseconds between two multiplicative cuts.
    pub cooldown_ms: u64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        Self {
            initial_limit: 64,
            min_limit: 4,
            max_limit: 1024,
            slo_us: 250_000,
            increase_every: 8,
            decrease_pct: 70,
            cooldown_ms: 100,
        }
    }
}

/// The adaptive concurrency limiter. All operations are lock-free; see
/// the module docs for the control law.
#[derive(Debug)]
pub struct AimdLimiter {
    config: AimdConfig,
    limit: AtomicU64,
    inflight: AtomicU64,
    /// On-SLO completions since the last limit increase.
    good_streak: AtomicU64,
    /// Microseconds-since-`started` of the last multiplicative cut.
    last_cut_us: AtomicU64,
    /// Acquire attempts rejected because the limit was full.
    rejected: AtomicU64,
    started: Instant,
}

impl AimdLimiter {
    /// A limiter starting at `config.initial_limit` (clamped into
    /// `[min_limit, max_limit]`).
    pub fn new(config: AimdConfig) -> Self {
        let min = config.min_limit.max(1);
        let max = config.max_limit.max(min);
        let initial = config.initial_limit.clamp(min, max);
        let config = AimdConfig { min_limit: min, max_limit: max, ..config };
        Self {
            config,
            limit: AtomicU64::new(initial),
            inflight: AtomicU64::new(0),
            good_streak: AtomicU64::new(0),
            last_cut_us: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Tries to take one in-flight slot. On `false` the caller must not
    /// submit (and must not call [`AimdLimiter::release`]).
    pub fn try_acquire(&self) -> bool {
        let taken = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if taken > self.limit.load(Ordering::Acquire) {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Releases a slot for a completed request and feeds its end-to-end
    /// latency into the control law.
    pub fn release(&self, latency_us: u64) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        if latency_us <= self.config.slo_us {
            let streak = self.good_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if streak >= self.config.increase_every {
                self.good_streak.store(0, Ordering::Relaxed);
                let limit = self.limit.load(Ordering::Acquire);
                if limit < self.config.max_limit {
                    self.limit.store(limit + 1, Ordering::Release);
                }
            }
        } else {
            self.cut();
        }
    }

    /// Releases a slot for a request that failed without a meaningful
    /// latency (validation, panic, shutdown): no control-law feedback.
    pub fn release_failure(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        self.good_streak.store(0, Ordering::Relaxed);
    }

    /// One multiplicative cut, rate-limited by the cooldown.
    fn cut(&self) {
        self.good_streak.store(0, Ordering::Relaxed);
        let now_us = self.started.elapsed().as_micros() as u64;
        let last = self.last_cut_us.load(Ordering::Acquire);
        let cooldown_us = self.config.cooldown_ms * 1000;
        if now_us.saturating_sub(last) < cooldown_us && last != 0 {
            return;
        }
        if self
            .last_cut_us
            .compare_exchange(last, now_us.max(1), Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return; // another breach in the same instant already cut
        }
        let limit = self.limit.load(Ordering::Acquire);
        let cut = (limit * self.config.decrease_pct / 100).max(self.config.min_limit);
        self.limit.store(cut, Ordering::Release);
    }

    /// The current adaptive limit.
    pub fn limit(&self) -> u64 {
        self.limit.load(Ordering::Acquire)
    }

    /// Requests currently holding a slot.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    /// Acquire attempts rejected since creation.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The limiter's configuration (clamps applied).
    pub fn config(&self) -> &AimdConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limiter(initial: u64, min: u64, max: u64) -> AimdLimiter {
        AimdLimiter::new(AimdConfig {
            initial_limit: initial,
            min_limit: min,
            max_limit: max,
            slo_us: 1_000,
            increase_every: 2,
            decrease_pct: 50,
            cooldown_ms: 0,
        })
    }

    #[test]
    fn acquire_respects_the_limit_and_release_frees_slots() {
        let l = limiter(2, 1, 8);
        assert!(l.try_acquire());
        assert!(l.try_acquire());
        assert!(!l.try_acquire(), "third acquire must fail at limit 2");
        assert_eq!(l.rejected(), 1);
        l.release_failure();
        assert!(l.try_acquire(), "released slot is reusable");
        assert_eq!(l.inflight(), 2);
    }

    #[test]
    fn on_slo_completions_grow_the_limit_additively_to_the_cap() {
        let l = limiter(2, 1, 4);
        for _ in 0..40 {
            let _ = l.try_acquire();
            l.release(10); // far under SLO
        }
        assert_eq!(l.limit(), 4, "limit must climb to and stop at max");
    }

    #[test]
    fn slo_breach_cuts_multiplicatively_to_the_floor() {
        let l = limiter(8, 2, 8);
        l.try_acquire();
        l.release(50_000); // breach: 8 -> 4
        assert_eq!(l.limit(), 4);
        l.try_acquire();
        l.release(50_000); // 4 -> 2 (floor)
        assert_eq!(l.limit(), 2);
        l.try_acquire();
        l.release(50_000);
        assert_eq!(l.limit(), 2, "min_limit is a hard floor");
    }

    #[test]
    fn cooldown_coalesces_a_burst_of_breaches_into_one_cut() {
        let l = AimdLimiter::new(AimdConfig {
            initial_limit: 64,
            min_limit: 1,
            max_limit: 64,
            slo_us: 1_000,
            increase_every: 2,
            decrease_pct: 50,
            cooldown_ms: 60_000, // longer than the test
        });
        for _ in 0..10 {
            l.try_acquire();
            l.release(1_000_000);
        }
        assert_eq!(l.limit(), 32, "ten breaches inside one cooldown = one cut");
    }

    #[test]
    fn failures_reset_the_good_streak_but_do_not_cut() {
        let l = limiter(4, 1, 8);
        l.try_acquire();
        l.release(10);
        l.try_acquire();
        l.release_failure(); // resets streak; limit untouched
        assert_eq!(l.limit(), 4);
        assert_eq!(l.inflight(), 0);
    }

    #[test]
    fn limit_stays_within_bounds_under_any_mixed_sequence() {
        let l = limiter(4, 2, 6);
        // Deterministic pseudo-random mix of good/bad/failed completions.
        let mut x = 0x12345u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if l.try_acquire() {
                match x % 3 {
                    0 => l.release(10),
                    1 => l.release(1_000_000),
                    _ => l.release_failure(),
                }
            }
            let limit = l.limit();
            assert!((2..=6).contains(&limit), "limit {limit} escaped [2, 6]");
        }
        assert_eq!(l.inflight(), 0);
    }
}
