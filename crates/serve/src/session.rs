//! Preallocated inference sessions: a frozen (f32) or quantized (int8)
//! model plus per-worker reusable scratch buffers.

use fab_chaos::{ChaosInjector, ChaosSite};
use fab_nn::{FrozenModel, Model};
use fab_quant::QuantModel;
use std::sync::Arc;

/// Which forward path a session runs — reported by
/// [`ServerStats`](crate::ServerStats) so operators can tell which numeric
/// path served their traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// f32 with exact `libm` kernels: bit-identical to
    /// [`Model::predict`](fab_nn::Model::predict).
    Exact,
    /// f32 with the serving-grade fast-math kernels (≤ ~1e-6 of the exact
    /// path) — the default.
    FastMath,
    /// Post-training int8: dense GEMMs run the `fab_tensor::simd` `q8_*`
    /// kernels, f32 at the mixing/normalisation boundaries (see
    /// [`fab_quant`]).
    Int8,
}

impl SessionKind {
    /// Short lower-case name (`exact` / `fastmath` / `int8`), as recorded
    /// in stats and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            SessionKind::Exact => "exact",
            SessionKind::FastMath => "fastmath",
            SessionKind::Int8 => "int8",
        }
    }
}

/// The model variant behind a session.
#[derive(Debug, Clone)]
enum SessionModel {
    F32(FrozenModel),
    Int8(QuantModel),
}

/// A tape-free inference session around a [`FrozenModel`] or a
/// [`QuantModel`].
///
/// The session is immutable and `Send + Sync`: one session is shared by
/// every worker of a [`crate::Server`], while each worker owns a private
/// [`SessionScratch`] whose staging buffers are reused across batches. Both
/// paths guarantee batch invariance — a request's logits are bit-identical
/// whatever batch it rides in (see [`fab_nn::frozen`] and [`fab_quant`]) —
/// so the dynamic batcher serves either transparently.
#[derive(Debug, Clone)]
pub struct InferenceSession {
    model: SessionModel,
    /// Fault injection: a marker token id that makes any forward pass
    /// containing it panic (see [`InferenceSession::with_panic_on_token`]).
    panic_token: Option<usize>,
    /// Fault injection: the shared chaos schedule consulted at the top of
    /// every forward pass (see [`InferenceSession::with_chaos`]).
    chaos: Option<Arc<ChaosInjector>>,
}

impl InferenceSession {
    /// Freezes `model`'s current weights into a new f32 session with the
    /// serving-grade fast-math kernels enabled: logits stay within ~1e-6 of
    /// [`Model::predict`](fab_nn::Model::predict) (see
    /// [`fab_tensor::fastmath`]) and remain bit-invariant to batch
    /// composition and thread count. Use [`InferenceSession::exact`] for
    /// bit-identity with the tape path, [`InferenceSession::quantized`] for
    /// the int8 path.
    pub fn new(model: &Model) -> Self {
        Self {
            model: SessionModel::F32(model.freeze().with_fast_math(true)),
            panic_token: None,
            chaos: None,
        }
    }

    /// Freezes `model` with the exact `libm` kernels: logits are
    /// bit-identical to [`Model::predict`](fab_nn::Model::predict), at
    /// roughly 40% lower single-core throughput than [`InferenceSession::new`].
    pub fn exact(model: &Model) -> Self {
        Self { model: SessionModel::F32(model.freeze()), panic_token: None, chaos: None }
    }

    /// Wraps an already-frozen model (honouring its fast-math setting).
    pub fn from_frozen(model: FrozenModel) -> Self {
        Self { model: SessionModel::F32(model), panic_token: None, chaos: None }
    }

    /// Wraps a post-training-quantized model: the server then runs int8
    /// GEMMs on every dense linear layer (see [`fab_quant`] for the
    /// calibration workflow and accuracy policy).
    pub fn quantized(model: QuantModel) -> Self {
        Self { model: SessionModel::Int8(model), panic_token: None, chaos: None }
    }

    /// Fault injection for tests and benchmarks: any forward pass whose
    /// input contains `token` panics, exercising the server's batch
    /// isolation, `batch_panics` accounting, and worker supervision. Never
    /// enable this on a production profile.
    pub fn with_panic_on_token(mut self, token: usize) -> Self {
        self.panic_token = Some(token);
        self
    }

    /// The configured fault-injection marker token, if any.
    pub fn panic_token(&self) -> Option<usize> {
        self.panic_token
    }

    /// Fault injection for tests and benchmarks: consult `chaos`'s seeded
    /// schedule at the top of every forward pass — a `slow_forward` fire
    /// stretches the pass by the configured delay, a `panic_forward` fire
    /// panics it (exercising batch isolation and circuit breakers). Like
    /// [`InferenceSession::with_panic_on_token`], never enable this on a
    /// production profile.
    pub fn with_chaos(mut self, chaos: Arc<ChaosInjector>) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Draws the forward-pass chaos sites: one `slow_forward` and one
    /// `panic_forward` decision per forward entry (single or batched).
    fn chaos_forward(&self) {
        let Some(chaos) = &self.chaos else { return };
        if let Some(delay) = chaos.stall(ChaosSite::SlowForward) {
            std::thread::sleep(delay);
        }
        if chaos.fires(ChaosSite::PanicForward) {
            panic!("fault injection: chaos panic_forward fired");
        }
    }

    /// Trips the fault-injection panic when `tokens` carries the marker.
    fn check_panic_token(&self, tokens: &[usize]) {
        if let Some(marker) = self.panic_token {
            assert!(
                !tokens.contains(&marker),
                "fault injection: marker token {marker} in the forward input"
            );
        }
    }

    /// Which forward path this session runs.
    pub fn kind(&self) -> SessionKind {
        match &self.model {
            SessionModel::F32(m) if m.fast_math() => SessionKind::FastMath,
            SessionModel::F32(_) => SessionKind::Exact,
            SessionModel::Int8(_) => SessionKind::Int8,
        }
    }

    /// The underlying frozen model (`None` for int8 sessions).
    pub fn frozen_model(&self) -> Option<&FrozenModel> {
        match &self.model {
            SessionModel::F32(m) => Some(m),
            SessionModel::Int8(_) => None,
        }
    }

    /// The underlying quantized model (`None` for f32 sessions).
    pub fn quant_model(&self) -> Option<&QuantModel> {
        match &self.model {
            SessionModel::F32(_) => None,
            SessionModel::Int8(m) => Some(m),
        }
    }

    /// Maximum sequence length the session accepts.
    pub fn max_seq(&self) -> usize {
        match &self.model {
            SessionModel::F32(m) => m.max_seq(),
            SessionModel::Int8(m) => m.max_seq(),
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        match &self.model {
            SessionModel::F32(m) => m.num_classes(),
            SessionModel::Int8(m) => m.num_classes(),
        }
    }

    /// Vocabulary size of the served model; token ids must stay below it.
    pub fn vocab_size(&self) -> usize {
        match &self.model {
            SessionModel::F32(m) => m.config().vocab_size,
            SessionModel::Int8(m) => m.config().vocab_size,
        }
    }

    /// Class logits for one sequence (tape-free, unbatched).
    ///
    /// # Panics
    ///
    /// Panics when `tokens` is empty, longer than `max_seq`, or contains an
    /// out-of-vocabulary id.
    pub fn logits(&self, tokens: &[usize]) -> Vec<f32> {
        self.chaos_forward();
        self.check_panic_token(tokens);
        self.logits_raw(tokens)
    }

    /// The forward pass itself, with no fault-injection draws — shared by
    /// [`InferenceSession::logits`] and the per-example fallback of
    /// [`InferenceSession::logits_batch`] so a batch draws the chaos
    /// schedule exactly once whichever route serves it.
    fn logits_raw(&self, tokens: &[usize]) -> Vec<f32> {
        match &self.model {
            SessionModel::F32(m) => m.logits(tokens),
            SessionModel::Int8(m) => m.logits(tokens),
        }
    }

    /// Predicted class for one sequence (tape-free, unbatched).
    pub fn predict_class(&self, tokens: &[usize]) -> usize {
        match &self.model {
            SessionModel::F32(m) => m.predict_class(tokens),
            SessionModel::Int8(m) => m.predict_class(tokens),
        }
    }

    /// Per-example logits for a batch padded to `pad_to`, staging the token
    /// ids through `scratch`'s reusable flat buffer (no per-request
    /// collection, no buffer growth once warmed up).
    ///
    /// # Panics
    ///
    /// Panics when the batch is empty, a sequence is empty or longer than
    /// `pad_to`, `pad_to` exceeds `max_seq`, or a token id is out of
    /// vocabulary.
    pub fn logits_batch(
        &self,
        batch: &[&[usize]],
        pad_to: usize,
        scratch: &mut SessionScratch,
    ) -> Vec<Vec<f32>> {
        // On a single-worker rayon configuration the batched kernels cannot
        // fan rows out, so the wide batch tensors only trade cache locality
        // for nothing; per-example evaluation keeps each forward's working
        // set cache-resident. Either route produces bit-identical logits
        // (both model variants' padding-invariance guarantee), so this is
        // purely a throughput decision.
        self.chaos_forward();
        for tokens in batch {
            self.check_panic_token(tokens);
        }
        if rayon::current_num_threads() <= 1 {
            return batch.iter().map(|tokens| self.logits_raw(tokens)).collect();
        }
        scratch.stage(batch, pad_to);
        match &self.model {
            SessionModel::F32(m) => m.logits_batch_flat(&scratch.tokens, &scratch.lengths, pad_to),
            SessionModel::Int8(m) => m.logits_batch_flat(&scratch.tokens, &scratch.lengths, pad_to),
        }
    }
}

/// Reusable per-worker staging buffers for batched inference.
///
/// Holds the flat padded token buffer and the per-example length list that
/// [`InferenceSession::logits_batch`] feeds to the model; capacity is
/// retained across batches, so a warmed-up worker stages each new batch
/// without heap growth.
#[derive(Debug, Default, Clone)]
pub struct SessionScratch {
    tokens: Vec<usize>,
    lengths: Vec<usize>,
}

impl SessionScratch {
    /// Creates empty scratch (buffers grow to steady-state on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates scratch preallocated for `max_batch` sequences of `pad_to`
    /// tokens.
    pub fn with_capacity(max_batch: usize, pad_to: usize) -> Self {
        Self {
            tokens: Vec::with_capacity(max_batch * pad_to),
            lengths: Vec::with_capacity(max_batch),
        }
    }

    /// Writes `batch` into the flat padded layout expected by
    /// [`fab_nn::FrozenModel::logits_batch_flat`] (padding slots hold 0).
    fn stage(&mut self, batch: &[&[usize]], pad_to: usize) {
        self.tokens.clear();
        self.tokens.resize(batch.len() * pad_to, 0);
        self.lengths.clear();
        for (dst, src) in self.tokens.chunks_mut(pad_to).zip(batch.iter()) {
            let take = src.len().min(pad_to);
            dst[..take].copy_from_slice(&src[..take]);
            self.lengths.push(src.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_nn::{ModelConfig, ModelKind};
    use fab_quant::{quantize_frozen, CalibrationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session() -> (Model, InferenceSession) {
        let mut rng = StdRng::seed_from_u64(77);
        let model = Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng);
        let session = InferenceSession::new(&model);
        (model, session)
    }

    fn quantized_session() -> (Model, InferenceSession) {
        let mut rng = StdRng::seed_from_u64(78);
        let config = ModelConfig::tiny_for_tests();
        let model = Model::new(&config, ModelKind::Transformer, &mut rng);
        let frozen = model.freeze().with_fast_math(true);
        let calib: Vec<Vec<usize>> = (0..8)
            .map(|i| (0..8).map(|j| (i * 5 + j * 3 + 1) % config.vocab_size).collect())
            .collect();
        let quant = quantize_frozen(&frozen, &calib, &CalibrationConfig::default());
        (model, InferenceSession::quantized(quant))
    }

    #[test]
    fn exact_session_logits_match_tape_predict_bit_for_bit() {
        let (model, _) = session();
        let session = InferenceSession::exact(&model);
        assert_eq!(session.kind(), SessionKind::Exact);
        let tokens = vec![1usize, 4, 2, 9, 3];
        assert_eq!(model.predict(&tokens), session.logits(&tokens));
        assert_eq!(model.predict_class(&tokens), session.predict_class(&tokens));
    }

    #[test]
    fn fast_math_session_stays_within_the_logit_budget() {
        let (model, session) = session();
        assert_eq!(session.kind(), SessionKind::FastMath);
        assert!(session.frozen_model().expect("f32 session").fast_math());
        let tokens = vec![1usize, 4, 2, 9, 3, 8, 7];
        let exact = model.predict(&tokens);
        let fast = session.logits(&tokens);
        let max_diff =
            exact.iter().zip(fast.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_diff <= 1e-5, "fast-math logits diverged by {max_diff}");
    }

    #[test]
    fn quantized_session_reports_its_kind_and_serves_batches() {
        let (_model, session) = quantized_session();
        assert_eq!(session.kind(), SessionKind::Int8);
        assert_eq!(session.kind().name(), "int8");
        assert!(session.frozen_model().is_none());
        let quant = session.quant_model().expect("int8 session");
        let mut scratch = SessionScratch::new();
        let batch: Vec<&[usize]> = vec![&[1, 2, 3], &[4, 5, 6, 7]];
        let logits = session.logits_batch(&batch, 8, &mut scratch);
        // The session path must agree bit for bit with the direct model
        // calls, whatever batching route was taken.
        assert_eq!(logits[0], quant.logits(&[1, 2, 3]));
        assert_eq!(logits[1], quant.logits(&[4, 5, 6, 7]));
        assert_eq!(session.predict_class(&[1, 2, 3]), fab_nn::argmax(&logits[0]));
    }

    #[test]
    fn scratch_is_reused_across_batches() {
        let (_model, session) = session();
        let mut scratch = SessionScratch::with_capacity(4, 8);
        let a: Vec<&[usize]> = vec![&[1, 2, 3], &[4, 5]];
        let b: Vec<&[usize]> = vec![&[6, 7, 8, 9]];
        let first = session.logits_batch(&a, 8, &mut scratch);
        let cap = (scratch.tokens.capacity(), scratch.lengths.capacity());
        let second = session.logits_batch(&b, 8, &mut scratch);
        assert_eq!((scratch.tokens.capacity(), scratch.lengths.capacity()), cap);
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 1);
        assert_eq!(first[0], session.logits(&[1, 2, 3]));
        assert_eq!(second[0], session.logits(&[6, 7, 8, 9]));
    }
}
