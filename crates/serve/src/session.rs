//! Preallocated inference sessions: a frozen model plus per-worker reusable
//! scratch buffers.

use fab_nn::{FrozenModel, Model};

/// A tape-free inference session around a [`FrozenModel`].
///
/// The session is immutable and `Send + Sync`: one session is shared by
/// every worker of a [`crate::Server`], while each worker owns a private
/// [`SessionScratch`] whose staging buffers are reused across batches. The
/// forward path never touches the autodiff tape — it runs the PR-1 batched
/// kernels (blocked matmul, `ButterflyMatrix::forward_rows`, the plan-cached
/// FFT) directly, and its logits are bit-identical to
/// [`Model::predict`](fab_nn::Model::predict) for every request regardless
/// of batch composition (see [`fab_nn::frozen`]).
#[derive(Debug, Clone)]
pub struct InferenceSession {
    model: FrozenModel,
}

impl InferenceSession {
    /// Freezes `model`'s current weights into a new session with the
    /// serving-grade fast-math kernels enabled: logits stay within ~1e-6 of
    /// [`Model::predict`](fab_nn::Model::predict) (see
    /// [`fab_tensor::fastmath`]) and remain bit-invariant to batch
    /// composition and thread count. Use [`InferenceSession::exact`] for
    /// bit-identity with the tape path.
    pub fn new(model: &Model) -> Self {
        Self { model: model.freeze().with_fast_math(true) }
    }

    /// Freezes `model` with the exact `libm` kernels: logits are
    /// bit-identical to [`Model::predict`](fab_nn::Model::predict), at
    /// roughly 40% lower single-core throughput than [`InferenceSession::new`].
    pub fn exact(model: &Model) -> Self {
        Self { model: model.freeze() }
    }

    /// Wraps an already-frozen model (honouring its fast-math setting).
    pub fn from_frozen(model: FrozenModel) -> Self {
        Self { model }
    }

    /// The underlying frozen model.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// Maximum sequence length the session accepts.
    pub fn max_seq(&self) -> usize {
        self.model.max_seq()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.model.num_classes()
    }

    /// Vocabulary size of the served model; token ids must stay below it.
    pub fn vocab_size(&self) -> usize {
        self.model.config().vocab_size
    }

    /// Class logits for one sequence (tape-free, unbatched).
    ///
    /// # Panics
    ///
    /// Panics when `tokens` is empty, longer than `max_seq`, or contains an
    /// out-of-vocabulary id.
    pub fn logits(&self, tokens: &[usize]) -> Vec<f32> {
        self.model.logits(tokens)
    }

    /// Predicted class for one sequence (tape-free, unbatched).
    pub fn predict_class(&self, tokens: &[usize]) -> usize {
        self.model.predict_class(tokens)
    }

    /// Per-example logits for a batch padded to `pad_to`, staging the token
    /// ids through `scratch`'s reusable flat buffer (no per-request
    /// collection, no buffer growth once warmed up).
    ///
    /// # Panics
    ///
    /// Panics when the batch is empty, a sequence is empty or longer than
    /// `pad_to`, `pad_to` exceeds `max_seq`, or a token id is out of
    /// vocabulary.
    pub fn logits_batch(
        &self,
        batch: &[&[usize]],
        pad_to: usize,
        scratch: &mut SessionScratch,
    ) -> Vec<Vec<f32>> {
        // On a single-worker rayon configuration the batched kernels cannot
        // fan rows out, so the wide batch tensors only trade cache locality
        // for nothing; per-example evaluation keeps each forward's working
        // set cache-resident. Either route produces bit-identical logits
        // (the frozen batch path's padding-invariance guarantee), so this is
        // purely a throughput decision.
        if rayon::current_num_threads() <= 1 {
            return batch.iter().map(|tokens| self.model.logits(tokens)).collect();
        }
        scratch.stage(batch, pad_to);
        self.model.logits_batch_flat(&scratch.tokens, &scratch.lengths, pad_to)
    }
}

/// Reusable per-worker staging buffers for batched inference.
///
/// Holds the flat padded token buffer and the per-example length list that
/// [`InferenceSession::logits_batch`] feeds to the frozen model; capacity is
/// retained across batches, so a warmed-up worker stages each new batch
/// without heap growth.
#[derive(Debug, Default, Clone)]
pub struct SessionScratch {
    tokens: Vec<usize>,
    lengths: Vec<usize>,
}

impl SessionScratch {
    /// Creates empty scratch (buffers grow to steady-state on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates scratch preallocated for `max_batch` sequences of `pad_to`
    /// tokens.
    pub fn with_capacity(max_batch: usize, pad_to: usize) -> Self {
        Self {
            tokens: Vec::with_capacity(max_batch * pad_to),
            lengths: Vec::with_capacity(max_batch),
        }
    }

    /// Writes `batch` into the flat padded layout expected by
    /// [`fab_nn::FrozenModel::logits_batch_flat`] (padding slots hold 0).
    fn stage(&mut self, batch: &[&[usize]], pad_to: usize) {
        self.tokens.clear();
        self.tokens.resize(batch.len() * pad_to, 0);
        self.lengths.clear();
        for (dst, src) in self.tokens.chunks_mut(pad_to).zip(batch.iter()) {
            let take = src.len().min(pad_to);
            dst[..take].copy_from_slice(&src[..take]);
            self.lengths.push(src.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_nn::{ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session() -> (Model, InferenceSession) {
        let mut rng = StdRng::seed_from_u64(77);
        let model = Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng);
        let session = InferenceSession::new(&model);
        (model, session)
    }

    #[test]
    fn exact_session_logits_match_tape_predict_bit_for_bit() {
        let (model, _) = session();
        let session = InferenceSession::exact(&model);
        let tokens = vec![1usize, 4, 2, 9, 3];
        assert_eq!(model.predict(&tokens), session.logits(&tokens));
        assert_eq!(model.predict_class(&tokens), session.predict_class(&tokens));
    }

    #[test]
    fn fast_math_session_stays_within_the_logit_budget() {
        let (model, session) = session();
        assert!(session.model().fast_math());
        let tokens = vec![1usize, 4, 2, 9, 3, 8, 7];
        let exact = model.predict(&tokens);
        let fast = session.logits(&tokens);
        let max_diff =
            exact.iter().zip(fast.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_diff <= 1e-5, "fast-math logits diverged by {max_diff}");
    }

    #[test]
    fn scratch_is_reused_across_batches() {
        let (_model, session) = session();
        let mut scratch = SessionScratch::with_capacity(4, 8);
        let a: Vec<&[usize]> = vec![&[1, 2, 3], &[4, 5]];
        let b: Vec<&[usize]> = vec![&[6, 7, 8, 9]];
        let first = session.logits_batch(&a, 8, &mut scratch);
        let cap = (scratch.tokens.capacity(), scratch.lengths.capacity());
        let second = session.logits_batch(&b, 8, &mut scratch);
        assert_eq!((scratch.tokens.capacity(), scratch.lengths.capacity()), cap);
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 1);
        assert_eq!(first[0], session.logits(&[1, 2, 3]));
        assert_eq!(second[0], session.logits(&[6, 7, 8, 9]));
    }
}
