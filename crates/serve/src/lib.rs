//! # fab-serve
//!
//! The serving subsystem of the FABNet reproduction: a dynamic-batching
//! inference runtime that turns the PR-1 parallel kernels into sustained
//! request throughput.
//!
//! Three pieces compose the runtime:
//!
//! - [`InferenceSession`] — a trained model frozen into a tape-free,
//!   `Send + Sync` forward path ([`fab_nn::FrozenModel`]) shared by all
//!   workers, each of which stages batches through its own reusable
//!   [`SessionScratch`] buffers.
//! - [`Server`] — a bounded MPSC request queue with admission control,
//!   drained into micro-batches by a pool of std-thread workers; knobs live
//!   in [`ServeConfig`] (`max_batch`, `max_wait_us`, `queue_capacity`,
//!   `num_workers`, `buckets`). Batch formation is a pluggable
//!   [`BatchPolicy`]: [`Server::start`] installs the sequence-length
//!   [`LengthBucketPolicy`] (padded to the longest sequence in the batch by
//!   default, to the bucket boundary with `pad_to_bucket_boundary`), and
//!   [`Server::start_with_policy`] accepts any other scheduler — e.g.
//!   fab-fleet's tenant-aware weighted-fair policy over [`RequestQos`]
//!   labels ([`ServerHandle::submit_with_qos`]).
//! - [`ServerStats`] — aggregate metrics (throughput, p50/p95/p99 latency
//!   histograms, queue depth, batch occupancy) plus per-request metrics on
//!   every [`Prediction`].
//!
//! Batching never changes results: whatever batch a request rides in, its
//! logits are bit-identical to the same session answering it alone (see
//! [`fab_nn::frozen`] for why). Relative to the tape path,
//! [`InferenceSession::exact`] is bit-identical to `Model::predict`, while
//! the default [`InferenceSession::new`] enables the serving-grade
//! fast-math kernels and stays within ~1e-6 of it.
//!
//! The runtime is built for partial failure (PR 6): per-request deadlines
//! shed expired work before any forward pass
//! ([`ServerHandle::submit_with_deadline`], [`ServeError::DeadlineExceeded`]),
//! admission control rejects with a drain-rate-derived
//! [`retry_after_ms`](ServeError::Overloaded) hint, a panicking batched
//! forward is retried per-request so one poisonous input cannot fail its
//! batchmates, queue locks recover from poisoning, a supervisor respawns
//! dead worker threads with exponential backoff, and graceful shutdown
//! answers every admitted request — inline on the shutting-down thread if
//! every worker died. Fault-injection hooks
//! ([`Server::inject_worker_exit`],
//! [`InferenceSession::with_panic_on_token`]) let tests and benches prove
//! all of it.
//!
//! Sessions come in three kinds ([`SessionKind`], reported by
//! [`ServerStats::session_kind`]): `exact` and `fastmath` run the f32
//! frozen model, `int8` ([`InferenceSession::quantized`]) runs a
//! post-training-quantized [`fab_quant::QuantModel`] whose dense GEMMs use
//! the int8 SIMD kernels — same batcher, same invariance guarantee,
//! substantially higher throughput on GEMM-dominated models.
//!
//! # Example
//!
//! ```rust
//! use fab_nn::{Model, ModelConfig, ModelKind};
//! use fab_serve::{InferenceSession, ServeConfig, Server};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng);
//! // `InferenceSession::exact` is bit-identical to `model.predict`;
//! // `InferenceSession::new` enables the ~1e-6 fast-math serving kernels.
//! let server = Server::start(InferenceSession::exact(&model), ServeConfig::default());
//! let handle = server.handle();
//! let prediction = handle.infer(vec![1, 2, 3, 4]).unwrap();
//! assert_eq!(prediction.logits, model.predict(&[1, 2, 3, 4]));
//! server.shutdown();
//! ```

#![warn(missing_docs)]

mod limiter;
mod metrics;
pub mod policy;
mod server;
mod session;

pub use limiter::{AimdConfig, AimdLimiter};
pub use metrics::{HistogramSummary, LatencyHistogram, ServerStats};
pub use policy::{
    BatchDecision, BatchPolicy, LengthBucketPolicy, Priority, QueuedRequest, RequestQos,
};
pub use server::{PendingPrediction, Prediction, ServeConfig, ServeError, Server, ServerHandle};
pub use session::{InferenceSession, SessionKind, SessionScratch};
