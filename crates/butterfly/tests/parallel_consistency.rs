//! PR-1 property tests: the batched butterfly and FFT kernels must agree
//! with the per-vector seed path across odd row counts and worker-thread
//! counts, including `RAYON_NUM_THREADS=1`.

use fab_butterfly::fft::{fft, fft2_real};
use fab_butterfly::{ButterflyMatrix, Complex};
use fab_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serialises tests that mutate `RAYON_NUM_THREADS`, which is process-global.
static THREAD_ENV_LOCK: Mutex<()> = Mutex::new(());

fn filled(rows: usize, n: usize, salt: usize) -> Tensor {
    Tensor::from_vec(
        (0..rows * n).map(|i| (((i * 29 + salt * 13) % 991) as f32) * 0.011 - 5.4).collect(),
        &[rows, n],
    )
    .expect("valid shape")
}

/// Reference 2-D real FFT built from 1-D transforms and an explicit strided
/// column walk (the seed's formulation).
fn fft2_real_reference(x: &[f32], seq: usize, hidden: usize) -> Vec<f32> {
    let mut grid: Vec<Complex> = x.iter().map(|&v| Complex::from(v)).collect();
    for r in 0..seq {
        let row: Vec<Complex> = fft(&grid[r * hidden..(r + 1) * hidden]);
        grid[r * hidden..(r + 1) * hidden].copy_from_slice(&row);
    }
    for c in 0..hidden {
        let col: Vec<Complex> = (0..seq).map(|r| grid[r * hidden + c]).collect();
        let col = fft(&col);
        for (r, v) in col.into_iter().enumerate() {
            grid[r * hidden + c] = v;
        }
    }
    grid.iter().map(|v| v.re).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_forward_rows_matches_per_vector_forward(rows in 1usize..33, log_n in 1u32..7, seed in 0u64..500) {
        let n = 1usize << log_n;
        let mut rng = StdRng::seed_from_u64(seed);
        let bfly = ButterflyMatrix::random(n, &mut rng).unwrap();
        let x = filled(rows, n, seed as usize);
        let batched = bfly.forward_rows(&x);
        for r in 0..rows {
            let row: Vec<f32> = x.as_slice()[r * n..(r + 1) * n].to_vec();
            let reference = bfly.forward(&row);
            let got = &batched.as_slice()[r * n..(r + 1) * n];
            prop_assert!(got == reference.as_slice(), "row {r} diverged for {rows}x{n}");
        }
    }

    #[test]
    fn batched_backward_rows_matches_per_vector_backward(rows in 1usize..17, log_n in 1u32..6, seed in 0u64..500) {
        let n = 1usize << log_n;
        let mut rng = StdRng::seed_from_u64(seed);
        let bfly = ButterflyMatrix::random(n, &mut rng).unwrap();
        let x = filled(rows, n, seed as usize);
        let g = filled(rows, n, seed as usize + 1);
        let (grad_x, grad_w) = bfly.backward_rows(&x, &g);
        let mut grad_w_reference = Tensor::zeros(&[bfly.num_stages(), 2 * n]);
        for r in 0..rows {
            let xrow = &x.as_slice()[r * n..(r + 1) * n];
            let grow = &g.as_slice()[r * n..(r + 1) * n];
            let (gx, gw) = bfly.backward(xrow, grow);
            prop_assert!(
                grad_x.as_slice()[r * n..(r + 1) * n] == gx[..],
                "input gradient row {r} diverged"
            );
            grad_w_reference = grad_w_reference.add(&gw);
        }
        // Weight gradients are reduced chunk-wise, so summation order (and
        // hence the last float bits) may differ from the running per-row sum.
        prop_assert!(grad_w.allclose(&grad_w_reference, 1e-4), "weight gradients diverged");
    }

    #[test]
    fn parallel_fft2_matches_strided_reference(log_seq in 2u32..6, log_hid in 1u32..6, seed in 0u64..200) {
        let (seq, hidden) = (1usize << log_seq, 1usize << log_hid);
        let x: Vec<f32> = (0..seq * hidden)
            .map(|i| (((i * 37 + seed as usize * 11) % 613) as f32) * 0.017 - 5.2)
            .collect();
        let fast = fft2_real(&x, seq, hidden);
        let reference = fft2_real_reference(&x, seq, hidden);
        for (a, b) in fast.iter().zip(reference.iter()) {
            prop_assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }
}

#[test]
fn large_batches_cross_the_parallel_threshold_and_stay_exact() {
    // 301 rows x 128 wide crosses the 16k-element parallel threshold with an
    // odd, non-chunk-aligned row count.
    let mut rng = StdRng::seed_from_u64(99);
    let bfly = ButterflyMatrix::random(128, &mut rng).unwrap();
    let x = filled(301, 128, 1);
    let batched = bfly.forward_rows(&x);
    for r in [0usize, 1, 150, 299, 300] {
        let row = x.as_slice()[r * 128..(r + 1) * 128].to_vec();
        assert!(batched.as_slice()[r * 128..(r + 1) * 128] == bfly.forward(&row)[..]);
    }

    let big: Vec<f32> = (0..128 * 128).map(|i| ((i % 331) as f32) * 0.01 - 1.6).collect();
    let fast = fft2_real(&big, 128, 128);
    let reference = fft2_real_reference(&big, 128, 128);
    for (a, b) in fast.iter().zip(reference.iter()) {
        assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()));
    }
}

#[test]
fn batched_kernels_match_with_a_single_rayon_thread() {
    let _guard = THREAD_ENV_LOCK.lock().expect("env lock");
    let mut rng = StdRng::seed_from_u64(7);
    let bfly = ButterflyMatrix::random(64, &mut rng).unwrap();
    let x = filled(260, 64, 2);
    let g = filled(260, 64, 3);

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let forward_serial = bfly.forward_rows(&x);
    let (gx_serial, gw_serial) = bfly.backward_rows(&x, &g);
    std::env::set_var("RAYON_NUM_THREADS", "5");
    let forward_parallel = bfly.forward_rows(&x);
    let (gx_parallel, gw_parallel) = bfly.backward_rows(&x, &g);
    std::env::remove_var("RAYON_NUM_THREADS");

    assert!(forward_serial == forward_parallel, "thread count changed forward_rows");
    assert!(gx_serial == gx_parallel, "thread count changed input gradients");
    // Chunk boundaries are thread-count independent, so even the reduced
    // weight gradients must match exactly.
    assert!(gw_serial == gw_parallel, "thread count changed weight gradients");
}
