//! PR-4 SIMD consistency for the butterfly stage kernels: the dispatched
//! forward/backward stages must stay bit-identical to the seed reference
//! kernels on every backend (the SIMD lanes run mul-then-add in the same
//! order as the scalar loops), and the analytic gradients flowing through
//! the SIMD backward stages must survive gradcheck.
//!
//! Tests serialise on one lock because the forced backend is process-global.

use fab_butterfly::{butterfly_linear_op, butterfly_linear_padded_op, ButterflyMatrix};
use fab_tensor::simd::{self, Backend};
use fab_tensor::{check_gradient, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let prev = simd::backend();
    simd::force_backend(b);
    let r = f();
    simd::force_backend(prev);
    r
}

fn filled(shape: &[usize], salt: usize) -> Tensor {
    let volume: usize = shape.iter().product();
    Tensor::from_vec(
        (0..volume).map(|i| (((i * 53 + salt * 19) % 331) as f32) * 0.009 - 1.5).collect(),
        shape,
    )
    .expect("valid shape")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simd_forward_and_backward_are_bit_identical_to_scalar_and_reference(
        log_n in 1usize..8, rows in 1usize..9, seed in 0u64..500
    ) {
        let _g = lock();
        let n = 1 << log_n;
        let bfly = ButterflyMatrix::random(n, &mut StdRng::seed_from_u64(seed)).expect("size");
        let x = filled(&[rows, n], 1);
        let grad = filled(&[rows, n], 2);
        let run = |backend| {
            with_backend(backend, || {
                (bfly.forward_rows(&x), bfly.backward_rows(&x, &grad))
            })
        };
        let scalar = run(Backend::Scalar);
        let native = run(simd::default_backend());
        prop_assert!(scalar == native, "butterfly stages diverged across backends at n={n}");
        // And both match the seed reference kernels bit for bit.
        let reference = bfly.backward_rows_reference(&x, &grad);
        prop_assert!(native.1 == reference, "specialized backward diverged from the seed oracle");
    }

    #[test]
    fn gradcheck_through_simd_backward_stages(log_n in 2usize..6, rows in 1usize..4) {
        let _g = lock();
        if !simd::default_backend().is_simd() { return Ok(()); }
        let n = 1 << log_n;
        let bfly = ButterflyMatrix::random(n, &mut StdRng::seed_from_u64(7)).expect("size");
        let w = bfly.to_weight_tensor();
        let x = filled(&[rows, n], 3);
        // d/dx through the SIMD stage backward.
        prop_assert!(check_gradient(
            |tape, v| {
                let wv = tape.leaf(w.clone());
                let y = butterfly_linear_op(tape, v, wv);
                tape.sum(y)
            },
            &x,
            1e-2
        ));
        // d/dw through the SIMD stage backward (weights as the checked leaf).
        prop_assert!(check_gradient(
            |tape, v| {
                let xv = tape.leaf(x.clone());
                let y = butterfly_linear_op(tape, xv, v);
                tape.sum(y)
            },
            &w,
            1e-2
        ));
    }
}

#[test]
fn gradcheck_through_simd_padded_butterfly() {
    let _g = lock();
    // The fused pad + truncate op drives the padded SIMD backward stages.
    let n = 16usize;
    let (d_in, d_out) = (11usize, 9usize);
    let bfly = ButterflyMatrix::random(n, &mut StdRng::seed_from_u64(11)).expect("size");
    let w = bfly.to_weight_tensor();
    let x = filled(&[3, d_in], 4);
    assert!(check_gradient(
        |tape, v| {
            let wv = tape.leaf(w.clone());
            let y = butterfly_linear_padded_op(tape, v, wv, d_out);
            tape.sum(y)
        },
        &x,
        1e-2
    ));
}
