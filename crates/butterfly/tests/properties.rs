//! Property-based tests of the FFT and butterfly kernels.

use fab_butterfly::fft::{dft_naive, fft, ifft};
use fab_butterfly::{fourier_mix, ButterflyMatrix, Complex};
use fab_tensor::Tensor;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn complex_signal(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1.0f32..1.0, -1.0f32..1.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_matches_naive_dft(x in complex_signal(32)) {
        let fast = fft(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((*a - *b).abs() < 1e-2);
        }
    }

    #[test]
    fn fft_roundtrips_through_inverse(x in complex_signal(64)) {
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!((*a - *b).abs() < 1e-3);
        }
    }

    #[test]
    fn butterfly_forward_matches_dense_expansion(seed in 0u64..1000, xs in prop::collection::vec(-1.0f32..1.0, 16)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = ButterflyMatrix::random(16, &mut rng).unwrap();
        let dense = b.to_dense();
        let fast = b.forward(&xs);
        for (i, &f) in fast.iter().enumerate() {
            let slow: f32 = (0..16).map(|j| dense.at(i, j) * xs[j]).sum();
            prop_assert!((slow - f).abs() < 1e-3);
        }
    }

    #[test]
    fn butterfly_weight_tensor_roundtrips(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = ButterflyMatrix::random(32, &mut rng).unwrap();
        let restored = ButterflyMatrix::from_weight_tensor(&b.to_weight_tensor()).unwrap();
        prop_assert_eq!(b, restored);
    }

    #[test]
    fn butterfly_input_gradient_is_the_transpose_map(seed in 0u64..1000, g in prop::collection::vec(-1.0f32..1.0, 8)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let x = vec![0.0f32; 8];
        let (grad_x, _) = b.backward(&x, &g);
        let dense = b.to_dense();
        for (j, &gx) in grad_x.iter().enumerate() {
            let expected: f32 = (0..8).map(|i| dense.at(i, j) * g[i]).sum();
            prop_assert!((expected - gx).abs() < 1e-3);
        }
    }

    #[test]
    fn fourier_mix_is_linear(a in prop::collection::vec(-1.0f32..1.0, 32), b in prop::collection::vec(-1.0f32..1.0, 32)) {
        let ta = Tensor::from_vec(a.clone(), &[8, 4]).unwrap();
        let tb = Tensor::from_vec(b.clone(), &[8, 4]).unwrap();
        let lhs = fourier_mix(&ta.add(&tb));
        let rhs = fourier_mix(&ta).add(&fourier_mix(&tb));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }
}
