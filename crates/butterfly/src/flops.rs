//! Floating-point operation counts for the layer types studied in the paper.
//!
//! These counters drive the reproduction of Fig. 1 (operation breakdown of
//! attention vs. linear layers) and Fig. 17 (FLOP reduction of FABNet over
//! the vanilla Transformer and FNet). Multiply and add are counted as
//! separate operations, the convention used when reporting GOPs in the paper.

/// FLOPs of a dense linear layer mapping `[rows, d_in] -> [rows, d_out]`.
pub fn dense_linear_flops(rows: usize, d_in: usize, d_out: usize) -> u64 {
    2 * rows as u64 * d_in as u64 * d_out as u64
}

/// FLOPs of a butterfly linear layer of (padded) size `n` applied to `rows`
/// rows: `log2 n` stages of `n/2` butterflies, each 4 multiplies + 2 adds.
pub fn butterfly_linear_flops(rows: usize, n: usize) -> u64 {
    let stages = (n as f64).log2().ceil() as u64;
    rows as u64 * stages * (n as u64 / 2) * 6
}

/// FLOPs of a radix-2 complex FFT of length `n`: `n/2 log2 n` butterflies,
/// each one complex multiply (6 real ops) and two complex adds (4 real ops).
pub fn fft_flops(n: usize) -> u64 {
    let stages = (n as f64).log2().ceil() as u64;
    stages * (n as u64 / 2) * 10
}

/// FLOPs of the FNet/FBfly 2-D Fourier mixing over a `[seq, hidden]` tile:
/// one FFT per row plus one FFT per column.
pub fn fourier_mix_flops(seq: usize, hidden: usize) -> u64 {
    seq as u64 * fft_flops(hidden) + hidden as u64 * fft_flops(seq)
}

/// FLOPs of the attention score/value computation (excluding the Q/K/V and
/// output projections): `Q·K^T`, softmax and `S·V` over all heads.
pub fn attention_core_flops(seq: usize, hidden: usize) -> u64 {
    let qk = 2 * seq as u64 * seq as u64 * hidden as u64;
    let softmax = 5 * seq as u64 * seq as u64;
    let sv = 2 * seq as u64 * seq as u64 * hidden as u64;
    qk + softmax + sv
}

/// FLOPs of the four dense projections (Q, K, V and output) of a multi-head
/// attention layer.
pub fn attention_projection_flops(seq: usize, hidden: usize) -> u64 {
    4 * dense_linear_flops(seq, hidden, hidden)
}

/// FLOPs of a dense feed-forward network with expansion ratio `r`.
pub fn ffn_flops(seq: usize, hidden: usize, r: usize) -> u64 {
    dense_linear_flops(seq, hidden, hidden * r) + dense_linear_flops(seq, hidden * r, hidden)
}

/// FLOPs of layer normalisation over `[seq, hidden]` (mean, variance,
/// normalise, scale and shift ≈ 8 ops per element).
pub fn layer_norm_flops(seq: usize, hidden: usize) -> u64 {
    8 * seq as u64 * hidden as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_is_asymptotically_cheaper_than_dense() {
        let n = 1024;
        let dense = dense_linear_flops(1, n, n);
        let bfly = butterfly_linear_flops(1, n);
        assert!(dense / bfly > 30, "expected >30x reduction, got {}", dense / bfly);
    }

    #[test]
    fn attention_core_scales_quadratically_with_sequence() {
        let short = attention_core_flops(128, 64);
        let long = attention_core_flops(1024, 64);
        let ratio = long as f64 / short as f64;
        assert!((ratio - 64.0).abs() / 64.0 < 0.05, "ratio {ratio}");
    }

    #[test]
    fn fourier_mix_scales_n_log_n() {
        let a = fourier_mix_flops(256, 256) as f64;
        let b = fourier_mix_flops(512, 256) as f64;
        // Doubling the sequence should just over double the cost, far below 4x.
        assert!(b / a > 2.0 && b / a < 2.5, "ratio {}", b / a);
    }

    #[test]
    fn linear_layers_dominate_short_sequences() {
        // Fig. 1: for short sequences the FFN + projections dominate attention core.
        let seq = 128;
        let hidden = 768;
        let linear = attention_projection_flops(seq, hidden) + ffn_flops(seq, hidden, 4);
        let attn = attention_core_flops(seq, hidden);
        assert!(linear > 4 * attn);
    }

    #[test]
    fn attention_dominates_long_sequences() {
        // Fig. 1: for long sequences the attention core dominates.
        let seq = 8192;
        let hidden = 768;
        let linear = attention_projection_flops(seq, hidden) + ffn_flops(seq, hidden, 4);
        let attn = attention_core_flops(seq, hidden);
        assert!(attn > linear);
    }
}
