//! Learnable butterfly factor matrices and the butterfly linear transform.
//!
//! A butterfly matrix of size `N = 2^L` is the product of `L` sparse butterfly
//! factor matrices; factor `s` (with half-block size `2^s`) pairs elements at
//! distance `2^s` inside blocks of size `2^{s+1}` and mixes each pair through
//! a trainable 2×2 matrix (the paper's Section II-B). Multiplying a vector by
//! the full butterfly matrix therefore costs `O(N log N)` instead of `O(N^2)`.

use crate::{log2_exact, ButterflyError};
use fab_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// One butterfly factor (stage): a block-diagonal matrix of 2×2 blocks of
/// diagonal matrices with half-block size `half`.
///
/// For pair index `p`, the paired element indices are
/// `i1 = (p / half) * 2 * half + (p % half)` and `i2 = i1 + half`, and the
/// stage computes
///
/// ```text
/// out[i1] = w1[p] * in[i1] + w2[p] * in[i2]
/// out[i2] = w3[p] * in[i1] + w4[p] * in[i2]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyStage {
    half: usize,
    w1: Vec<f32>,
    w2: Vec<f32>,
    w3: Vec<f32>,
    w4: Vec<f32>,
}

impl ButterflyStage {
    /// Creates an identity stage (`w1 = w4 = 1`, `w2 = w3 = 0`) for a
    /// transform of size `n`.
    pub fn identity(n: usize, half: usize) -> Self {
        let pairs = n / 2;
        Self {
            half,
            w1: vec![1.0; pairs],
            w2: vec![0.0; pairs],
            w3: vec![0.0; pairs],
            w4: vec![1.0; pairs],
        }
    }

    /// Half-block size (`2^s` for stage `s`).
    pub fn half(&self) -> usize {
        self.half
    }

    /// Number of butterfly pairs in this stage.
    pub fn pairs(&self) -> usize {
        self.w1.len()
    }

    /// Returns the `(i1, i2)` element indices paired by butterfly `p`.
    pub fn pair_indices(&self, p: usize) -> (usize, usize) {
        let block = p / self.half;
        let offset = p % self.half;
        let i1 = block * 2 * self.half + offset;
        (i1, i1 + self.half)
    }

    /// Returns the four twiddle weights of pair `p` as `(w1, w2, w3, w4)`.
    pub fn weights(&self, p: usize) -> (f32, f32, f32, f32) {
        (self.w1[p], self.w2[p], self.w3[p], self.w4[p])
    }

    /// Applies the stage to a vector in place.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != 2 * pairs`.
    pub fn apply_in_place(&self, x: &mut [f32]) {
        assert_eq!(x.len(), 2 * self.pairs(), "stage input length mismatch");
        for p in 0..self.pairs() {
            let (i1, i2) = self.pair_indices(p);
            let a = x[i1];
            let b = x[i2];
            x[i1] = self.w1[p] * a + self.w2[p] * b;
            x[i2] = self.w3[p] * a + self.w4[p] * b;
        }
    }
}

/// A trainable butterfly matrix of power-of-two size `n`, stored as its
/// `log2(n)` sparse factors.
///
/// # Example
///
/// ```rust
/// use fab_butterfly::ButterflyMatrix;
/// let b = ButterflyMatrix::identity(8);
/// let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// assert_eq!(b.forward(&x), x);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyMatrix {
    n: usize,
    stages: Vec<ButterflyStage>,
}

impl ButterflyMatrix {
    /// Creates the identity butterfly matrix of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::NotPowerOfTwo`] when `n` is not a power of
    /// two greater than or equal to 2.
    pub fn try_identity(n: usize) -> Result<Self, ButterflyError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(ButterflyError::NotPowerOfTwo { size: n });
        }
        let log_n = log2_exact(n);
        let stages = (0..log_n).map(|s| ButterflyStage::identity(n, 1 << s)).collect();
        Ok(Self { n, stages })
    }

    /// Creates the identity butterfly matrix of size `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two greater than or equal to 2.
    pub fn identity(n: usize) -> Self {
        Self::try_identity(n).expect("butterfly size must be a power of two")
    }

    /// Creates a random butterfly matrix whose expansion approximately
    /// preserves activation scale (each 2×2 block is sampled near a rotation).
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::NotPowerOfTwo`] when `n` is invalid.
    pub fn random(n: usize, rng: &mut StdRng) -> Result<Self, ButterflyError> {
        let mut m = Self::try_identity(n)?;
        for stage in &mut m.stages {
            for p in 0..stage.pairs() {
                // Sample close to an orthonormal 2x2 block: rotation plus noise.
                let theta: f32 = rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI);
                let noise = 0.05f32;
                stage.w1[p] = theta.cos() + rng.gen_range(-noise..noise);
                stage.w2[p] = -theta.sin() + rng.gen_range(-noise..noise);
                stage.w3[p] = theta.sin() + rng.gen_range(-noise..noise);
                stage.w4[p] = theta.cos() + rng.gen_range(-noise..noise);
            }
        }
        Ok(m)
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of butterfly stages (`log2 n`).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The individual butterfly factors, ordered from smallest to largest
    /// half-block size (application order).
    pub fn stages(&self) -> &[ButterflyStage] {
        &self.stages
    }

    /// Total number of trainable parameters: `2 n log2 n`.
    pub fn num_params(&self) -> usize {
        2 * self.n * self.num_stages()
    }

    /// Applies the butterfly matrix to a vector.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.size()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n, "butterfly input length mismatch");
        let mut v = x.to_vec();
        for stage in &self.stages {
            stage.apply_in_place(&mut v);
        }
        v
    }

    /// Applies the butterfly matrix to every row of a `[rows, n]` tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D with `n` columns.
    pub fn forward_rows(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.n, "butterfly row width mismatch");
        let rows = x.rows();
        let mut out = Tensor::zeros(&[rows, self.n]);
        for r in 0..rows {
            let row: Vec<f32> = (0..self.n).map(|c| x.at(r, c)).collect();
            let y = self.forward(&row);
            for c in 0..self.n {
                out.set(r, c, y[c]);
            }
        }
        out
    }

    /// Applies the butterfly matrix, also returning the input of every stage
    /// (needed by the backward pass).
    pub fn forward_with_intermediates(&self, x: &[f32]) -> (Vec<f32>, Vec<Vec<f32>>) {
        assert_eq!(x.len(), self.n, "butterfly input length mismatch");
        let mut intermediates = Vec::with_capacity(self.stages.len());
        let mut v = x.to_vec();
        for stage in &self.stages {
            intermediates.push(v.clone());
            stage.apply_in_place(&mut v);
        }
        (v, intermediates)
    }

    /// Backward pass for one vector: given the gradient with respect to the
    /// output, returns the gradient with respect to the input and the
    /// gradient with respect to the weight tensor (same layout as
    /// [`ButterflyMatrix::to_weight_tensor`]).
    pub fn backward(&self, x: &[f32], grad_out: &[f32]) -> (Vec<f32>, Tensor) {
        let (_, intermediates) = self.forward_with_intermediates(x);
        let mut grad = grad_out.to_vec();
        let mut grad_w = Tensor::zeros(&[self.num_stages(), 2 * self.n]);
        let half_n = self.n / 2;
        for (s, stage) in self.stages.iter().enumerate().rev() {
            let input = &intermediates[s];
            let mut grad_in = vec![0.0f32; self.n];
            for p in 0..stage.pairs() {
                let (i1, i2) = stage.pair_indices(p);
                let (g1, g2) = (grad[i1], grad[i2]);
                let (a, b) = (input[i1], input[i2]);
                // Weight gradients.
                let base = grad_w.at(s, p);
                grad_w.set(s, p, base + g1 * a);
                let v = grad_w.at(s, half_n + p) + g1 * b;
                grad_w.set(s, half_n + p, v);
                let v = grad_w.at(s, 2 * half_n + p) + g2 * a;
                grad_w.set(s, 2 * half_n + p, v);
                let v = grad_w.at(s, 3 * half_n + p) + g2 * b;
                grad_w.set(s, 3 * half_n + p, v);
                // Input gradients.
                let (w1, w2, w3, w4) = stage.weights(p);
                grad_in[i1] = w1 * g1 + w3 * g2;
                grad_in[i2] = w2 * g1 + w4 * g2;
            }
            grad = grad_in;
        }
        (grad, grad_w)
    }

    /// Expands the butterfly factorisation into a dense `n × n` matrix `B`
    /// such that `forward(x) = B x`.
    pub fn to_dense(&self) -> Tensor {
        let mut dense = Tensor::zeros(&[self.n, self.n]);
        for j in 0..self.n {
            let mut e = vec![0.0f32; self.n];
            e[j] = 1.0;
            let col = self.forward(&e);
            for i in 0..self.n {
                dense.set(i, j, col[i]);
            }
        }
        dense
    }

    /// Serialises the weights to a `[log2 n, 2 n]` tensor. Row `s` stores
    /// `[w1 | w2 | w3 | w4]`, each of length `n / 2`.
    pub fn to_weight_tensor(&self) -> Tensor {
        let half_n = self.n / 2;
        let mut w = Tensor::zeros(&[self.num_stages(), 2 * self.n]);
        for (s, stage) in self.stages.iter().enumerate() {
            for p in 0..stage.pairs() {
                w.set(s, p, stage.w1[p]);
                w.set(s, half_n + p, stage.w2[p]);
                w.set(s, 2 * half_n + p, stage.w3[p]);
                w.set(s, 3 * half_n + p, stage.w4[p]);
            }
        }
        w
    }

    /// Reconstructs a butterfly matrix from a `[log2 n, 2 n]` weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::WeightShapeMismatch`] when the tensor shape
    /// does not correspond to a valid power-of-two butterfly layout, and
    /// [`ButterflyError::NotPowerOfTwo`] when the implied size is invalid.
    pub fn from_weight_tensor(w: &Tensor) -> Result<Self, ButterflyError> {
        let shape = w.shape();
        if shape.len() != 2 {
            return Err(ButterflyError::WeightShapeMismatch {
                expected: vec![0, 0],
                got: shape.to_vec(),
            });
        }
        let stages = shape[0];
        let n = shape[1] / 2;
        let valid = n >= 2 && n.is_power_of_two() && shape[1] == 2 * n && log2_exact(n.max(2)) == stages;
        if !valid {
            return Err(ButterflyError::WeightShapeMismatch {
                expected: vec![stages, 2 * n],
                got: shape.to_vec(),
            });
        }
        let mut m = Self::try_identity(n)?;
        let half_n = n / 2;
        for (s, stage) in m.stages.iter_mut().enumerate() {
            for p in 0..half_n {
                stage.w1[p] = w.at(s, p);
                stage.w2[p] = w.at(s, half_n + p);
                stage.w3[p] = w.at(s, 2 * half_n + p);
                stage.w4[p] = w.at(s, 3 * half_n + p);
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_forward_is_noop() {
        let b = ButterflyMatrix::identity(16);
        let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(b.forward(&x), x);
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        assert!(ButterflyMatrix::try_identity(12).is_err());
        assert!(ButterflyMatrix::try_identity(0).is_err());
        assert!(ButterflyMatrix::try_identity(1).is_err());
        assert!(ButterflyMatrix::try_identity(2).is_ok());
    }

    #[test]
    fn parameter_count_is_2n_logn() {
        let b = ButterflyMatrix::identity(64);
        assert_eq!(b.num_params(), 2 * 64 * 6);
    }

    #[test]
    fn forward_matches_dense_expansion() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = ButterflyMatrix::random(16, &mut rng).unwrap();
        let dense = b.to_dense();
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.17).sin()).collect();
        let fast = b.forward(&x);
        // dense * x (column-vector convention)
        for i in 0..16 {
            let slow: f32 = (0..16).map(|j| dense.at(i, j) * x[j]).sum();
            assert!((slow - fast[i]).abs() < 1e-4, "row {i}: {slow} vs {}", fast[i]);
        }
    }

    #[test]
    fn dense_expansion_is_not_low_rank_trivial() {
        // The butterfly product of log2(n) sparse factors should produce a
        // dense matrix (global connectivity), not a block-diagonal one.
        let mut rng = StdRng::seed_from_u64(3);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let dense = b.to_dense();
        // Element coupling position 0 with position 7 must be reachable.
        assert!(dense.at(7, 0).abs() > 1e-8 || dense.at(0, 7).abs() > 1e-8);
    }

    #[test]
    fn weight_tensor_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = ButterflyMatrix::random(32, &mut rng).unwrap();
        let w = b.to_weight_tensor();
        assert_eq!(w.shape(), &[5, 64]);
        let b2 = ButterflyMatrix::from_weight_tensor(&w).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn from_weight_tensor_rejects_bad_shapes() {
        let w = Tensor::zeros(&[3, 10]);
        assert!(ButterflyMatrix::from_weight_tensor(&w).is_err());
        let w = Tensor::zeros(&[4, 16]); // implies n=8 but log2(8)=3 != 4
        assert!(ButterflyMatrix::from_weight_tensor(&w).is_err());
    }

    #[test]
    fn backward_input_gradient_matches_dense_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.29).cos()).collect();
        let g: Vec<f32> = (0..8).map(|i| (i as f32 * 0.53).sin()).collect();
        let (grad_x, _) = b.backward(&x, &g);
        let dense = b.to_dense();
        for j in 0..8 {
            let expected: f32 = (0..8).map(|i| dense.at(i, j) * g[i]).sum();
            assert!((expected - grad_x[j]).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_weight_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(23);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.41).sin()).collect();
        let g = vec![1.0f32; 8]; // loss = sum of outputs
        let (_, grad_w) = b.backward(&x, &g);
        let w = b.to_weight_tensor();
        let eps = 1e-3f32;
        for s in 0..w.rows() {
            for c in 0..w.cols() {
                let mut wp = w.clone();
                wp.set(s, c, w.at(s, c) + eps);
                let mut wm = w.clone();
                wm.set(s, c, w.at(s, c) - eps);
                let fp: f32 = ButterflyMatrix::from_weight_tensor(&wp).unwrap().forward(&x).iter().sum();
                let fm: f32 = ButterflyMatrix::from_weight_tensor(&wm).unwrap().forward(&x).iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                let analytic = grad_w.at(s, c);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "stage {s} col {c}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn forward_rows_applies_per_row() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = ButterflyMatrix::random(4, &mut rng).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0], &[2, 4]).unwrap();
        let y = b.forward_rows(&x);
        let r0 = b.forward(&[1.0, 0.0, 0.0, 0.0]);
        let r1 = b.forward(&[0.0, 1.0, 0.0, 0.0]);
        for c in 0..4 {
            assert!((y.at(0, c) - r0[c]).abs() < 1e-6);
            assert!((y.at(1, c) - r1[c]).abs() < 1e-6);
        }
    }

    #[test]
    fn stage_pairing_matches_fft_pattern() {
        // Stage 0 pairs adjacent elements, the final stage pairs elements n/2 apart.
        let b = ButterflyMatrix::identity(16);
        assert_eq!(b.stages()[0].pair_indices(0), (0, 1));
        assert_eq!(b.stages()[3].pair_indices(0), (0, 8));
        assert_eq!(b.stages()[3].pair_indices(1), (1, 9));
    }
}
