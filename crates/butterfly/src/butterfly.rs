//! Learnable butterfly factor matrices and the butterfly linear transform.
//!
//! A butterfly matrix of size `N = 2^L` is the product of `L` sparse butterfly
//! factor matrices; factor `s` (with half-block size `2^s`) pairs elements at
//! distance `2^s` inside blocks of size `2^{s+1}` and mixes each pair through
//! a trainable 2×2 matrix (the paper's Section II-B). Multiplying a vector by
//! the full butterfly matrix therefore costs `O(N log N)` instead of `O(N^2)`.

use crate::{log2_exact, ButterflyError};
use fab_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

/// Row-batched butterfly kernels below this many total elements run serially;
/// the rayon shim spawns OS threads per call, which only pays off for real work.
const PAR_MIN_ELEMS: usize = 1 << 14;
/// Target elements per parallel row chunk.
const CHUNK_ELEMS: usize = 1 << 13;

/// Reusable scratch for repeated butterfly backward passes: holds every
/// per-stage activation plus two ping-pong gradient buffers, so a backward
/// pass performs **zero** heap allocation (the seed cloned the activation
/// vector once per stage, ~`log2 n` allocations per row).
#[derive(Debug, Clone)]
pub struct ButterflyScratch {
    /// `(stages + 1) × n` flat buffer; slot `s` holds the input of stage `s`,
    /// slot `stages` the transform output.
    states: Vec<f32>,
    /// Gradient ping-pong buffers, `n` elements each.
    grad: Vec<f32>,
    grad_tmp: Vec<f32>,
    n: usize,
}

impl ButterflyScratch {
    /// Allocates scratch for a butterfly of size `n` (power of two).
    pub fn new(n: usize) -> Self {
        let stages = log2_exact(n);
        Self { states: vec![0.0; (stages + 1) * n], grad: vec![0.0; n], grad_tmp: vec![0.0; n], n }
    }
}

/// One butterfly factor (stage): a block-diagonal matrix of 2×2 blocks of
/// diagonal matrices with half-block size `half`.
///
/// For pair index `p`, the paired element indices are
/// `i1 = (p / half) * 2 * half + (p % half)` and `i2 = i1 + half`, and the
/// stage computes
///
/// ```text
/// out[i1] = w1[p] * in[i1] + w2[p] * in[i2]
/// out[i2] = w3[p] * in[i1] + w4[p] * in[i2]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyStage {
    half: usize,
    w1: Vec<f32>,
    w2: Vec<f32>,
    w3: Vec<f32>,
    w4: Vec<f32>,
}

impl ButterflyStage {
    /// Creates an identity stage (`w1 = w4 = 1`, `w2 = w3 = 0`) for a
    /// transform of size `n`.
    pub fn identity(n: usize, half: usize) -> Self {
        let pairs = n / 2;
        Self {
            half,
            w1: vec![1.0; pairs],
            w2: vec![0.0; pairs],
            w3: vec![0.0; pairs],
            w4: vec![1.0; pairs],
        }
    }

    /// Half-block size (`2^s` for stage `s`).
    pub fn half(&self) -> usize {
        self.half
    }

    /// Number of butterfly pairs in this stage.
    pub fn pairs(&self) -> usize {
        self.w1.len()
    }

    /// Returns the `(i1, i2)` element indices paired by butterfly `p`.
    pub fn pair_indices(&self, p: usize) -> (usize, usize) {
        let block = p / self.half;
        let offset = p % self.half;
        let i1 = block * 2 * self.half + offset;
        (i1, i1 + self.half)
    }

    /// Returns the four twiddle weights of pair `p` as `(w1, w2, w3, w4)`.
    pub fn weights(&self, p: usize) -> (f32, f32, f32, f32) {
        (self.w1[p], self.w2[p], self.w3[p], self.w4[p])
    }

    /// Applies the stage to a vector in place.
    ///
    /// Walks the blocks with `split_at_mut` slices instead of computing
    /// `pair_indices` per pair, so the inner loop is branch- and
    /// division-free. The first two stages (`half` of 1 and 2), whose
    /// blocks are too small to amortise per-block slicing, use dedicated
    /// unrolled loops — the arithmetic per pair is identical, so results
    /// are bit-equal to the generic path.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != 2 * pairs`.
    pub fn apply_in_place(&self, x: &mut [f32]) {
        assert_eq!(x.len(), 2 * self.pairs(), "stage input length mismatch");
        let half = self.half;
        match half {
            1 => {
                for (p, pair) in x.chunks_exact_mut(2).enumerate() {
                    let (a, b) = (pair[0], pair[1]);
                    pair[0] = self.w1[p] * a + self.w2[p] * b;
                    pair[1] = self.w3[p] * a + self.w4[p] * b;
                }
            }
            2 => {
                for (block, quad) in x.chunks_exact_mut(4).enumerate() {
                    let p = 2 * block;
                    let (a0, b0) = (quad[0], quad[2]);
                    let (a1, b1) = (quad[1], quad[3]);
                    quad[0] = self.w1[p] * a0 + self.w2[p] * b0;
                    quad[2] = self.w3[p] * a0 + self.w4[p] * b0;
                    quad[1] = self.w1[p + 1] * a1 + self.w2[p + 1] * b1;
                    quad[3] = self.w3[p + 1] * a1 + self.w4[p + 1] * b1;
                }
            }
            _ => {
                let mut p = 0;
                for block in x.chunks_mut(2 * half) {
                    let (lo, hi) = block.split_at_mut(half);
                    let ws = self.w1[p..p + half]
                        .iter()
                        .zip(&self.w2[p..p + half])
                        .zip(self.w3[p..p + half].iter().zip(&self.w4[p..p + half]));
                    for ((l, h), ((&w1, &w2), (&w3, &w4))) in
                        lo.iter_mut().zip(hi.iter_mut()).zip(ws)
                    {
                        let a = *l;
                        let b = *h;
                        *l = w1 * a + w2 * b;
                        *h = w3 * a + w4 * b;
                    }
                    p += half;
                }
            }
        }
    }

    /// Applies the stage out of place: reads `src`, writes every element of
    /// `dst` exactly once. Used by the allocation-free batched forward.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ from `2 * pairs`.
    pub fn apply_into(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), 2 * self.pairs(), "stage input length mismatch");
        assert_eq!(dst.len(), src.len(), "stage output length mismatch");
        let half = self.half;
        let mut p = 0;
        for (sblock, dblock) in src.chunks(2 * half).zip(dst.chunks_mut(2 * half)) {
            let (slo, shi) = sblock.split_at(half);
            let (dlo, dhi) = dblock.split_at_mut(half);
            let (w1, w2) = (&self.w1[p..p + half], &self.w2[p..p + half]);
            let (w3, w4) = (&self.w3[p..p + half], &self.w4[p..p + half]);
            for (i, ((&a, &b), (l, h))) in
                slo.iter().zip(shi.iter()).zip(dlo.iter_mut().zip(dhi.iter_mut())).enumerate()
            {
                *l = w1[i] * a + w2[i] * b;
                *h = w3[i] * a + w4[i] * b;
            }
            p += half;
        }
    }
}

/// A trainable butterfly matrix of power-of-two size `n`, stored as its
/// `log2(n)` sparse factors.
///
/// # Example
///
/// ```rust
/// use fab_butterfly::ButterflyMatrix;
/// let b = ButterflyMatrix::identity(8);
/// let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// assert_eq!(b.forward(&x), x);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyMatrix {
    n: usize,
    stages: Vec<ButterflyStage>,
}

impl ButterflyMatrix {
    /// Creates the identity butterfly matrix of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::NotPowerOfTwo`] when `n` is not a power of
    /// two greater than or equal to 2.
    pub fn try_identity(n: usize) -> Result<Self, ButterflyError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(ButterflyError::NotPowerOfTwo { size: n });
        }
        let log_n = log2_exact(n);
        let stages = (0..log_n).map(|s| ButterflyStage::identity(n, 1 << s)).collect();
        Ok(Self { n, stages })
    }

    /// Creates the identity butterfly matrix of size `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two greater than or equal to 2.
    pub fn identity(n: usize) -> Self {
        Self::try_identity(n).expect("butterfly size must be a power of two")
    }

    /// Creates a random butterfly matrix whose expansion approximately
    /// preserves activation scale (each 2×2 block is sampled near a rotation).
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::NotPowerOfTwo`] when `n` is invalid.
    pub fn random(n: usize, rng: &mut StdRng) -> Result<Self, ButterflyError> {
        let mut m = Self::try_identity(n)?;
        for stage in &mut m.stages {
            for p in 0..stage.pairs() {
                // Sample close to an orthonormal 2x2 block: rotation plus noise.
                let theta: f32 = rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI);
                let noise = 0.05f32;
                stage.w1[p] = theta.cos() + rng.gen_range(-noise..noise);
                stage.w2[p] = -theta.sin() + rng.gen_range(-noise..noise);
                stage.w3[p] = theta.sin() + rng.gen_range(-noise..noise);
                stage.w4[p] = theta.cos() + rng.gen_range(-noise..noise);
            }
        }
        Ok(m)
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of butterfly stages (`log2 n`).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The individual butterfly factors, ordered from smallest to largest
    /// half-block size (application order).
    pub fn stages(&self) -> &[ButterflyStage] {
        &self.stages
    }

    /// Total number of trainable parameters: `2 n log2 n`.
    pub fn num_params(&self) -> usize {
        2 * self.n * self.num_stages()
    }

    /// Applies the butterfly matrix to a vector.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.size()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n, "butterfly input length mismatch");
        let mut v = x.to_vec();
        for stage in &self.stages {
            stage.apply_in_place(&mut v);
        }
        v
    }

    /// Applies the butterfly matrix to every row of a `[rows, n]` tensor.
    ///
    /// The whole batch is transformed through the per-stage in-place kernel
    /// with rayon fanning the rows out in parallel chunks — a single buffer
    /// copy up front and no further allocation, in contrast to the seed's
    /// per-row gather/`forward`/scatter loop.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D with `n` columns.
    pub fn forward_rows(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.n, "butterfly row width mismatch");
        let rows = x.rows();
        let n = self.n;
        let mut data = x.as_slice().to_vec();
        let transform_rows = |chunk: &mut [f32]| {
            for row in chunk.chunks_mut(n) {
                for stage in &self.stages {
                    stage.apply_in_place(row);
                }
            }
        };
        if data.len() < PAR_MIN_ELEMS {
            transform_rows(&mut data);
        } else {
            let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
            data.par_chunks_mut(rows_per_chunk * n).for_each(transform_rows);
        }
        Tensor::from_vec(data, &[rows, n]).expect("forward_rows shape")
    }

    /// Applies the butterfly matrix to every row of a `[rows, d_in]` tensor
    /// whose rows are first zero-padded on the right to the transform size
    /// `n` — fusing the `concat_cols(x, zeros)` a caller would otherwise
    /// materialise into the batch copy [`ButterflyMatrix::forward_rows`]
    /// performs anyway. Results are bit-identical to padding explicitly.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D or has more than `n` columns.
    pub fn forward_rows_padded(&self, x: &Tensor) -> Tensor {
        let d_in = x.cols();
        let n = self.n;
        assert!(d_in <= n, "butterfly pad width {d_in} exceeds transform size {n}");
        if d_in == n {
            return self.forward_rows(x);
        }
        let rows = x.rows();
        let mut data = vec![0.0f32; rows * n];
        for (drow, srow) in data.chunks_mut(n).zip(x.as_slice().chunks(d_in)) {
            drow[..d_in].copy_from_slice(srow);
        }
        let transform_rows = |chunk: &mut [f32]| {
            for row in chunk.chunks_mut(n) {
                for stage in &self.stages {
                    stage.apply_in_place(row);
                }
            }
        };
        if data.len() < PAR_MIN_ELEMS {
            transform_rows(&mut data);
        } else {
            let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
            data.par_chunks_mut(rows_per_chunk * n).for_each(transform_rows);
        }
        Tensor::from_vec(data, &[rows, n]).expect("forward_rows_padded shape")
    }

    /// Runs the forward pass, recording the input of every stage into the
    /// flat `states` buffer of `scratch` (slot `s` holds the input of stage
    /// `s`; the final slot holds the output).
    fn forward_stages_into(&self, x: &[f32], states: &mut [f32]) {
        let n = self.n;
        debug_assert_eq!(states.len(), (self.stages.len() + 1) * n);
        states[..n].copy_from_slice(x);
        for (s, stage) in self.stages.iter().enumerate() {
            let (src, rest) = states[s * n..].split_at_mut(n);
            stage.apply_into(src, &mut rest[..n]);
        }
    }

    /// Applies the butterfly matrix, also returning the input of every stage
    /// (needed by the backward pass).
    pub fn forward_with_intermediates(&self, x: &[f32]) -> (Vec<f32>, Vec<Vec<f32>>) {
        assert_eq!(x.len(), self.n, "butterfly input length mismatch");
        let mut scratch = ButterflyScratch::new(self.n);
        self.forward_stages_into(x, &mut scratch.states);
        let n = self.n;
        let stages = self.stages.len();
        let intermediates =
            (0..stages).map(|s| scratch.states[s * n..(s + 1) * n].to_vec()).collect();
        (scratch.states[stages * n..].to_vec(), intermediates)
    }

    /// Backward pass for one vector: given the gradient with respect to the
    /// output, returns the gradient with respect to the input and the
    /// gradient with respect to the weight tensor (same layout as
    /// [`ButterflyMatrix::to_weight_tensor`]).
    pub fn backward(&self, x: &[f32], grad_out: &[f32]) -> (Vec<f32>, Tensor) {
        let mut scratch = ButterflyScratch::new(self.n);
        let mut grad_w = Tensor::zeros(&[self.num_stages(), 2 * self.n]);
        self.backward_with_scratch(x, grad_out, &mut scratch, grad_w.as_mut_slice());
        (scratch.grad.clone(), grad_w)
    }

    /// Allocation-free backward pass for one vector.
    ///
    /// On return `scratch.grad` holds the input gradient and the weight
    /// gradients have been **accumulated** (`+=`) into `grad_w`, which must
    /// have the `[log2 n, 2 n]` layout of [`ButterflyMatrix::to_weight_tensor`]
    /// flattened row-major.
    ///
    /// # Panics
    ///
    /// Panics when `x`, `grad_out`, `scratch` or `grad_w` have the wrong size.
    pub fn backward_with_scratch(
        &self,
        x: &[f32],
        grad_out: &[f32],
        scratch: &mut ButterflyScratch,
        grad_w: &mut [f32],
    ) {
        let n = self.n;
        assert_eq!(x.len(), n, "butterfly input length mismatch");
        assert_eq!(grad_out.len(), n, "butterfly gradient length mismatch");
        assert_eq!(scratch.n, n, "scratch size mismatch");
        assert_eq!(grad_w.len(), self.num_stages() * 2 * n, "weight gradient length mismatch");
        self.forward_stages_into(x, &mut scratch.states);
        scratch.grad.copy_from_slice(grad_out);
        let half_n = n / 2;
        for (s, stage) in self.stages.iter().enumerate().rev() {
            let input = &scratch.states[s * n..(s + 1) * n];
            let gw = &mut grad_w[s * 2 * n..(s + 1) * 2 * n];
            let half = stage.half;
            let grad = &scratch.grad;
            let grad_in = &mut scratch.grad_tmp;
            let mut p = 0;
            for block_start in (0..n).step_by(2 * half) {
                for off in 0..half {
                    let (i1, i2) = (block_start + off, block_start + off + half);
                    let (g1, g2) = (grad[i1], grad[i2]);
                    let (a, b) = (input[i1], input[i2]);
                    let pi = p + off;
                    // Weight gradients, laid out [w1 | w2 | w3 | w4].
                    gw[pi] += g1 * a;
                    gw[half_n + pi] += g1 * b;
                    gw[2 * half_n + pi] += g2 * a;
                    gw[3 * half_n + pi] += g2 * b;
                    // Input gradients (the transposed 2x2 block).
                    let (w1, w2, w3, w4) = (stage.w1[pi], stage.w2[pi], stage.w3[pi], stage.w4[pi]);
                    grad_in[i1] = w1 * g1 + w3 * g2;
                    grad_in[i2] = w2 * g1 + w4 * g2;
                }
                p += half;
            }
            std::mem::swap(&mut scratch.grad, &mut scratch.grad_tmp);
        }
    }

    /// Batched backward pass over every row of `x` (shape `[rows, n]`) given
    /// the output gradients `grad_out` (same shape).
    ///
    /// Returns `(grad_x, grad_w)` where `grad_x` has the shape of `x` and
    /// `grad_w` the `[log2 n, 2 n]` weight layout, summed over rows. Rows are
    /// processed in parallel chunks, each chunk reusing one
    /// [`ButterflyScratch`] and accumulating into a chunk-local weight
    /// gradient that is reduced at the end — so the per-row inner loop never
    /// touches the heap.
    ///
    /// # Panics
    ///
    /// Panics when shapes do not match the butterfly size.
    pub fn backward_rows(&self, x: &Tensor, grad_out: &Tensor) -> (Tensor, Tensor) {
        let n = self.n;
        assert_eq!(x.cols(), n, "butterfly row width mismatch");
        assert_eq!(grad_out.shape(), x.shape(), "gradient shape mismatch");
        let rows = x.rows();
        let gw_len = self.num_stages() * 2 * n;
        let mut grad_x = vec![0.0f32; rows * n];
        let process_chunk = |r0: usize, chunk: &mut [f32]| -> Vec<f32> {
            let mut scratch = ButterflyScratch::new(n);
            let mut gw = vec![0.0f32; gw_len];
            for (i, grow) in chunk.chunks_mut(n).enumerate() {
                let r = r0 + i;
                let xrow = &x.as_slice()[r * n..(r + 1) * n];
                let gorow = &grad_out.as_slice()[r * n..(r + 1) * n];
                self.backward_with_scratch(xrow, gorow, &mut scratch, &mut gw);
                grow.copy_from_slice(&scratch.grad);
            }
            gw
        };
        let partials: Vec<Vec<f32>> = if rows * n < PAR_MIN_ELEMS {
            vec![process_chunk(0, &mut grad_x)]
        } else {
            let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
            grad_x
                .par_chunks_mut(rows_per_chunk * n)
                .enumerate()
                .map(|(c, chunk)| process_chunk(c * rows_per_chunk, chunk))
                .collect()
        };
        let mut grad_w = Tensor::zeros(&[self.num_stages(), 2 * n]);
        let gw = grad_w.as_mut_slice();
        for partial in &partials {
            for (d, &v) in gw.iter_mut().zip(partial.iter()) {
                *d += v;
            }
        }
        (Tensor::from_vec(grad_x, &[rows, n]).expect("backward_rows grad shape"), grad_w)
    }

    /// Expands the butterfly factorisation into a dense `n × n` matrix `B`
    /// such that `forward(x) = B x`.
    pub fn to_dense(&self) -> Tensor {
        let mut dense = Tensor::zeros(&[self.n, self.n]);
        for j in 0..self.n {
            let mut e = vec![0.0f32; self.n];
            e[j] = 1.0;
            let col = self.forward(&e);
            for (i, &v) in col.iter().enumerate() {
                dense.set(i, j, v);
            }
        }
        dense
    }

    /// Serialises the weights to a `[log2 n, 2 n]` tensor. Row `s` stores
    /// `[w1 | w2 | w3 | w4]`, each of length `n / 2`.
    pub fn to_weight_tensor(&self) -> Tensor {
        let half_n = self.n / 2;
        let mut w = Tensor::zeros(&[self.num_stages(), 2 * self.n]);
        for (s, stage) in self.stages.iter().enumerate() {
            for p in 0..stage.pairs() {
                w.set(s, p, stage.w1[p]);
                w.set(s, half_n + p, stage.w2[p]);
                w.set(s, 2 * half_n + p, stage.w3[p]);
                w.set(s, 3 * half_n + p, stage.w4[p]);
            }
        }
        w
    }

    /// Reconstructs a butterfly matrix from a `[log2 n, 2 n]` weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::WeightShapeMismatch`] when the tensor shape
    /// does not correspond to a valid power-of-two butterfly layout, and
    /// [`ButterflyError::NotPowerOfTwo`] when the implied size is invalid.
    pub fn from_weight_tensor(w: &Tensor) -> Result<Self, ButterflyError> {
        let shape = w.shape();
        if shape.len() != 2 {
            return Err(ButterflyError::WeightShapeMismatch {
                expected: vec![0, 0],
                got: shape.to_vec(),
            });
        }
        let stages = shape[0];
        let n = shape[1] / 2;
        let valid =
            n >= 2 && n.is_power_of_two() && shape[1] == 2 * n && log2_exact(n.max(2)) == stages;
        if !valid {
            return Err(ButterflyError::WeightShapeMismatch {
                expected: vec![stages, 2 * n],
                got: shape.to_vec(),
            });
        }
        let mut m = Self::try_identity(n)?;
        let half_n = n / 2;
        for (s, stage) in m.stages.iter_mut().enumerate() {
            for p in 0..half_n {
                stage.w1[p] = w.at(s, p);
                stage.w2[p] = w.at(s, half_n + p);
                stage.w3[p] = w.at(s, 2 * half_n + p);
                stage.w4[p] = w.at(s, 3 * half_n + p);
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_forward_is_noop() {
        let b = ButterflyMatrix::identity(16);
        let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(b.forward(&x), x);
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        assert!(ButterflyMatrix::try_identity(12).is_err());
        assert!(ButterflyMatrix::try_identity(0).is_err());
        assert!(ButterflyMatrix::try_identity(1).is_err());
        assert!(ButterflyMatrix::try_identity(2).is_ok());
    }

    #[test]
    fn parameter_count_is_2n_logn() {
        let b = ButterflyMatrix::identity(64);
        assert_eq!(b.num_params(), 2 * 64 * 6);
    }

    #[test]
    fn forward_matches_dense_expansion() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = ButterflyMatrix::random(16, &mut rng).unwrap();
        let dense = b.to_dense();
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.17).sin()).collect();
        let fast = b.forward(&x);
        // dense * x (column-vector convention)
        for (i, &f) in fast.iter().enumerate() {
            let slow: f32 = (0..16).map(|j| dense.at(i, j) * x[j]).sum();
            assert!((slow - f).abs() < 1e-4, "row {i}: {slow} vs {f}");
        }
    }

    #[test]
    fn dense_expansion_is_not_low_rank_trivial() {
        // The butterfly product of log2(n) sparse factors should produce a
        // dense matrix (global connectivity), not a block-diagonal one.
        let mut rng = StdRng::seed_from_u64(3);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let dense = b.to_dense();
        // Element coupling position 0 with position 7 must be reachable.
        assert!(dense.at(7, 0).abs() > 1e-8 || dense.at(0, 7).abs() > 1e-8);
    }

    #[test]
    fn weight_tensor_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = ButterflyMatrix::random(32, &mut rng).unwrap();
        let w = b.to_weight_tensor();
        assert_eq!(w.shape(), &[5, 64]);
        let b2 = ButterflyMatrix::from_weight_tensor(&w).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn from_weight_tensor_rejects_bad_shapes() {
        let w = Tensor::zeros(&[3, 10]);
        assert!(ButterflyMatrix::from_weight_tensor(&w).is_err());
        let w = Tensor::zeros(&[4, 16]); // implies n=8 but log2(8)=3 != 4
        assert!(ButterflyMatrix::from_weight_tensor(&w).is_err());
    }

    #[test]
    fn backward_input_gradient_matches_dense_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.29).cos()).collect();
        let g: Vec<f32> = (0..8).map(|i| (i as f32 * 0.53).sin()).collect();
        let (grad_x, _) = b.backward(&x, &g);
        let dense = b.to_dense();
        for (j, &gx) in grad_x.iter().enumerate() {
            let expected: f32 = (0..8).map(|i| dense.at(i, j) * g[i]).sum();
            assert!((expected - gx).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_weight_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(23);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.41).sin()).collect();
        let g = vec![1.0f32; 8]; // loss = sum of outputs
        let (_, grad_w) = b.backward(&x, &g);
        let w = b.to_weight_tensor();
        let eps = 1e-3f32;
        for s in 0..w.rows() {
            for c in 0..w.cols() {
                let mut wp = w.clone();
                wp.set(s, c, w.at(s, c) + eps);
                let mut wm = w.clone();
                wm.set(s, c, w.at(s, c) - eps);
                let fp: f32 =
                    ButterflyMatrix::from_weight_tensor(&wp).unwrap().forward(&x).iter().sum();
                let fm: f32 =
                    ButterflyMatrix::from_weight_tensor(&wm).unwrap().forward(&x).iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                let analytic = grad_w.at(s, c);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "stage {s} col {c}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn forward_rows_applies_per_row() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = ButterflyMatrix::random(4, &mut rng).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0], &[2, 4]).unwrap();
        let y = b.forward_rows(&x);
        let r0 = b.forward(&[1.0, 0.0, 0.0, 0.0]);
        let r1 = b.forward(&[0.0, 1.0, 0.0, 0.0]);
        for c in 0..4 {
            assert!((y.at(0, c) - r0[c]).abs() < 1e-6);
            assert!((y.at(1, c) - r1[c]).abs() < 1e-6);
        }
    }

    #[test]
    fn stage_pairing_matches_fft_pattern() {
        // Stage 0 pairs adjacent elements, the final stage pairs elements n/2 apart.
        let b = ButterflyMatrix::identity(16);
        assert_eq!(b.stages()[0].pair_indices(0), (0, 1));
        assert_eq!(b.stages()[3].pair_indices(0), (0, 8));
        assert_eq!(b.stages()[3].pair_indices(1), (1, 9));
    }
}
