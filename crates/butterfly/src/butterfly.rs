//! Learnable butterfly factor matrices and the butterfly linear transform.
//!
//! A butterfly matrix of size `N = 2^L` is the product of `L` sparse butterfly
//! factor matrices; factor `s` (with half-block size `2^s`) pairs elements at
//! distance `2^s` inside blocks of size `2^{s+1}` and mixes each pair through
//! a trainable 2×2 matrix (the paper's Section II-B). Multiplying a vector by
//! the full butterfly matrix therefore costs `O(N log N)` instead of `O(N^2)`.

use crate::{log2_exact, ButterflyError};
use fab_tensor::simd;
use fab_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

/// Row-batched butterfly kernels below this many total elements run serially;
/// the rayon shim spawns OS threads per call, which only pays off for real work.
const PAR_MIN_ELEMS: usize = 1 << 14;
/// Target elements per parallel row chunk.
const CHUNK_ELEMS: usize = 1 << 13;

/// Reusable scratch for repeated butterfly backward passes: holds every
/// per-stage activation plus two ping-pong gradient buffers, so a backward
/// pass performs **zero** heap allocation (the seed cloned the activation
/// vector once per stage, ~`log2 n` allocations per row).
#[derive(Debug, Clone)]
pub struct ButterflyScratch {
    /// `(stages + 1) × n` flat buffer; slot `s` holds the input of stage `s`,
    /// slot `stages` the transform output.
    states: Vec<f32>,
    /// Gradient ping-pong buffers, `n` elements each.
    grad: Vec<f32>,
    grad_tmp: Vec<f32>,
    /// Chunk-local weight-gradient accumulator (`log2 n · 2 n`), used by the
    /// single-worker batched backward so it needs no per-call allocation
    /// while keeping the parallel path's exact chunk summation order.
    gw_partial: Vec<f32>,
    n: usize,
}

impl ButterflyScratch {
    /// Allocates scratch for a butterfly of size `n` (power of two).
    pub fn new(n: usize) -> Self {
        let stages = log2_exact(n);
        Self {
            states: vec![0.0; (stages + 1) * n],
            grad: vec![0.0; n],
            grad_tmp: vec![0.0; n],
            gw_partial: vec![0.0; stages * 2 * n],
            n,
        }
    }
}

/// One butterfly factor (stage): a block-diagonal matrix of 2×2 blocks of
/// diagonal matrices with half-block size `half`.
///
/// For pair index `p`, the paired element indices are
/// `i1 = (p / half) * 2 * half + (p % half)` and `i2 = i1 + half`, and the
/// stage computes
///
/// ```text
/// out[i1] = w1[p] * in[i1] + w2[p] * in[i2]
/// out[i2] = w3[p] * in[i1] + w4[p] * in[i2]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyStage {
    half: usize,
    w1: Vec<f32>,
    w2: Vec<f32>,
    w3: Vec<f32>,
    w4: Vec<f32>,
}

impl ButterflyStage {
    /// Creates an identity stage (`w1 = w4 = 1`, `w2 = w3 = 0`) for a
    /// transform of size `n`.
    pub fn identity(n: usize, half: usize) -> Self {
        let pairs = n / 2;
        Self {
            half,
            w1: vec![1.0; pairs],
            w2: vec![0.0; pairs],
            w3: vec![0.0; pairs],
            w4: vec![1.0; pairs],
        }
    }

    /// Half-block size (`2^s` for stage `s`).
    pub fn half(&self) -> usize {
        self.half
    }

    /// Number of butterfly pairs in this stage.
    pub fn pairs(&self) -> usize {
        self.w1.len()
    }

    /// Returns the `(i1, i2)` element indices paired by butterfly `p`.
    pub fn pair_indices(&self, p: usize) -> (usize, usize) {
        let block = p / self.half;
        let offset = p % self.half;
        let i1 = block * 2 * self.half + offset;
        (i1, i1 + self.half)
    }

    /// Returns the four twiddle weights of pair `p` as `(w1, w2, w3, w4)`.
    pub fn weights(&self, p: usize) -> (f32, f32, f32, f32) {
        (self.w1[p], self.w2[p], self.w3[p], self.w4[p])
    }

    /// Applies the stage to a vector in place.
    ///
    /// Walks the blocks with `split_at_mut` slices instead of computing
    /// `pair_indices` per pair, so the inner loop is branch- and
    /// division-free, and runs each block through the dispatched
    /// [`fab_tensor::simd`] pair kernel (vector lanes for `half` at or above
    /// the backend width, identical scalar arithmetic below it). The first
    /// two stages (`half` of 1 and 2), whose blocks are too small to
    /// amortise per-block slicing, use dedicated unrolled loops — the
    /// arithmetic per pair is identical in every path, so results are
    /// bit-equal across backends and block sizes.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != 2 * pairs`.
    pub fn apply_in_place(&self, x: &mut [f32]) {
        assert_eq!(x.len(), 2 * self.pairs(), "stage input length mismatch");
        let half = self.half;
        match half {
            1 => {
                for (p, pair) in x.chunks_exact_mut(2).enumerate() {
                    let (a, b) = (pair[0], pair[1]);
                    pair[0] = self.w1[p] * a + self.w2[p] * b;
                    pair[1] = self.w3[p] * a + self.w4[p] * b;
                }
            }
            2 => {
                for (block, quad) in x.chunks_exact_mut(4).enumerate() {
                    let p = 2 * block;
                    let (a0, b0) = (quad[0], quad[2]);
                    let (a1, b1) = (quad[1], quad[3]);
                    quad[0] = self.w1[p] * a0 + self.w2[p] * b0;
                    quad[2] = self.w3[p] * a0 + self.w4[p] * b0;
                    quad[1] = self.w1[p + 1] * a1 + self.w2[p + 1] * b1;
                    quad[3] = self.w3[p + 1] * a1 + self.w4[p + 1] * b1;
                }
            }
            _ => {
                // SoA pair update over contiguous lo/hi halves — the ideal
                // SIMD shape. The whole stage (block loop included) runs in
                // one dispatched kernel; its scalar arm and its tail for
                // `half` below the vector width run the identical
                // mul-then-add arithmetic, so results are bit-equal across
                // backends and to the seed loop.
                simd::butterfly_stage_in_place(half, &self.w1, &self.w2, &self.w3, &self.w4, x);
            }
        }
    }

    /// Applies the stage out of place: reads `src`, writes every element of
    /// `dst` exactly once. Used by the allocation-free batched forward and
    /// the backward pass's activation recompute.
    ///
    /// Mirrors [`ButterflyStage::apply_in_place`]'s structure: the first two
    /// stages (`half` of 1 and 2) use dedicated unrolled loops with the
    /// identical per-pair arithmetic, so results are bit-equal to the
    /// generic path.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ from `2 * pairs`.
    pub fn apply_into(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), 2 * self.pairs(), "stage input length mismatch");
        assert_eq!(dst.len(), src.len(), "stage output length mismatch");
        let half = self.half;
        match half {
            1 => {
                let ws = self.w1.iter().zip(&self.w2).zip(self.w3.iter().zip(&self.w4));
                for ((spair, dpair), ((w1, w2), (w3, w4))) in
                    src.chunks_exact(2).zip(dst.chunks_exact_mut(2)).zip(ws)
                {
                    let (a, b) = (spair[0], spair[1]);
                    dpair[0] = w1 * a + w2 * b;
                    dpair[1] = w3 * a + w4 * b;
                }
            }
            2 => {
                let ws = self
                    .w1
                    .chunks_exact(2)
                    .zip(self.w2.chunks_exact(2))
                    .zip(self.w3.chunks_exact(2).zip(self.w4.chunks_exact(2)));
                for ((squad, dquad), ((w1, w2), (w3, w4))) in
                    src.chunks_exact(4).zip(dst.chunks_exact_mut(4)).zip(ws)
                {
                    let (a0, b0) = (squad[0], squad[2]);
                    let (a1, b1) = (squad[1], squad[3]);
                    dquad[0] = w1[0] * a0 + w2[0] * b0;
                    dquad[2] = w3[0] * a0 + w4[0] * b0;
                    dquad[1] = w1[1] * a1 + w2[1] * b1;
                    dquad[3] = w3[1] * a1 + w4[1] * b1;
                }
            }
            _ => {
                simd::butterfly_stage_into(half, &self.w1, &self.w2, &self.w3, &self.w4, src, dst);
            }
        }
    }

    /// The seed's generic out-of-place stage application, kept verbatim as
    /// part of the reference backward path (the pre-PR backward recomputed
    /// activations through exactly this loop). Bit-identical to
    /// [`ButterflyStage::apply_into`].
    fn apply_into_reference(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), 2 * self.pairs(), "stage input length mismatch");
        assert_eq!(dst.len(), src.len(), "stage output length mismatch");
        let half = self.half;
        let mut p = 0;
        for (sblock, dblock) in src.chunks(2 * half).zip(dst.chunks_mut(2 * half)) {
            let (slo, shi) = sblock.split_at(half);
            let (dlo, dhi) = dblock.split_at_mut(half);
            let (w1, w2) = (&self.w1[p..p + half], &self.w2[p..p + half]);
            let (w3, w4) = (&self.w3[p..p + half], &self.w4[p..p + half]);
            for (i, ((&a, &b), (l, h))) in
                slo.iter().zip(shi.iter()).zip(dlo.iter_mut().zip(dhi.iter_mut())).enumerate()
            {
                *l = w1[i] * a + w2[i] * b;
                *h = w3[i] * a + w4[i] * b;
            }
            p += half;
        }
    }

    /// Backward pass through this stage: given the stage `input` and the
    /// upstream gradient `grad` (both length `2 · pairs`), writes the input
    /// gradient into `grad_in` and **accumulates** the weight gradients into
    /// `gw` (laid out `[w1 | w2 | w3 | w4]`, each of length `pairs`).
    ///
    /// Mirrors [`ButterflyStage::apply_in_place`]'s structure: the first two
    /// stages use dedicated unrolled loops, larger half-blocks walk
    /// `split_at` slices so the inner loop is branch- and division-free. The
    /// arithmetic per pair is identical to the seed's generic backward loop,
    /// so results are bit-equal to
    /// [`ButterflyStage::backward_into_reference`].
    ///
    /// # Panics
    ///
    /// Panics when any slice length mismatches.
    pub fn backward_into(&self, input: &[f32], grad: &[f32], grad_in: &mut [f32], gw: &mut [f32]) {
        let pairs = self.pairs();
        assert_eq!(input.len(), 2 * pairs, "stage input length mismatch");
        assert_eq!(grad.len(), 2 * pairs, "stage gradient length mismatch");
        assert_eq!(grad_in.len(), 2 * pairs, "stage input-gradient length mismatch");
        assert_eq!(gw.len(), 4 * pairs, "stage weight-gradient length mismatch");
        let (gw1, rest) = gw.split_at_mut(pairs);
        let (gw2, rest) = rest.split_at_mut(pairs);
        let (gw3, gw4) = rest.split_at_mut(pairs);
        let half = self.half;
        match half {
            1 => {
                let ws = self.w1.iter().zip(&self.w2).zip(self.w3.iter().zip(&self.w4));
                let gws =
                    gw1.iter_mut().zip(gw2.iter_mut()).zip(gw3.iter_mut().zip(gw4.iter_mut()));
                for ((((pair_in, pair_g), pair_o), ((w1, w2), (w3, w4))), ((d1, d2), (d3, d4))) in
                    input
                        .chunks_exact(2)
                        .zip(grad.chunks_exact(2))
                        .zip(grad_in.chunks_exact_mut(2))
                        .zip(ws)
                        .zip(gws)
                {
                    let (a, b) = (pair_in[0], pair_in[1]);
                    let (g1, g2) = (pair_g[0], pair_g[1]);
                    *d1 += g1 * a;
                    *d2 += g1 * b;
                    *d3 += g2 * a;
                    *d4 += g2 * b;
                    pair_o[0] = w1 * g1 + w3 * g2;
                    pair_o[1] = w2 * g1 + w4 * g2;
                }
            }
            2 => {
                let ws = self
                    .w1
                    .chunks_exact(2)
                    .zip(self.w2.chunks_exact(2))
                    .zip(self.w3.chunks_exact(2).zip(self.w4.chunks_exact(2)));
                let gws = gw1
                    .chunks_exact_mut(2)
                    .zip(gw2.chunks_exact_mut(2))
                    .zip(gw3.chunks_exact_mut(2).zip(gw4.chunks_exact_mut(2)));
                for ((((quad_in, quad_g), quad_o), ((w1, w2), (w3, w4))), ((d1, d2), (d3, d4))) in
                    input
                        .chunks_exact(4)
                        .zip(grad.chunks_exact(4))
                        .zip(grad_in.chunks_exact_mut(4))
                        .zip(ws)
                        .zip(gws)
                {
                    for lane in 0..2 {
                        let (a, b) = (quad_in[lane], quad_in[lane + 2]);
                        let (g1, g2) = (quad_g[lane], quad_g[lane + 2]);
                        d1[lane] += g1 * a;
                        d2[lane] += g1 * b;
                        d3[lane] += g2 * a;
                        d4[lane] += g2 * b;
                        quad_o[lane] = w1[lane] * g1 + w3[lane] * g2;
                        quad_o[lane + 2] = w2[lane] * g1 + w4[lane] * g2;
                    }
                }
            }
            _ => {
                simd::butterfly_stage_backward(
                    half,
                    &self.w1,
                    &self.w2,
                    &self.w3,
                    &self.w4,
                    input,
                    grad,
                    grad_in,
                    [gw1, gw2, gw3, gw4],
                );
            }
        }
    }
}

/// A trainable butterfly matrix of power-of-two size `n`, stored as its
/// `log2(n)` sparse factors.
///
/// # Example
///
/// ```rust
/// use fab_butterfly::ButterflyMatrix;
/// let b = ButterflyMatrix::identity(8);
/// let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// assert_eq!(b.forward(&x), x);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyMatrix {
    n: usize,
    stages: Vec<ButterflyStage>,
}

impl ButterflyMatrix {
    /// Creates the identity butterfly matrix of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::NotPowerOfTwo`] when `n` is not a power of
    /// two greater than or equal to 2.
    pub fn try_identity(n: usize) -> Result<Self, ButterflyError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(ButterflyError::NotPowerOfTwo { size: n });
        }
        let log_n = log2_exact(n);
        let stages = (0..log_n).map(|s| ButterflyStage::identity(n, 1 << s)).collect();
        Ok(Self { n, stages })
    }

    /// Creates the identity butterfly matrix of size `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two greater than or equal to 2.
    pub fn identity(n: usize) -> Self {
        Self::try_identity(n).expect("butterfly size must be a power of two")
    }

    /// Creates a random butterfly matrix whose expansion approximately
    /// preserves activation scale (each 2×2 block is sampled near a rotation).
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::NotPowerOfTwo`] when `n` is invalid.
    pub fn random(n: usize, rng: &mut StdRng) -> Result<Self, ButterflyError> {
        let mut m = Self::try_identity(n)?;
        for stage in &mut m.stages {
            for p in 0..stage.pairs() {
                // Sample close to an orthonormal 2x2 block: rotation plus noise.
                let theta: f32 = rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI);
                let noise = 0.05f32;
                stage.w1[p] = theta.cos() + rng.gen_range(-noise..noise);
                stage.w2[p] = -theta.sin() + rng.gen_range(-noise..noise);
                stage.w3[p] = theta.sin() + rng.gen_range(-noise..noise);
                stage.w4[p] = theta.cos() + rng.gen_range(-noise..noise);
            }
        }
        Ok(m)
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of butterfly stages (`log2 n`).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The individual butterfly factors, ordered from smallest to largest
    /// half-block size (application order).
    pub fn stages(&self) -> &[ButterflyStage] {
        &self.stages
    }

    /// Total number of trainable parameters: `2 n log2 n`.
    pub fn num_params(&self) -> usize {
        2 * self.n * self.num_stages()
    }

    /// Applies the butterfly matrix to a vector.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.size()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n, "butterfly input length mismatch");
        let mut v = x.to_vec();
        for stage in &self.stages {
            stage.apply_in_place(&mut v);
        }
        v
    }

    /// Applies the butterfly matrix to every row of a `[rows, n]` tensor.
    ///
    /// The whole batch is transformed through the per-stage in-place kernel
    /// with rayon fanning the rows out in parallel chunks — a single buffer
    /// copy up front and no further allocation, in contrast to the seed's
    /// per-row gather/`forward`/scatter loop.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D with `n` columns.
    pub fn forward_rows(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.n, "butterfly row width mismatch");
        let rows = x.rows();
        let n = self.n;
        let mut data = x.as_slice().to_vec();
        let transform_rows = |chunk: &mut [f32]| {
            for row in chunk.chunks_mut(n) {
                for stage in &self.stages {
                    stage.apply_in_place(row);
                }
            }
        };
        if data.len() < PAR_MIN_ELEMS {
            transform_rows(&mut data);
        } else {
            let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
            data.par_chunks_mut(rows_per_chunk * n).for_each(transform_rows);
        }
        Tensor::from_vec(data, &[rows, n]).expect("forward_rows shape")
    }

    /// Applies the butterfly matrix to every row of a `[rows, d_in]` tensor
    /// whose rows are first zero-padded on the right to the transform size
    /// `n` — fusing the `concat_cols(x, zeros)` a caller would otherwise
    /// materialise into the batch copy [`ButterflyMatrix::forward_rows`]
    /// performs anyway. Results are bit-identical to padding explicitly.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D or has more than `n` columns.
    pub fn forward_rows_padded(&self, x: &Tensor) -> Tensor {
        let d_in = x.cols();
        let n = self.n;
        assert!(d_in <= n, "butterfly pad width {d_in} exceeds transform size {n}");
        if d_in == n {
            return self.forward_rows(x);
        }
        let rows = x.rows();
        let mut data = vec![0.0f32; rows * n];
        for (drow, srow) in data.chunks_mut(n).zip(x.as_slice().chunks(d_in)) {
            drow[..d_in].copy_from_slice(srow);
        }
        let transform_rows = |chunk: &mut [f32]| {
            for row in chunk.chunks_mut(n) {
                for stage in &self.stages {
                    stage.apply_in_place(row);
                }
            }
        };
        if data.len() < PAR_MIN_ELEMS {
            transform_rows(&mut data);
        } else {
            let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
            data.par_chunks_mut(rows_per_chunk * n).for_each(transform_rows);
        }
        Tensor::from_vec(data, &[rows, n]).expect("forward_rows_padded shape")
    }

    /// [`ButterflyMatrix::forward_rows`] writing into `out` (resized in
    /// place; no allocation once `out`'s capacity suffices). Bit-identical
    /// to `forward_rows`.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D with `n` columns.
    pub fn forward_rows_into(&self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.cols(), self.n, "butterfly row width mismatch");
        let rows = x.rows();
        let n = self.n;
        out.resize_to(&[rows, n]);
        let data = out.as_mut_slice();
        data.copy_from_slice(x.as_slice());
        let transform_rows = |chunk: &mut [f32]| {
            for row in chunk.chunks_mut(n) {
                for stage in &self.stages {
                    stage.apply_in_place(row);
                }
            }
        };
        if data.len() < PAR_MIN_ELEMS {
            transform_rows(data);
        } else {
            let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
            data.par_chunks_mut(rows_per_chunk * n).for_each(transform_rows);
        }
    }

    /// Fused pad + transform + truncate over rows, writing into `out`: rows
    /// of `x` (`[rows, d_in]`, `d_in <= n`) are implicitly zero-padded,
    /// transformed, and only the first `d_out` output columns are kept. This
    /// collapses the `concat → butterfly → slice` chain of the padded
    /// butterfly layer into one kernel; results are bit-identical to the
    /// unfused chain.
    ///
    /// # Panics
    ///
    /// Panics when `d_in` or `d_out` exceed the transform size.
    pub fn forward_rows_padded_trunc_into(&self, x: &Tensor, d_out: usize, out: &mut Tensor) {
        let n = self.n;
        let d_in = x.cols();
        assert!(d_in <= n, "butterfly pad width {d_in} exceeds transform size {n}");
        assert!(d_out <= n, "butterfly output width {d_out} exceeds transform size {n}");
        let rows = x.rows();
        out.resize_to(&[rows, d_out]);
        let run_rows = |r0: usize, chunk: &mut [f32], row_buf: &mut [f32]| {
            for (i, orow) in chunk.chunks_mut(d_out).enumerate() {
                let r = r0 + i;
                row_buf[..d_in].copy_from_slice(&x.as_slice()[r * d_in..(r + 1) * d_in]);
                row_buf[d_in..].fill(0.0);
                for stage in &self.stages {
                    stage.apply_in_place(row_buf);
                }
                orow.copy_from_slice(&row_buf[..d_out]);
            }
        };
        let data = out.as_mut_slice();
        if rows * n < PAR_MIN_ELEMS {
            with_tls_scratch(n, |scratch| run_rows(0, data, &mut scratch.grad));
        } else {
            let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
            data.par_chunks_mut(rows_per_chunk * d_out).enumerate().for_each(|(c, chunk)| {
                let mut row_buf = vec![0.0f32; n];
                run_rows(c * rows_per_chunk, chunk, &mut row_buf);
            });
        }
    }

    /// Reloads the butterfly weights from a `[log2 n, 2 n]` tensor in place,
    /// reusing the existing stage storage when the size matches (the
    /// allocation-free counterpart of
    /// [`ButterflyMatrix::from_weight_tensor`]).
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::WeightShapeMismatch`] /
    /// [`ButterflyError::NotPowerOfTwo`] exactly like `from_weight_tensor`.
    pub fn load_weight_tensor(&mut self, w: &Tensor) -> Result<(), ButterflyError> {
        let shape = w.shape();
        if shape.len() != 2 {
            return Err(ButterflyError::WeightShapeMismatch {
                expected: vec![0, 0],
                got: shape.to_vec(),
            });
        }
        let stages = shape[0];
        let n = shape[1] / 2;
        let valid =
            n >= 2 && n.is_power_of_two() && shape[1] == 2 * n && log2_exact(n.max(2)) == stages;
        if !valid {
            return Err(ButterflyError::WeightShapeMismatch {
                expected: vec![stages, 2 * n],
                got: shape.to_vec(),
            });
        }
        if self.n != n {
            *self = Self::try_identity(n)?;
        }
        let half_n = n / 2;
        let wd = w.as_slice();
        for (s, stage) in self.stages.iter_mut().enumerate() {
            let row = &wd[s * 2 * n..(s + 1) * 2 * n];
            stage.w1.copy_from_slice(&row[..half_n]);
            stage.w2.copy_from_slice(&row[half_n..2 * half_n]);
            stage.w3.copy_from_slice(&row[2 * half_n..3 * half_n]);
            stage.w4.copy_from_slice(&row[3 * half_n..]);
        }
        Ok(())
    }

    /// Runs the forward pass, recording the input of every stage into the
    /// flat `states` buffer of `scratch` (slot `s` holds the input of stage
    /// `s`; the final slot holds the output).
    fn forward_stages_into(&self, x: &[f32], states: &mut [f32]) {
        let n = self.n;
        debug_assert_eq!(states.len(), (self.stages.len() + 1) * n);
        states[..n].copy_from_slice(x);
        for (s, stage) in self.stages.iter().enumerate() {
            let (src, rest) = states[s * n..].split_at_mut(n);
            stage.apply_into(src, &mut rest[..n]);
        }
    }

    /// Applies the butterfly matrix, also returning the input of every stage
    /// (needed by the backward pass).
    pub fn forward_with_intermediates(&self, x: &[f32]) -> (Vec<f32>, Vec<Vec<f32>>) {
        assert_eq!(x.len(), self.n, "butterfly input length mismatch");
        let mut scratch = ButterflyScratch::new(self.n);
        self.forward_stages_into(x, &mut scratch.states);
        let n = self.n;
        let stages = self.stages.len();
        let intermediates =
            (0..stages).map(|s| scratch.states[s * n..(s + 1) * n].to_vec()).collect();
        (scratch.states[stages * n..].to_vec(), intermediates)
    }

    /// Backward pass for one vector: given the gradient with respect to the
    /// output, returns the gradient with respect to the input and the
    /// gradient with respect to the weight tensor (same layout as
    /// [`ButterflyMatrix::to_weight_tensor`]).
    pub fn backward(&self, x: &[f32], grad_out: &[f32]) -> (Vec<f32>, Tensor) {
        let mut scratch = ButterflyScratch::new(self.n);
        let mut grad_w = Tensor::zeros(&[self.num_stages(), 2 * self.n]);
        self.backward_with_scratch(x, grad_out, &mut scratch, grad_w.as_mut_slice());
        (scratch.grad.clone(), grad_w)
    }

    /// Allocation-free backward pass for one vector on the specialized
    /// per-stage kernels ([`ButterflyStage::backward_into`]).
    ///
    /// On return `scratch.grad` holds the input gradient and the weight
    /// gradients have been **accumulated** (`+=`) into `grad_w`, which must
    /// have the `[log2 n, 2 n]` layout of [`ButterflyMatrix::to_weight_tensor`]
    /// flattened row-major. Results are bit-identical to
    /// [`ButterflyMatrix::backward_with_scratch_reference`].
    ///
    /// # Panics
    ///
    /// Panics when `x`, `grad_out`, `scratch` or `grad_w` have the wrong size.
    pub fn backward_with_scratch(
        &self,
        x: &[f32],
        grad_out: &[f32],
        scratch: &mut ButterflyScratch,
        grad_w: &mut [f32],
    ) {
        let n = self.n;
        assert_eq!(x.len(), n, "butterfly input length mismatch");
        assert_eq!(grad_out.len(), n, "butterfly gradient length mismatch");
        self.forward_stages_into(x, &mut scratch.states);
        self.backward_stages(grad_out, scratch, grad_w);
    }

    /// Fused pad + backward for one vector: `x` holds only the first `d_in`
    /// elements (the rest of the transform input is an implicit zero pad) and
    /// `grad_out` only the first `d_out` output gradients (the truncated
    /// columns receive zero gradient). On return `scratch.grad[..d_in]`
    /// holds the input gradient; weight gradients are accumulated into
    /// `grad_w`. Bit-identical to materialising the pads and calling
    /// [`ButterflyMatrix::backward_with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics when `x` or `grad_out` are wider than the transform.
    pub fn backward_padded_with_scratch(
        &self,
        x: &[f32],
        grad_out: &[f32],
        scratch: &mut ButterflyScratch,
        grad_w: &mut [f32],
    ) {
        self.forward_stages_padded_into(x, grad_out, scratch);
        self.backward_stages(grad_out, scratch, grad_w);
    }

    /// Padded-variant of [`ButterflyMatrix::backward_padded_with_scratch`]
    /// accumulating into the scratch's own `gw_partial`.
    fn backward_padded_with_scratch_split(
        &self,
        x: &[f32],
        grad_out: &[f32],
        s: &mut ButterflyScratch,
    ) {
        self.forward_stages_padded_into(x, grad_out, s);
        let ButterflyScratch { states, grad, grad_tmp, gw_partial, .. } = s;
        self.backward_stages_raw(grad_out, states, grad, grad_tmp, gw_partial);
    }

    fn forward_stages_padded_into(
        &self,
        x: &[f32],
        grad_out: &[f32],
        scratch: &mut ButterflyScratch,
    ) {
        let n = self.n;
        assert!(x.len() <= n, "butterfly pad width {} exceeds transform size {n}", x.len());
        assert!(grad_out.len() <= n, "butterfly gradient width exceeds transform size {n}");
        assert_eq!(scratch.n, n, "scratch size mismatch");
        scratch.states[..x.len()].copy_from_slice(x);
        scratch.states[x.len()..n].fill(0.0);
        for (s, stage) in self.stages.iter().enumerate() {
            let (src, rest) = scratch.states[s * n..].split_at_mut(n);
            stage.apply_into(src, &mut rest[..n]);
        }
    }

    /// Reverse sweep shared by the backward entry points: expects
    /// `scratch.states` to hold the per-stage activations, seeds the gradient
    /// ping-pong buffers from `grad_out` (zero-extended to the transform
    /// size) and runs the specialized stage kernels.
    fn backward_stages(
        &self,
        grad_out: &[f32],
        scratch: &mut ButterflyScratch,
        grad_w: &mut [f32],
    ) {
        assert_eq!(scratch.n, self.n, "scratch size mismatch");
        let ButterflyScratch { states, grad, grad_tmp, .. } = scratch;
        self.backward_stages_raw(grad_out, states, grad, grad_tmp, grad_w);
    }

    fn backward_stages_raw(
        &self,
        grad_out: &[f32],
        states: &[f32],
        grad: &mut Vec<f32>,
        grad_tmp: &mut Vec<f32>,
        grad_w: &mut [f32],
    ) {
        let n = self.n;
        assert_eq!(grad_w.len(), self.num_stages() * 2 * n, "weight gradient length mismatch");
        grad[..grad_out.len()].copy_from_slice(grad_out);
        grad[grad_out.len()..].fill(0.0);
        for (s, stage) in self.stages.iter().enumerate().rev() {
            let input = &states[s * n..(s + 1) * n];
            let gw = &mut grad_w[s * 2 * n..(s + 1) * 2 * n];
            stage.backward_into(input, grad, grad_tmp, gw);
            std::mem::swap(grad, grad_tmp);
        }
    }

    /// [`ButterflyMatrix::backward_with_scratch`] accumulating the weight
    /// gradient into the scratch's own `gw_partial` buffer.
    fn backward_with_scratch_split(&self, x: &[f32], grad_out: &[f32], s: &mut ButterflyScratch) {
        assert_eq!(s.n, self.n, "scratch size mismatch");
        self.forward_stages_into(x, &mut s.states);
        let ButterflyScratch { states, grad, grad_tmp, gw_partial, .. } = s;
        self.backward_stages_raw(grad_out, states, grad, grad_tmp, gw_partial);
    }

    /// The seed's generic reverse stage loop over raw scratch slices.
    fn backward_stages_reference_raw(
        &self,
        grad_out: &[f32],
        states: &[f32],
        grad: &mut Vec<f32>,
        grad_tmp: &mut Vec<f32>,
        grad_w: &mut [f32],
    ) {
        let n = self.n;
        assert_eq!(grad_w.len(), self.num_stages() * 2 * n, "weight gradient length mismatch");
        grad.copy_from_slice(grad_out);
        let half_n = n / 2;
        for (s, stage) in self.stages.iter().enumerate().rev() {
            let input = &states[s * n..(s + 1) * n];
            let gw = &mut grad_w[s * 2 * n..(s + 1) * 2 * n];
            let half = stage.half;
            let grad_in = &mut *grad_tmp;
            let mut p = 0;
            for block_start in (0..n).step_by(2 * half) {
                for off in 0..half {
                    let (i1, i2) = (block_start + off, block_start + off + half);
                    let (g1, g2) = (grad[i1], grad[i2]);
                    let (a, b) = (input[i1], input[i2]);
                    let pi = p + off;
                    gw[pi] += g1 * a;
                    gw[half_n + pi] += g1 * b;
                    gw[2 * half_n + pi] += g2 * a;
                    gw[3 * half_n + pi] += g2 * b;
                    let (w1, w2, w3, w4) = (stage.w1[pi], stage.w2[pi], stage.w3[pi], stage.w4[pi]);
                    grad_in[i1] = w1 * g1 + w3 * g2;
                    grad_in[i2] = w2 * g1 + w4 * g2;
                }
                p += half;
            }
            std::mem::swap(grad, grad_tmp);
        }
    }

    /// The seed's generic backward loop, kept verbatim as the ground-truth
    /// oracle for the specialized stage kernels (the PR-1 tape used exactly
    /// this inner loop). Semantics match
    /// [`ButterflyMatrix::backward_with_scratch`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when `x`, `grad_out`, `scratch` or `grad_w` have the wrong size.
    pub fn backward_with_scratch_reference(
        &self,
        x: &[f32],
        grad_out: &[f32],
        scratch: &mut ButterflyScratch,
        grad_w: &mut [f32],
    ) {
        let n = self.n;
        assert_eq!(x.len(), n, "butterfly input length mismatch");
        assert_eq!(grad_out.len(), n, "butterfly gradient length mismatch");
        assert_eq!(scratch.n, n, "scratch size mismatch");
        // Recompute the activations through the seed's generic stage loop,
        // exactly as the pre-PR backward did, then run its reverse sweep.
        scratch.states[..n].copy_from_slice(x);
        for (s, stage) in self.stages.iter().enumerate() {
            let (src, rest) = scratch.states[s * n..].split_at_mut(n);
            stage.apply_into_reference(src, &mut rest[..n]);
        }
        let ButterflyScratch { states, grad, grad_tmp, .. } = scratch;
        self.backward_stages_reference_raw(grad_out, states, grad, grad_tmp, grad_w);
    }

    /// Batched backward pass over every row of `x` (shape `[rows, n]`) given
    /// the output gradients `grad_out` (same shape).
    ///
    /// Returns `(grad_x, grad_w)` where `grad_x` has the shape of `x` and
    /// `grad_w` the `[log2 n, 2 n]` weight layout, summed over rows. Rows are
    /// processed in parallel chunks, each chunk reusing one
    /// [`ButterflyScratch`] and accumulating into a chunk-local weight
    /// gradient that is reduced at the end — so the per-row inner loop never
    /// touches the heap.
    ///
    /// # Panics
    ///
    /// Panics when shapes do not match the butterfly size.
    pub fn backward_rows(&self, x: &Tensor, grad_out: &Tensor) -> (Tensor, Tensor) {
        let mut grad_x = Tensor::zeros(&[x.rows(), self.n]);
        let mut grad_w = Tensor::zeros(&[self.num_stages(), 2 * self.n]);
        self.backward_rows_into(x, grad_out, grad_x.as_mut_slice(), grad_w.as_mut_slice());
        (grad_x, grad_w)
    }

    /// [`ButterflyMatrix::backward_rows`] accumulating into caller-provided
    /// buffers: `grad_x` (length `rows · n`) and `grad_w` (length
    /// `log2 n · 2 n`) both receive `+=` contributions, so the kernel can
    /// write straight into the autodiff tape's reusable gradient buffers.
    /// The serial path reuses a thread-local [`ButterflyScratch`], making
    /// steady-state training backward passes allocation-free.
    ///
    /// Chunking is fixed by [`CHUNK_ELEMS`] (never by the worker count) and
    /// chunk partials are reduced in ascending order, so results are
    /// independent of `RAYON_NUM_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics when shapes do not match the butterfly size.
    pub fn backward_rows_into(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        grad_x: &mut [f32],
        grad_w: &mut [f32],
    ) {
        self.backward_rows_into_impl(x, grad_out, grad_x, grad_w, false);
    }

    /// [`ButterflyMatrix::backward_rows_into`] on the seed's generic
    /// per-stage backward loop
    /// ([`ButterflyMatrix::backward_with_scratch_reference`]) with identical
    /// chunking — the oracle the specialized path is validated against, and
    /// the baseline kernel of the training benches.
    ///
    /// # Panics
    ///
    /// Panics when shapes do not match the butterfly size.
    pub fn backward_rows_reference_into(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        grad_x: &mut [f32],
        grad_w: &mut [f32],
    ) {
        self.backward_rows_into_impl(x, grad_out, grad_x, grad_w, true);
    }

    /// [`ButterflyMatrix::backward_rows`] on the seed reference kernel.
    pub fn backward_rows_reference(&self, x: &Tensor, grad_out: &Tensor) -> (Tensor, Tensor) {
        let mut grad_x = Tensor::zeros(&[x.rows(), self.n]);
        let mut grad_w = Tensor::zeros(&[self.num_stages(), 2 * self.n]);
        self.backward_rows_reference_into(
            x,
            grad_out,
            grad_x.as_mut_slice(),
            grad_w.as_mut_slice(),
        );
        (grad_x, grad_w)
    }

    fn backward_rows_into_impl(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        grad_x: &mut [f32],
        grad_w: &mut [f32],
        reference: bool,
    ) {
        let n = self.n;
        assert_eq!(x.cols(), n, "butterfly row width mismatch");
        assert_eq!(grad_out.shape(), x.shape(), "gradient shape mismatch");
        let rows = x.rows();
        assert_eq!(grad_x.len(), rows * n, "input gradient length mismatch");
        let gw_len = self.num_stages() * 2 * n;
        assert_eq!(grad_w.len(), gw_len, "weight gradient length mismatch");
        let row_backward =
            |xrow: &[f32], gorow: &[f32], s: &mut ButterflyScratch, gw: &mut [f32]| {
                if reference {
                    self.backward_with_scratch_reference(xrow, gorow, s, gw);
                } else {
                    self.backward_with_scratch(xrow, gorow, s, gw);
                }
            };
        if rows * n < PAR_MIN_ELEMS {
            // Serial path: accumulate straight into the caller's buffers,
            // reusing the thread-local scratch (zero allocation).
            with_tls_scratch(n, |scratch| {
                for (r, grow) in grad_x.chunks_mut(n).enumerate() {
                    let xrow = &x.as_slice()[r * n..(r + 1) * n];
                    let gorow = &grad_out.as_slice()[r * n..(r + 1) * n];
                    row_backward(xrow, gorow, scratch, grad_w);
                    for (d, &s) in grow.iter_mut().zip(scratch.grad.iter()) {
                        *d += s;
                    }
                }
            });
            return;
        }
        let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
        if rayon::current_num_threads() <= 1 && !reference {
            // One worker: walk the same fixed-size chunks serially, staging
            // each chunk's weight gradient in the reused scratch accumulator
            // — bit-identical to the parallel reduction below, with zero
            // per-call allocation. (The reference path keeps the seed's
            // per-call chunk allocations, being the pre-PR cost model.)
            with_tls_scratch(n, |scratch| {
                for (c, gchunk) in grad_x.chunks_mut(rows_per_chunk * n).enumerate() {
                    scratch.gw_partial.fill(0.0);
                    let r0 = c * rows_per_chunk;
                    for (i, grow) in gchunk.chunks_mut(n).enumerate() {
                        let r = r0 + i;
                        let xrow = &x.as_slice()[r * n..(r + 1) * n];
                        let gorow = &grad_out.as_slice()[r * n..(r + 1) * n];
                        self.backward_with_scratch_split(xrow, gorow, scratch);
                        for (d, &s) in grow.iter_mut().zip(scratch.grad.iter()) {
                            *d += s;
                        }
                    }
                    for (d, &v) in grad_w.iter_mut().zip(scratch.gw_partial.iter()) {
                        *d += v;
                    }
                }
            });
            return;
        }
        let partials: Vec<Vec<f32>> = grad_x
            .par_chunks_mut(rows_per_chunk * n)
            .enumerate()
            .map(|(c, chunk)| {
                let r0 = c * rows_per_chunk;
                let mut scratch = ButterflyScratch::new(n);
                let mut gw = vec![0.0f32; gw_len];
                for (i, grow) in chunk.chunks_mut(n).enumerate() {
                    let r = r0 + i;
                    let xrow = &x.as_slice()[r * n..(r + 1) * n];
                    let gorow = &grad_out.as_slice()[r * n..(r + 1) * n];
                    row_backward(xrow, gorow, &mut scratch, &mut gw);
                    for (d, &s) in grow.iter_mut().zip(scratch.grad.iter()) {
                        *d += s;
                    }
                }
                gw
            })
            .collect();
        for partial in &partials {
            for (d, &v) in grad_w.iter_mut().zip(partial.iter()) {
                *d += v;
            }
        }
    }

    /// Fused pad + backward over rows: `x` is `[rows, d_in]` (implicitly
    /// zero-padded to the transform size), `grad_out` is `[rows, d_out]`
    /// (the truncated output columns receive zero gradient). Accumulates the
    /// `[rows, d_in]` input gradient into `grad_x` and the weight gradient
    /// into `grad_w` — without ever materialising the padded tensors the
    /// unfused `concat → butterfly → slice` graph would allocate.
    ///
    /// # Panics
    ///
    /// Panics when widths exceed the transform size or row counts differ.
    pub fn backward_rows_padded_into(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        grad_x: &mut [f32],
        grad_w: &mut [f32],
    ) {
        let n = self.n;
        let (d_in, d_out) = (x.cols(), grad_out.cols());
        assert!(d_in <= n, "butterfly pad width {d_in} exceeds transform size {n}");
        assert!(d_out <= n, "butterfly gradient width {d_out} exceeds transform size {n}");
        let rows = x.rows();
        assert_eq!(grad_out.rows(), rows, "gradient row count mismatch");
        assert_eq!(grad_x.len(), rows * d_in, "input gradient length mismatch");
        let gw_len = self.num_stages() * 2 * n;
        assert_eq!(grad_w.len(), gw_len, "weight gradient length mismatch");
        let run_rows = |r0: usize, gx: &mut [f32], s: &mut ButterflyScratch, gw: &mut [f32]| {
            for (i, grow) in gx.chunks_mut(d_in).enumerate() {
                let r = r0 + i;
                let xrow = &x.as_slice()[r * d_in..(r + 1) * d_in];
                let gorow = &grad_out.as_slice()[r * d_out..(r + 1) * d_out];
                self.backward_padded_with_scratch(xrow, gorow, s, gw);
                for (d, &v) in grow.iter_mut().zip(s.grad[..d_in].iter()) {
                    *d += v;
                }
            }
        };
        if rows * n < PAR_MIN_ELEMS {
            with_tls_scratch(n, |scratch| run_rows(0, grad_x, scratch, grad_w));
            return;
        }
        let rows_per_chunk = (CHUNK_ELEMS / n).max(1);
        if rayon::current_num_threads() <= 1 {
            // One worker: same fixed-size chunks, reused scratch accumulator
            // (see `backward_rows_into_impl`).
            with_tls_scratch(n, |scratch| {
                for (c, gchunk) in grad_x.chunks_mut(rows_per_chunk * d_in).enumerate() {
                    scratch.gw_partial.fill(0.0);
                    let r0 = c * rows_per_chunk;
                    for (i, grow) in gchunk.chunks_mut(d_in).enumerate() {
                        let r = r0 + i;
                        let xrow = &x.as_slice()[r * d_in..(r + 1) * d_in];
                        let gorow = &grad_out.as_slice()[r * d_out..(r + 1) * d_out];
                        self.backward_padded_with_scratch_split(xrow, gorow, scratch);
                        for (d, &v) in grow.iter_mut().zip(scratch.grad[..d_in].iter()) {
                            *d += v;
                        }
                    }
                    for (d, &v) in grad_w.iter_mut().zip(scratch.gw_partial.iter()) {
                        *d += v;
                    }
                }
            });
            return;
        }
        let partials: Vec<Vec<f32>> = grad_x
            .par_chunks_mut(rows_per_chunk * d_in)
            .enumerate()
            .map(|(c, chunk)| {
                let mut scratch = ButterflyScratch::new(n);
                let mut gw = vec![0.0f32; gw_len];
                run_rows(c * rows_per_chunk, chunk, &mut scratch, &mut gw);
                gw
            })
            .collect();
        for partial in &partials {
            for (d, &v) in grad_w.iter_mut().zip(partial.iter()) {
                *d += v;
            }
        }
    }

    /// Expands the butterfly factorisation into a dense `n × n` matrix `B`
    /// such that `forward(x) = B x`.
    pub fn to_dense(&self) -> Tensor {
        let mut dense = Tensor::zeros(&[self.n, self.n]);
        for j in 0..self.n {
            let mut e = vec![0.0f32; self.n];
            e[j] = 1.0;
            let col = self.forward(&e);
            for (i, &v) in col.iter().enumerate() {
                dense.set(i, j, v);
            }
        }
        dense
    }

    /// Serialises the weights to a `[log2 n, 2 n]` tensor. Row `s` stores
    /// `[w1 | w2 | w3 | w4]`, each of length `n / 2`.
    pub fn to_weight_tensor(&self) -> Tensor {
        let half_n = self.n / 2;
        let mut w = Tensor::zeros(&[self.num_stages(), 2 * self.n]);
        for (s, stage) in self.stages.iter().enumerate() {
            for p in 0..stage.pairs() {
                w.set(s, p, stage.w1[p]);
                w.set(s, half_n + p, stage.w2[p]);
                w.set(s, 2 * half_n + p, stage.w3[p]);
                w.set(s, 3 * half_n + p, stage.w4[p]);
            }
        }
        w
    }

    /// Reconstructs a butterfly matrix from a `[log2 n, 2 n]` weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ButterflyError::WeightShapeMismatch`] when the tensor shape
    /// does not correspond to a valid power-of-two butterfly layout, and
    /// [`ButterflyError::NotPowerOfTwo`] when the implied size is invalid.
    pub fn from_weight_tensor(w: &Tensor) -> Result<Self, ButterflyError> {
        let shape = w.shape();
        if shape.len() != 2 {
            return Err(ButterflyError::WeightShapeMismatch {
                expected: vec![0, 0],
                got: shape.to_vec(),
            });
        }
        let stages = shape[0];
        let n = shape[1] / 2;
        let valid =
            n >= 2 && n.is_power_of_two() && shape[1] == 2 * n && log2_exact(n.max(2)) == stages;
        if !valid {
            return Err(ButterflyError::WeightShapeMismatch {
                expected: vec![stages, 2 * n],
                got: shape.to_vec(),
            });
        }
        let mut m = Self::try_identity(n)?;
        let half_n = n / 2;
        for (s, stage) in m.stages.iter_mut().enumerate() {
            for p in 0..half_n {
                stage.w1[p] = w.at(s, p);
                stage.w2[p] = w.at(s, half_n + p);
                stage.w3[p] = w.at(s, 2 * half_n + p);
                stage.w4[p] = w.at(s, 3 * half_n + p);
            }
        }
        Ok(m)
    }
}

thread_local! {
    /// Per-thread freelist of [`ButterflyScratch`] buffers, keyed by size.
    static SCRATCH_POOL: std::cell::RefCell<Vec<ButterflyScratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Per-thread freelist of [`ButterflyMatrix`] objects for
    /// [`PooledButterfly`].
    static MATRIX_POOL: std::cell::RefCell<Vec<ButterflyMatrix>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with a thread-locally pooled [`ButterflyScratch`] of size `n`:
/// after the first call on a given thread, no allocation is performed.
pub fn with_tls_scratch<R>(n: usize, f: impl FnOnce(&mut ButterflyScratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        match pool.iter().position(|s| s.n == n) {
            Some(i) => pool.swap_remove(i),
            None => ButterflyScratch::new(n),
        }
    });
    let r = f(&mut scratch);
    SCRATCH_POOL.with(|p| p.borrow_mut().push(scratch));
    r
}

/// A [`ButterflyMatrix`] checked out of a thread-local pool and loaded from a
/// weight tensor; returned to the pool on drop. The training tape uses this
/// so re-recording a butterfly op every step reuses the factor storage
/// instead of reallocating `4 · log2 n` weight vectors.
#[derive(Debug)]
pub struct PooledButterfly {
    inner: Option<ButterflyMatrix>,
}

impl PooledButterfly {
    /// Checks a matrix out of the pool (or builds one) and loads `w` into it.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`ButterflyMatrix::from_weight_tensor`].
    pub fn from_weight_tensor(w: &Tensor) -> Result<Self, ButterflyError> {
        let shape = w.shape();
        let n = if shape.len() == 2 { shape[1] / 2 } else { 0 };
        let mut m = MATRIX_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            match pool.iter().position(|m| m.n == n) {
                Some(i) => pool.swap_remove(i),
                None => ButterflyMatrix::identity(2),
            }
        });
        match m.load_weight_tensor(w) {
            Ok(()) => Ok(Self { inner: Some(m) }),
            Err(e) => {
                MATRIX_POOL.with(|p| p.borrow_mut().push(m));
                Err(e)
            }
        }
    }
}

impl std::ops::Deref for PooledButterfly {
    type Target = ButterflyMatrix;

    fn deref(&self) -> &ButterflyMatrix {
        self.inner.as_ref().expect("pooled matrix present until drop")
    }
}

impl Drop for PooledButterfly {
    fn drop(&mut self) {
        if let Some(m) = self.inner.take() {
            MATRIX_POOL.with(|p| p.borrow_mut().push(m));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_forward_is_noop() {
        let b = ButterflyMatrix::identity(16);
        let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(b.forward(&x), x);
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        assert!(ButterflyMatrix::try_identity(12).is_err());
        assert!(ButterflyMatrix::try_identity(0).is_err());
        assert!(ButterflyMatrix::try_identity(1).is_err());
        assert!(ButterflyMatrix::try_identity(2).is_ok());
    }

    #[test]
    fn parameter_count_is_2n_logn() {
        let b = ButterflyMatrix::identity(64);
        assert_eq!(b.num_params(), 2 * 64 * 6);
    }

    #[test]
    fn forward_matches_dense_expansion() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = ButterflyMatrix::random(16, &mut rng).unwrap();
        let dense = b.to_dense();
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.17).sin()).collect();
        let fast = b.forward(&x);
        // dense * x (column-vector convention)
        for (i, &f) in fast.iter().enumerate() {
            let slow: f32 = (0..16).map(|j| dense.at(i, j) * x[j]).sum();
            assert!((slow - f).abs() < 1e-4, "row {i}: {slow} vs {f}");
        }
    }

    #[test]
    fn dense_expansion_is_not_low_rank_trivial() {
        // The butterfly product of log2(n) sparse factors should produce a
        // dense matrix (global connectivity), not a block-diagonal one.
        let mut rng = StdRng::seed_from_u64(3);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let dense = b.to_dense();
        // Element coupling position 0 with position 7 must be reachable.
        assert!(dense.at(7, 0).abs() > 1e-8 || dense.at(0, 7).abs() > 1e-8);
    }

    #[test]
    fn weight_tensor_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = ButterflyMatrix::random(32, &mut rng).unwrap();
        let w = b.to_weight_tensor();
        assert_eq!(w.shape(), &[5, 64]);
        let b2 = ButterflyMatrix::from_weight_tensor(&w).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn from_weight_tensor_rejects_bad_shapes() {
        let w = Tensor::zeros(&[3, 10]);
        assert!(ButterflyMatrix::from_weight_tensor(&w).is_err());
        let w = Tensor::zeros(&[4, 16]); // implies n=8 but log2(8)=3 != 4
        assert!(ButterflyMatrix::from_weight_tensor(&w).is_err());
    }

    #[test]
    fn backward_input_gradient_matches_dense_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.29).cos()).collect();
        let g: Vec<f32> = (0..8).map(|i| (i as f32 * 0.53).sin()).collect();
        let (grad_x, _) = b.backward(&x, &g);
        let dense = b.to_dense();
        for (j, &gx) in grad_x.iter().enumerate() {
            let expected: f32 = (0..8).map(|i| dense.at(i, j) * g[i]).sum();
            assert!((expected - gx).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_weight_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(23);
        let b = ButterflyMatrix::random(8, &mut rng).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.41).sin()).collect();
        let g = vec![1.0f32; 8]; // loss = sum of outputs
        let (_, grad_w) = b.backward(&x, &g);
        let w = b.to_weight_tensor();
        let eps = 1e-3f32;
        for s in 0..w.rows() {
            for c in 0..w.cols() {
                let mut wp = w.clone();
                wp.set(s, c, w.at(s, c) + eps);
                let mut wm = w.clone();
                wm.set(s, c, w.at(s, c) - eps);
                let fp: f32 =
                    ButterflyMatrix::from_weight_tensor(&wp).unwrap().forward(&x).iter().sum();
                let fm: f32 =
                    ButterflyMatrix::from_weight_tensor(&wm).unwrap().forward(&x).iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                let analytic = grad_w.at(s, c);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "stage {s} col {c}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn forward_rows_applies_per_row() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = ButterflyMatrix::random(4, &mut rng).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0], &[2, 4]).unwrap();
        let y = b.forward_rows(&x);
        let r0 = b.forward(&[1.0, 0.0, 0.0, 0.0]);
        let r1 = b.forward(&[0.0, 1.0, 0.0, 0.0]);
        for c in 0..4 {
            assert!((y.at(0, c) - r0[c]).abs() < 1e-6);
            assert!((y.at(1, c) - r1[c]).abs() < 1e-6);
        }
    }

    #[test]
    fn stage_pairing_matches_fft_pattern() {
        // Stage 0 pairs adjacent elements, the final stage pairs elements n/2 apart.
        let b = ButterflyMatrix::identity(16);
        assert_eq!(b.stages()[0].pair_indices(0), (0, 1));
        assert_eq!(b.stages()[3].pair_indices(0), (0, 8));
        assert_eq!(b.stages()[3].pair_indices(1), (1, 9));
    }
}
