//! The sparsity-pattern taxonomy of the paper's Section III-A.
//!
//! Fig. 4 classifies the basic sparsity patterns found in efficient
//! Transformer variants by their data-access regularity, hardware efficiency
//! and the information range they capture; Table II lists which patterns each
//! published variant combines. This module makes that taxonomy machine
//! checkable: each pattern can generate its boolean attention mask and report
//! its access properties, and the variant catalogue is available as data.

use serde::{Deserialize, Serialize};

/// The five basic sparsity patterns of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SparsityPattern {
    /// Low-rank projection of the attention matrix (e.g. Linformer).
    LowRank,
    /// Banded/sliding-window locality (e.g. Longformer's local windows).
    SlidingWindow,
    /// Recursive butterfly connectivity (FFT-like), the pattern this paper adopts.
    Butterfly,
    /// Unstructured random sparsity.
    Random,
    /// Coarse block-wise sparsity (e.g. Reformer buckets).
    BlockWise,
}

/// How a pattern reads its operands from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataAccess {
    /// Requires both sequential row and column reads.
    RowAndColumn,
    /// Strided but regular reads.
    RegularStride,
    /// Data-dependent random reads.
    RandomRead,
}

/// The information range a pattern can capture in one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InfoRange {
    /// Only long-range/global token relationships.
    Global,
    /// Only short-range/local token relationships.
    Local,
    /// Both global and local relationships.
    GlobalAndLocal,
}

impl SparsityPattern {
    /// All five basic patterns, in the order of Fig. 4.
    pub const ALL: [SparsityPattern; 5] = [
        SparsityPattern::LowRank,
        SparsityPattern::SlidingWindow,
        SparsityPattern::Butterfly,
        SparsityPattern::Random,
        SparsityPattern::BlockWise,
    ];

    /// The data-access behaviour of this pattern (Fig. 4, "Data Access" row).
    pub fn data_access(self) -> DataAccess {
        match self {
            SparsityPattern::LowRank => DataAccess::RowAndColumn,
            SparsityPattern::SlidingWindow
            | SparsityPattern::Butterfly
            | SparsityPattern::BlockWise => DataAccess::RegularStride,
            SparsityPattern::Random => DataAccess::RandomRead,
        }
    }

    /// Whether the pattern maps efficiently onto hardware without dynamic
    /// controllers (Fig. 4, "HW Eff." row).
    pub fn hardware_efficient(self) -> bool {
        matches!(self.data_access(), DataAccess::RegularStride)
    }

    /// The information range captured by the pattern (Fig. 4, "Info." row).
    pub fn info_range(self) -> InfoRange {
        match self {
            SparsityPattern::LowRank => InfoRange::Global,
            SparsityPattern::SlidingWindow | SparsityPattern::BlockWise => InfoRange::Local,
            SparsityPattern::Butterfly | SparsityPattern::Random => InfoRange::GlobalAndLocal,
        }
    }

    /// Generates the `n × n` boolean connectivity mask of this pattern.
    ///
    /// `density` controls the nominal fraction of non-zeros for the patterns
    /// that have a free parameter (window width, rank, block size, random
    /// density); the butterfly mask is fully determined by `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `density` is not in `(0, 1]`.
    pub fn mask(self, n: usize, density: f64) -> Vec<Vec<bool>> {
        assert!(n > 0, "mask size must be positive");
        assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
        let mut mask = vec![vec![false; n]; n];
        match self {
            SparsityPattern::LowRank => {
                let rank = ((n as f64 * density).ceil() as usize).max(1);
                // A rank-r factorisation touches r full rows and r full columns.
                for (i, row) in mask.iter_mut().enumerate() {
                    for (j, cell) in row.iter_mut().enumerate() {
                        *cell = i < rank || j < rank;
                    }
                }
            }
            SparsityPattern::SlidingWindow => {
                let w = ((n as f64 * density / 2.0).ceil() as usize).max(1);
                for (i, row) in mask.iter_mut().enumerate() {
                    for (j, cell) in row.iter_mut().enumerate() {
                        *cell = i.abs_diff(j) <= w;
                    }
                }
            }
            SparsityPattern::Butterfly => {
                // Union of the butterfly factors' supports: i and j connected
                // when they differ in at most one bit position block.
                for i in 0..n {
                    mask[i][i] = true;
                    let mut d = 1;
                    while d < n {
                        if i ^ d < n {
                            mask[i][i ^ d] = true;
                        }
                        d <<= 1;
                    }
                }
            }
            SparsityPattern::Random => {
                // Deterministic pseudo-random fill so the taxonomy stays reproducible.
                let mut state = 0x9E3779B97F4A7C15u64;
                for (i, row) in mask.iter_mut().enumerate() {
                    for (j, cell) in row.iter_mut().enumerate() {
                        state ^= (i as u64).wrapping_mul(0x100000001B3) ^ (j as u64) << 17;
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let sample = (state >> 33) as f64 / (1u64 << 31) as f64;
                        *cell = sample < density;
                    }
                }
            }
            SparsityPattern::BlockWise => {
                let blocks = (1.0 / density).round().max(1.0) as usize;
                let bs = (n / blocks).max(1);
                for (i, row) in mask.iter_mut().enumerate() {
                    for (j, cell) in row.iter_mut().enumerate() {
                        *cell = i / bs == j / bs;
                    }
                }
            }
        }
        mask
    }

    /// Fraction of non-zero entries in the pattern's mask.
    pub fn mask_density(self, n: usize, density: f64) -> f64 {
        let m = self.mask(n, density);
        let nnz: usize = m.iter().map(|r| r.iter().filter(|&&b| b).count()).sum();
        nnz as f64 / (n * n) as f64
    }
}

/// A published efficient-Transformer variant and the sparsity patterns it
/// combines (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantSpec {
    /// Variant name as given in the paper.
    pub name: &'static str,
    /// Basic patterns the variant combines.
    pub patterns: Vec<SparsityPattern>,
    /// Whether the variant sparsifies the attention mechanism.
    pub sparsifies_attention: bool,
    /// Whether the variant sparsifies the feed-forward network.
    pub sparsifies_ffn: bool,
    /// Whether attention and FFN share a single unified sparsity pattern.
    pub unified_sparsity: bool,
    /// Whether the variant was co-designed with hardware.
    pub hardware_codesign: bool,
}

/// Returns the Table II catalogue of published variants plus this work.
pub fn variant_catalogue() -> Vec<VariantSpec> {
    use SparsityPattern::*;
    vec![
        VariantSpec {
            name: "Performer/Linformer",
            patterns: vec![LowRank],
            sparsifies_attention: true,
            sparsifies_ffn: false,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "Reformer",
            patterns: vec![BlockWise],
            sparsifies_attention: true,
            sparsifies_ffn: false,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "Sparse Sinkhorn",
            patterns: vec![BlockWise, Random],
            sparsifies_attention: true,
            sparsifies_ffn: false,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "Longformer",
            patterns: vec![SlidingWindow, LowRank],
            sparsifies_attention: true,
            sparsifies_ffn: false,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "BigBird",
            patterns: vec![Random, SlidingWindow, LowRank],
            sparsifies_attention: true,
            sparsifies_ffn: false,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "FNet",
            patterns: vec![Butterfly],
            sparsifies_attention: true,
            sparsifies_ffn: false,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "Kaleidoscope",
            patterns: vec![Butterfly],
            sparsifies_attention: false,
            sparsifies_ffn: true,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "Sparse Transformer",
            patterns: vec![LowRank, Butterfly, SlidingWindow],
            sparsifies_attention: true,
            sparsifies_ffn: false,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "Pixelfly/Monarch",
            patterns: vec![Butterfly, BlockWise, LowRank],
            sparsifies_attention: true,
            sparsifies_ffn: true,
            unified_sparsity: false,
            hardware_codesign: false,
        },
        VariantSpec {
            name: "FABNet (this work)",
            patterns: vec![Butterfly],
            sparsifies_attention: true,
            sparsifies_ffn: true,
            unified_sparsity: true,
            hardware_codesign: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_is_the_only_hw_efficient_global_and_local_pattern() {
        let good: Vec<_> = SparsityPattern::ALL
            .iter()
            .filter(|p| p.hardware_efficient() && p.info_range() == InfoRange::GlobalAndLocal)
            .collect();
        assert_eq!(good, vec![&SparsityPattern::Butterfly]);
    }

    #[test]
    fn butterfly_mask_has_n_log_n_support() {
        let n = 64;
        let mask = SparsityPattern::Butterfly.mask(n, 1.0);
        let nnz: usize = mask.iter().map(|r| r.iter().filter(|&&b| b).count()).sum();
        // log2(64)=6 off-diagonal partners + the diagonal itself per row.
        assert_eq!(nnz, n * 7);
    }

    #[test]
    fn sliding_window_mask_is_banded() {
        let mask = SparsityPattern::SlidingWindow.mask(16, 0.25);
        assert!(mask[0][0] && mask[0][1]);
        assert!(!mask[0][15]);
    }

    #[test]
    fn random_mask_density_tracks_request() {
        let d = SparsityPattern::Random.mask_density(64, 0.3);
        assert!((d - 0.3).abs() < 0.1, "density {d}");
    }

    #[test]
    fn blockwise_mask_is_block_diagonal() {
        let mask = SparsityPattern::BlockWise.mask(16, 0.25);
        assert!(mask[0][3] && !mask[0][4]);
    }

    #[test]
    fn only_this_work_unifies_sparsity_across_attention_and_ffn() {
        let cat = variant_catalogue();
        let unified: Vec<_> = cat.iter().filter(|v| v.unified_sparsity).collect();
        assert_eq!(unified.len(), 1);
        assert!(unified[0].name.contains("FABNet"));
        assert!(unified[0].hardware_codesign);
    }

    #[test]
    fn catalogue_patterns_match_paper_counts() {
        let cat = variant_catalogue();
        assert_eq!(cat.len(), 10);
        let fnet = cat.iter().find(|v| v.name == "FNet").unwrap();
        assert_eq!(fnet.patterns, vec![SparsityPattern::Butterfly]);
    }
}
