//! Autodiff integration: butterfly linear transform and Fourier mixing as
//! differentiable tape operators.
//!
//! The operators are built for the arena tape's steady-state training loop:
//! forward values are computed straight into the tape's reused output
//! buffers, the factorised [`ButterflyMatrix`] is checked out of a
//! thread-local pool (and reloaded in place) instead of being rebuilt from
//! the weight tensor on every step, and the backward closures accumulate
//! into the tape's gradient buffers through the batched scratch-reusing
//! kernels. Under [`Tape::backward_reference`](fab_tensor::Tape) the same
//! closures route to the seed reference kernels, so the reference pass stays
//! a faithful oracle.

use crate::fourier::fourier_mix_into;
use crate::PooledButterfly;
use fab_tensor::{Tape, Tensor, VarId};
use std::cell::RefCell;

thread_local! {
    /// Reused staging tensor for the fourier-mix backward (the transform is
    /// self-adjoint but must be accumulated, not assigned, into the parent
    /// gradient).
    static MIX_SCRATCH: RefCell<Tensor> = RefCell::new(Tensor::default());
}

/// Records a butterfly linear transform `y = B(x)` on the tape, where the
/// butterfly weights are a trainable `[log2 n, 2 n]` tensor variable and each
/// row of `x` (shape `[rows, n]`) is transformed independently.
///
/// Gradients are computed directly on the factorised form — the dense `n × n`
/// matrix is never materialised, matching the `O(n log n)` compute of the
/// paper's butterfly layers. The backward pass runs the specialized
/// small-half stage kernels ([`ButterflyMatrix::backward_rows_into`]);
/// under the reference backward it runs the seed's generic loop instead.
///
/// # Panics
///
/// Panics when the weight variable does not have a valid butterfly layout or
/// `x` does not have `n` columns.
///
/// [`ButterflyMatrix::backward_rows_into`]: crate::ButterflyMatrix::backward_rows_into
pub fn butterfly_linear_op(tape: &Tape, x: VarId, weights: VarId) -> VarId {
    let bfly = tape
        .with_value(weights, PooledButterfly::from_weight_tensor)
        .expect("invalid butterfly weight tensor");
    let y = tape.push_custom_deferred("butterfly_linear", &[x, weights], |pv, out| {
        bfly.forward_rows_into(pv.get(0), out);
    });
    tape.set_backward(
        y,
        Box::new(move |ctx| {
            let reference = ctx.reference();
            let (g, pv, gw) = ctx.split();
            let xv = pv.get(0);
            let (dx, dw) = gw.into_parent_grad_pair(0, 1);
            if reference {
                bfly.backward_rows_reference_into(xv, g, dx, dw);
            } else {
                bfly.backward_rows_into(xv, g, dx, dw);
            }
        }),
    );
    y
}

/// Records a **fused pad + butterfly + truncate** linear transform: rows of
/// `x` (shape `[rows, d_in]`, `d_in <= n`) are implicitly zero-padded to the
/// transform size, transformed, and truncated to the first `d_out` output
/// columns — one tape node instead of the `zeros`-leaf + `concat_cols` +
/// butterfly + `slice_cols` chain, with no padded tensor ever materialised
/// in either direction. Values and gradients are bit-identical to the
/// unfused chain.
///
/// # Panics
///
/// Panics when the weight variable does not have a valid butterfly layout or
/// `d_in`/`d_out` exceed the transform size.
pub fn butterfly_linear_padded_op(tape: &Tape, x: VarId, weights: VarId, d_out: usize) -> VarId {
    let bfly = tape
        .with_value(weights, PooledButterfly::from_weight_tensor)
        .expect("invalid butterfly weight tensor");
    let y = tape.push_custom_deferred("butterfly_linear_padded", &[x, weights], |pv, out| {
        bfly.forward_rows_padded_trunc_into(pv.get(0), d_out, out);
    });
    tape.set_backward(
        y,
        Box::new(move |ctx| {
            let reference = ctx.reference();
            let (g, pv, gw) = ctx.split();
            let xv = pv.get(0);
            let (dx, dw) = gw.into_parent_grad_pair(0, 1);
            if reference {
                // Seed-fidelity path: materialise the pads and run the
                // reference batched backward, then accumulate the unpadded
                // gradient slice.
                let n = bfly.size();
                let (rows, d_in) = (xv.rows(), xv.cols());
                let mut xpad = Tensor::zeros(&[rows, n]);
                for (prow, row) in xpad.as_mut_slice().chunks_mut(n).zip(xv.as_slice().chunks(d_in))
                {
                    prow[..d_in].copy_from_slice(row);
                }
                let mut gpad = Tensor::zeros(&[rows, n]);
                for (prow, row) in gpad.as_mut_slice().chunks_mut(n).zip(g.as_slice().chunks(d_out))
                {
                    prow[..d_out].copy_from_slice(row);
                }
                let (gx, gwt) = bfly.backward_rows_reference(&xpad, &gpad);
                for (drow, grow) in dx.chunks_mut(d_in).zip(gx.as_slice().chunks(n)) {
                    for (d, &v) in drow.iter_mut().zip(grow[..d_in].iter()) {
                        *d += v;
                    }
                }
                for (d, &v) in dw.iter_mut().zip(gwt.as_slice().iter()) {
                    *d += v;
                }
            } else {
                bfly.backward_rows_padded_into(xv, g, dx, dw);
            }
        }),
    );
    y
}

/// Records the FNet 2-D Fourier token-mixing transform on the tape.
///
/// The operation has no trainable parameters; its backward pass applies the
/// same transform to the upstream gradient (the map is self-adjoint),
/// staging the result in a thread-local tensor before accumulating it into
/// the parent gradient buffer.
pub fn fourier_mix_op(tape: &Tape, x: VarId) -> VarId {
    let y = tape.push_custom_deferred("fourier_mix", &[x], |pv, out| {
        fourier_mix_into(pv.get(0), out);
    });
    tape.set_backward(
        y,
        Box::new(|ctx| {
            let (g, _pv, gw) = ctx.split();
            let mut gw = gw;
            MIX_SCRATCH.with(|s| {
                let mut tmp = s.borrow_mut();
                fourier_mix_into(g, &mut tmp);
                let dst = gw.parent_grad(0);
                for (d, &v) in dst.iter_mut().zip(tmp.as_slice().iter()) {
                    *d += v;
                }
            });
        }),
    );
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ButterflyMatrix;
    use fab_tensor::{check_gradient, Tensor};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn butterfly_op_forward_matches_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let bfly = ButterflyMatrix::random(8, &mut rng).unwrap();
        let tape = Tape::new();
        let x =
            Tensor::from_vec((0..16).map(|i| (i as f32 * 0.21).sin()).collect(), &[2, 8]).unwrap();
        let xv = tape.leaf(x.clone());
        let wv = tape.leaf(bfly.to_weight_tensor());
        let y = butterfly_linear_op(&tape, xv, wv);
        assert!(tape.value(y).allclose(&bfly.forward_rows(&x), 1e-5));
    }

    #[test]
    fn butterfly_op_input_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(13);
        let bfly = ButterflyMatrix::random(8, &mut rng).unwrap();
        let w = bfly.to_weight_tensor();
        let x =
            Tensor::from_vec((0..16).map(|i| (i as f32 * 0.37).cos()).collect(), &[2, 8]).unwrap();
        let ok = check_gradient(
            |tape, xv| {
                let wv = tape.leaf(w.clone());
                let y = butterfly_linear_op(tape, xv, wv);
                tape.sum(y)
            },
            &x,
            1e-2,
        );
        assert!(ok);
    }

    #[test]
    fn butterfly_op_weight_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(19);
        let bfly = ButterflyMatrix::random(4, &mut rng).unwrap();
        let w = bfly.to_weight_tensor();
        let x = Tensor::from_vec(vec![0.3, -0.8, 0.5, 1.2, -0.1, 0.4, 0.9, -0.6], &[2, 4]).unwrap();
        let ok = check_gradient(
            |tape, wv| {
                let xv = tape.leaf(x.clone());
                let y = butterfly_linear_op(tape, xv, wv);
                tape.sum(y)
            },
            &w,
            1e-2,
        );
        assert!(ok);
    }

    #[test]
    fn fourier_op_gradient_checks() {
        let x =
            Tensor::from_vec((0..32).map(|i| (i as f32 * 0.11).sin()).collect(), &[8, 4]).unwrap();
        let ok = check_gradient(
            |tape, xv| {
                let y = fourier_mix_op(tape, xv);
                let w = tape.leaf(
                    Tensor::from_vec(
                        (0..32).map(|i| ((i * 7 % 13) as f32) * 0.1 - 0.5).collect(),
                        &[8, 4],
                    )
                    .unwrap(),
                );
                let z = tape.mul(y, w);
                tape.sum(z)
            },
            &x,
            2e-2,
        );
        assert!(ok);
    }

    /// The fused pad+butterfly+truncate op must match the explicit
    /// `concat(zeros) → butterfly → slice` chain in value and in every
    /// gradient, on both the fused and the reference backward.
    #[test]
    fn padded_op_matches_unfused_chain() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 16;
        let bfly = ButterflyMatrix::random(n, &mut rng).unwrap();
        let w = bfly.to_weight_tensor();
        for (d_in, d_out, rows) in [(12, 6, 3), (16, 16, 2), (5, 16, 4), (16, 3, 1)] {
            let x = Tensor::from_vec(
                (0..rows * d_in).map(|i| ((i * 13 % 17) as f32) * 0.11 - 0.8).collect(),
                &[rows, d_in],
            )
            .unwrap();

            // Fused op.
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            let y = butterfly_linear_padded_op(&tape, xv, wv, d_out);
            let loss = tape.sum(y);
            tape.backward(loss);
            let (fval, fdx, fdw) = (tape.value(y), tape.grad(xv), tape.grad(wv));
            tape.backward_reference(loss);
            let (rdx, rdw) = (tape.grad(xv), tape.grad(wv));

            // Unfused chain.
            let tape2 = Tape::new();
            let xv2 = tape2.leaf(x.clone());
            let wv2 = tape2.leaf(w.clone());
            let padded = if d_in < n {
                let zeros = tape2.leaf(Tensor::zeros(&[rows, n - d_in]));
                tape2.concat_cols(&[xv2, zeros])
            } else {
                xv2
            };
            let full = butterfly_linear_op(&tape2, padded, wv2);
            let trimmed = if d_out < n { tape2.slice_cols(full, 0, d_out) } else { full };
            let loss2 = tape2.sum(trimmed);
            tape2.backward(loss2);

            assert_eq!(fval, tape2.value(trimmed), "value mismatch at {d_in}/{d_out}");
            assert_eq!(fdx, tape2.grad(xv2), "dx mismatch at {d_in}/{d_out}");
            assert_eq!(fdw, tape2.grad(wv2), "dw mismatch at {d_in}/{d_out}");
            assert_eq!(fdx, rdx, "fused vs reference dx mismatch at {d_in}/{d_out}");
            assert_eq!(fdw, rdw, "fused vs reference dw mismatch at {d_in}/{d_out}");
        }
    }

    /// Fused and reference backward must agree bit-for-bit on the plain op.
    #[test]
    fn fused_backward_matches_reference_backward() {
        let mut rng = StdRng::seed_from_u64(37);
        for n in [4usize, 8, 32] {
            let bfly = ButterflyMatrix::random(n, &mut rng).unwrap();
            let w = bfly.to_weight_tensor();
            let x = Tensor::from_vec(
                (0..3 * n).map(|i| ((i * 7 % 23) as f32) * 0.09 - 1.0).collect(),
                &[3, n],
            )
            .unwrap();
            let tape = Tape::new();
            let xv = tape.leaf(x);
            let wv = tape.leaf(w);
            let y = butterfly_linear_op(&tape, xv, wv);
            let loss = tape.sum(y);
            tape.backward(loss);
            let (fdx, fdw) = (tape.grad(xv), tape.grad(wv));
            tape.backward_reference(loss);
            assert_eq!(fdx, tape.grad(xv), "dx mismatch at n={n}");
            assert_eq!(fdw, tape.grad(wv), "dw mismatch at n={n}");
        }
    }
}
