//! Autodiff integration: butterfly linear transform and Fourier mixing as
//! differentiable tape operators.

use crate::fourier::{fourier_mix, fourier_mix_backward};
use crate::ButterflyMatrix;
use fab_tensor::{Tape, VarId};

/// Records a butterfly linear transform `y = B(x)` on the tape, where the
/// butterfly weights are a trainable `[log2 n, 2 n]` tensor variable and each
/// row of `x` (shape `[rows, n]`) is transformed independently.
///
/// Gradients are computed directly on the factorised form — the dense `n × n`
/// matrix is never materialised, matching the `O(n log n)` compute of the
/// paper's butterfly layers.
///
/// # Panics
///
/// Panics when the weight variable does not have a valid butterfly layout or
/// `x` does not have `n` columns.
pub fn butterfly_linear_op(tape: &Tape, x: VarId, weights: VarId) -> VarId {
    let wv = tape.value(weights);
    let bfly = ButterflyMatrix::from_weight_tensor(&wv).expect("invalid butterfly weight tensor");
    let xv = tape.value(x);
    let value = bfly.forward_rows(&xv);
    tape.push_custom_named(
        "butterfly_linear",
        value,
        &[x, weights],
        Box::new(move |g, parents, _| {
            let bfly = ButterflyMatrix::from_weight_tensor(&parents[1])
                .expect("invalid butterfly weight tensor in backward");
            // Batched, row-parallel backward: never falls back to the
            // per-vector path or materialises per-row gradient tensors.
            let (grad_x, grad_w) = bfly.backward_rows(&parents[0], g);
            vec![grad_x, grad_w]
        }),
    )
}

/// Records the FNet 2-D Fourier token-mixing transform on the tape.
///
/// The operation has no trainable parameters; its backward pass applies the
/// same transform to the upstream gradient (the map is self-adjoint).
pub fn fourier_mix_op(tape: &Tape, x: VarId) -> VarId {
    let value = fourier_mix(&tape.value(x));
    tape.push_custom_named(
        "fourier_mix",
        value,
        &[x],
        Box::new(|g, _, _| vec![fourier_mix_backward(g)]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_tensor::{check_gradient, Tensor};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn butterfly_op_forward_matches_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let bfly = ButterflyMatrix::random(8, &mut rng).unwrap();
        let tape = Tape::new();
        let x =
            Tensor::from_vec((0..16).map(|i| (i as f32 * 0.21).sin()).collect(), &[2, 8]).unwrap();
        let xv = tape.leaf(x.clone());
        let wv = tape.leaf(bfly.to_weight_tensor());
        let y = butterfly_linear_op(&tape, xv, wv);
        assert!(tape.value(y).allclose(&bfly.forward_rows(&x), 1e-5));
    }

    #[test]
    fn butterfly_op_input_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(13);
        let bfly = ButterflyMatrix::random(8, &mut rng).unwrap();
        let w = bfly.to_weight_tensor();
        let x =
            Tensor::from_vec((0..16).map(|i| (i as f32 * 0.37).cos()).collect(), &[2, 8]).unwrap();
        let ok = check_gradient(
            |tape, xv| {
                let wv = tape.leaf(w.clone());
                let y = butterfly_linear_op(tape, xv, wv);
                tape.sum(y)
            },
            &x,
            1e-2,
        );
        assert!(ok);
    }

    #[test]
    fn butterfly_op_weight_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(19);
        let bfly = ButterflyMatrix::random(4, &mut rng).unwrap();
        let w = bfly.to_weight_tensor();
        let x = Tensor::from_vec(vec![0.3, -0.8, 0.5, 1.2, -0.1, 0.4, 0.9, -0.6], &[2, 4]).unwrap();
        let ok = check_gradient(
            |tape, wv| {
                let xv = tape.leaf(x.clone());
                let y = butterfly_linear_op(tape, xv, wv);
                tape.sum(y)
            },
            &w,
            1e-2,
        );
        assert!(ok);
    }

    #[test]
    fn fourier_op_gradient_checks() {
        let x =
            Tensor::from_vec((0..32).map(|i| (i as f32 * 0.11).sin()).collect(), &[8, 4]).unwrap();
        let ok = check_gradient(
            |tape, xv| {
                let y = fourier_mix_op(tape, xv);
                let w = tape.leaf(
                    Tensor::from_vec(
                        (0..32).map(|i| ((i * 7 % 13) as f32) * 0.1 - 0.5).collect(),
                        &[8, 4],
                    )
                    .unwrap(),
                );
                let z = tape.mul(y, w);
                tape.sum(z)
            },
            &x,
            2e-2,
        );
        assert!(ok);
    }
}
