//! Radix-2 Cooley–Tukey FFT and the FNet-style 2-D Fourier transform.
//!
//! The iterative decimation-in-time formulation used here mirrors the
//! butterfly dataflow executed by the accelerator's Butterfly Engines: stage
//! `s` pairs elements at distance `2^s` and applies a complex twiddle
//! multiply followed by an add/subtract — exactly the Fig. 7(c) datapath of
//! the paper.

use crate::{log2_exact, Complex};
use rayon::prelude::*;

/// 2-D transforms below this many complex elements run serially; the rayon
/// shim spawns OS threads per call, which only pays off for real work.
const PAR_MIN_ELEMS: usize = 1 << 13;

/// Returns the bit-reversal permutation of `0..n`.
///
/// # Panics
///
/// Panics when `n` is not a power of two.
pub fn bit_reverse_permutation(n: usize) -> Vec<usize> {
    let bits = log2_exact(n);
    (0..n)
        .map(|i| {
            let mut r = 0usize;
            for b in 0..bits {
                if i & (1 << b) != 0 {
                    r |= 1 << (bits - 1 - b);
                }
            }
            r
        })
        .collect()
}

/// A precomputed radix-2 FFT execution plan for one transform size.
///
/// Holds the bit-reversal permutation and the per-stage forward twiddle
/// factors, so repeated transforms of the same size (every row of a batch,
/// every column of a 2-D transform) pay the trigonometry exactly once — the
/// seed's `fft_in_place` recomputed `e^{iθ}` for every (block, k) pair of
/// every call.
///
/// # Example
///
/// ```rust
/// use fab_butterfly::fft::FftPlan;
/// use fab_butterfly::Complex;
/// let plan = FftPlan::new(8);
/// let mut data = vec![Complex::one(); 8];
/// plan.execute(&mut data, false);
/// assert!((data[0].re - 8.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    perm: Vec<usize>,
    /// Forward twiddles, stage-major: stage with half-size `2^s` occupies
    /// `2^s` entries starting at offset `2^s - 1` (total `n - 1`).
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of size `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two greater than or equal to 2.
    pub fn new(n: usize) -> Self {
        let _ = log2_exact(n);
        let perm = bit_reverse_permutation(n);
        let mut twiddles = Vec::with_capacity(n - 1);
        let mut half = 1usize;
        while half < n {
            let step = -std::f32::consts::PI / half as f32;
            twiddles.extend((0..half).map(|k| Complex::from_polar(step * k as f32)));
            half *= 2;
        }
        Self { n, perm, twiddles }
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Executes the (inverse) transform in place, including the `1/n`
    /// normalisation for the inverse direction.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan size.
    pub fn execute(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "FFT plan size mismatch");
        // Bit-reversal reordering.
        for (i, &j) in self.perm.iter().enumerate() {
            if j > i {
                data.swap(i, j);
            }
        }
        // Butterfly stages: half = 1, 2, 4, ... n/2.
        let mut half = 1usize;
        while half < n {
            let stage_tw = &self.twiddles[half - 1..2 * half - 1];
            for block in data.chunks_mut(2 * half) {
                let (lo, hi) = block.split_at_mut(half);
                for ((l, h), &tw) in lo.iter_mut().zip(hi.iter_mut()).zip(stage_tw.iter()) {
                    let w = if inverse { tw.conj() } else { tw };
                    let a = *l;
                    let b = *h * w;
                    *l = a + b;
                    *h = a - b;
                }
            }
            half *= 2;
        }
        if inverse {
            let inv = 1.0 / n as f32;
            for v in data.iter_mut() {
                *v = *v * inv;
            }
        }
    }
}

/// In-place iterative radix-2 FFT (decimation in time).
///
/// When `inverse` is true the inverse transform is computed, including the
/// `1/n` normalisation. Builds a throwaway [`FftPlan`]; callers transforming
/// many same-sized vectors should build the plan once themselves.
///
/// # Panics
///
/// Panics when the length of `data` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    FftPlan::new(data.len()).execute(data, inverse);
}

/// Forward FFT of a complex slice, returning a new vector.
///
/// # Panics
///
/// Panics when the length is not a power of two.
pub fn fft(data: &[Complex]) -> Vec<Complex> {
    let mut out = data.to_vec();
    fft_in_place(&mut out, false);
    out
}

/// Inverse FFT of a complex slice, returning a new vector.
///
/// # Panics
///
/// Panics when the length is not a power of two.
pub fn ifft(data: &[Complex]) -> Vec<Complex> {
    let mut out = data.to_vec();
    fft_in_place(&mut out, true);
    out
}

/// Forward FFT of a real slice.
///
/// # Panics
///
/// Panics when the length is not a power of two.
pub fn fft_real(data: &[f32]) -> Vec<Complex> {
    let complex: Vec<Complex> = data.iter().map(|&x| Complex::from(x)).collect();
    fft(&complex)
}

/// Naive `O(n^2)` DFT, used as a ground-truth oracle in tests and by the
/// baseline accelerator model (which implements Fourier layers as dense
/// matrix multiplications, as in the paper's Section VI-D).
///
/// # Panics
///
/// Panics when `data` is empty.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    assert!(n > 0, "dft of empty input");
    (0..n)
        .map(|k| {
            let mut acc = Complex::zero();
            for (j, &x) in data.iter().enumerate() {
                let theta = -2.0 * std::f32::consts::PI * (k * j) as f32 / n as f32;
                acc += x * Complex::from_polar(theta);
            }
            acc
        })
        .collect()
}

thread_local! {
    /// Per-thread memo of the plans `fft2_real` uses, keyed by transform
    /// size. Serving and training sweep the same few sequence/hidden sizes
    /// over and over; caching makes the twiddle trigonometry a one-time
    /// cost per thread instead of a per-call one.
    static PLAN_CACHE: std::cell::RefCell<Vec<std::rc::Rc<FftPlan>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Returns the per-thread cached plan of size `n`, building it on first use.
fn cached_plan(n: usize) -> std::rc::Rc<FftPlan> {
    PLAN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(plan) = cache.iter().find(|p| p.size() == n) {
            return std::rc::Rc::clone(plan);
        }
        let plan = std::rc::Rc::new(FftPlan::new(n));
        cache.push(std::rc::Rc::clone(&plan));
        plan
    })
}

/// The real part of the 2-D discrete Fourier transform used by FNet and by
/// FABNet's FBfly block: a 1-D FFT along the hidden dimension followed by a
/// 1-D FFT along the sequence dimension, keeping only the real component.
///
/// `x` is row-major `[seq, hidden]`; both dimensions must be powers of two.
///
/// # Panics
///
/// Panics when `x.len() != seq * hidden` or a dimension is not a power of two.
pub fn fft2_real(x: &[f32], seq: usize, hidden: usize) -> Vec<f32> {
    assert_eq!(x.len(), seq * hidden, "fft2_real input length mismatch");
    let parallel = seq * hidden >= PAR_MIN_ELEMS;
    let row_plan = cached_plan(hidden);
    let mut grid: Vec<Complex> = x.iter().map(|&v| Complex::from(v)).collect();
    // FFT along the hidden dimension (each row), rows fanned out in parallel.
    if parallel {
        let row_plan = &*row_plan;
        grid.par_chunks_mut(hidden).for_each(|row| row_plan.execute(row, false));
    } else {
        for row in grid.chunks_mut(hidden) {
            row_plan.execute(row, false);
        }
    }
    // FFT along the sequence dimension: transpose so columns become
    // contiguous rows (cache-friendly and parallelisable across the hidden
    // dimension), transform, and transpose back.
    let col_plan = cached_plan(seq);
    let mut t = transpose_grid(&grid, seq, hidden);
    if parallel {
        let col_plan = &*col_plan;
        t.par_chunks_mut(seq).for_each(|col| col_plan.execute(col, false));
    } else {
        for col in t.chunks_mut(seq) {
            col_plan.execute(col, false);
        }
    }
    let grid = transpose_grid(&t, hidden, seq);
    grid.iter().map(|v| v.re).collect()
}

/// Out-of-place transpose of a row-major `[rows, cols]` complex grid.
fn transpose_grid(grid: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    const TILE: usize = 32;
    let mut out = vec![Complex::zero(); grid.len()];
    for ii in (0..rows).step_by(TILE) {
        let ib = TILE.min(rows - ii);
        for jj in (0..cols).step_by(TILE) {
            let jb = TILE.min(cols - jj);
            for di in 0..ib {
                let src = &grid[(ii + di) * cols + jj..(ii + di) * cols + jj + jb];
                for (dj, &v) in src.iter().enumerate() {
                    out[(jj + dj) * rows + ii + di] = v;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn bit_reversal_of_8() {
        assert_eq!(bit_reverse_permutation(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let out = fft_real(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        for v in out {
            assert!(close(v.re, 1.0) && close(v.im, 0.0));
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        let fast = fft(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!(close(a.re, b.re) && close(a.im, b.im), "{a} vs {b}");
        }
    }

    #[test]
    fn ifft_roundtrip() {
        let x: Vec<Complex> =
            (0..32).map(|i| Complex::new(i as f32 * 0.1, -(i as f32) * 0.05)).collect();
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(back.iter()) {
            assert!(close(a.re, b.re) && close(a.im, b.im));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex> = (0..64).map(|i| Complex::new((i as f32).cos(), 0.0)).collect();
        let y = fft(&x);
        let ex: f32 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f32 = y.iter().map(|v| v.norm_sqr()).sum::<f32>() / x.len() as f32;
        assert!((ex - ey).abs() / ex < 1e-3);
    }

    #[test]
    fn fft_of_pure_tone_has_single_bin() {
        let n = 32;
        let x: Vec<f32> = (0..n)
            .map(|i| (2.0 * std::f32::consts::PI * 4.0 * i as f32 / n as f32).cos())
            .collect();
        let y = fft_real(&x);
        let mags: Vec<f32> = y.iter().map(|v| v.abs()).collect();
        // Energy concentrated in bins 4 and n-4.
        assert!(mags[4] > 10.0 && mags[n - 4] > 10.0);
        for (i, &m) in mags.iter().enumerate() {
            if i != 4 && i != n - 4 {
                assert!(m < 1e-2, "unexpected energy at bin {i}: {m}");
            }
        }
    }

    #[test]
    fn fft2_real_is_linear() {
        let seq = 8;
        let hid = 4;
        let a: Vec<f32> = (0..seq * hid).map(|i| (i as f32 * 0.3).sin()).collect();
        let b: Vec<f32> = (0..seq * hid).map(|i| (i as f32 * 0.7).cos()).collect();
        let sum: Vec<f32> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
        let fa = fft2_real(&a, seq, hid);
        let fb = fft2_real(&b, seq, hid);
        let fsum = fft2_real(&sum, seq, hid);
        for i in 0..seq * hid {
            assert!(close(fa[i] + fb[i], fsum[i]));
        }
    }

    #[test]
    fn fft2_real_constant_input_concentrates_at_dc() {
        let seq = 4;
        let hid = 4;
        let x = vec![1.0f32; seq * hid];
        let y = fft2_real(&x, seq, hid);
        assert!(close(y[0], (seq * hid) as f32));
        for &v in &y[1..] {
            assert!(v.abs() < 1e-3);
        }
    }
}
