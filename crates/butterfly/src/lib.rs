//! # fab-butterfly
//!
//! Butterfly-sparsity kernels underpinning FABNet and the adaptable butterfly
//! accelerator (MICRO'22): complex arithmetic, the radix-2 Cooley–Tukey FFT,
//! FNet-style 2-D Fourier token mixing, learnable butterfly factor matrices
//! and the butterfly linear transform (forward, gradient, and autodiff
//! integration), a FLOP-count model, and the sparsity-pattern taxonomy of the
//! paper's Section III-A (Fig. 4 / Table II).
//!
//! Both the FFT and the butterfly linear transform share the same recursive
//! butterfly dataflow; the accelerator crate (`fab-accel`) exploits exactly
//! this property to run both on one unified engine, and cross-validates its
//! functional model against the reference implementations in this crate.
//!
//! # Example
//!
//! ```rust
//! use fab_butterfly::{ButterflyMatrix, fft};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A random 8x8 butterfly matrix multiplies a vector in O(n log n).
//! let mut rng = StdRng::seed_from_u64(0);
//! let b = ButterflyMatrix::random(8, &mut rng).unwrap();
//! let y = b.forward(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
//! assert_eq!(y.len(), 8);
//!
//! // The FFT follows the same butterfly dataflow with complex twiddles.
//! let spectrum = fft::fft_real(&[1.0, 0.0, 0.0, 0.0]);
//! assert_eq!(spectrum.len(), 4);
//! ```

#![warn(missing_docs)]

mod butterfly;
mod complex;
mod error;
pub mod fft;
pub mod flops;
mod fourier;
mod ops;
pub mod sparsity;

pub use butterfly::{
    with_tls_scratch, ButterflyMatrix, ButterflyScratch, ButterflyStage, PooledButterfly,
};
pub use complex::Complex;
pub use error::ButterflyError;
pub use fourier::{fourier_mix, fourier_mix_backward, fourier_mix_into};
pub use ops::{butterfly_linear_op, butterfly_linear_padded_op, fourier_mix_op};

/// Returns the smallest power of two greater than or equal to `n` (minimum 2).
///
/// Butterfly matrices and FFTs are defined for power-of-two sizes; model
/// dimensions are padded up to this size.
///
/// # Example
/// ```rust
/// assert_eq!(fab_butterfly::next_pow2(768), 1024);
/// assert_eq!(fab_butterfly::next_pow2(8), 8);
/// ```
pub fn next_pow2(n: usize) -> usize {
    let mut p = 2usize;
    while p < n {
        p *= 2;
    }
    p
}

/// Integer base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics when `n` is not a power of two or is smaller than 2.
pub fn log2_exact(n: usize) -> usize {
    assert!(n >= 2 && n.is_power_of_two(), "{n} is not a power of two >= 2");
    n.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(1), 2);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn log2_exact_matches() {
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(1024), 10);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_exact_rejects_non_powers() {
        let _ = log2_exact(12);
    }
}
