use std::error::Error;
use std::fmt;

/// Errors produced by butterfly and FFT constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ButterflyError {
    /// The requested transform size is not a power of two (or is below 2).
    NotPowerOfTwo {
        /// The offending size.
        size: usize,
    },
    /// The supplied weight tensor does not match the expected butterfly
    /// parameter layout.
    WeightShapeMismatch {
        /// Expected shape `[stages, 2 * n]`.
        expected: Vec<usize>,
        /// Shape that was provided.
        got: Vec<usize>,
    },
    /// The input length does not match the transform size.
    InputLengthMismatch {
        /// Expected length.
        expected: usize,
        /// Length that was provided.
        got: usize,
    },
}

impl fmt::Display for ButterflyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ButterflyError::NotPowerOfTwo { size } => {
                write!(f, "butterfly size {size} is not a power of two >= 2")
            }
            ButterflyError::WeightShapeMismatch { expected, got } => {
                write!(f, "butterfly weight shape {got:?} does not match expected {expected:?}")
            }
            ButterflyError::InputLengthMismatch { expected, got } => {
                write!(f, "input length {got} does not match transform size {expected}")
            }
        }
    }
}

impl Error for ButterflyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ButterflyError::NotPowerOfTwo { size: 12 };
        assert!(e.to_string().contains("12"));
    }
}
