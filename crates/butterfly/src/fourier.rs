//! FNet-style 2-D Fourier token mixing used by the FBfly block.

use crate::fft::fft2_real;
use crate::next_pow2;
use fab_tensor::Tensor;

/// Applies the FNet token-mixing transform `Y = Re(F_seq · X · F_hid)` to a
/// `[seq, hidden]` tensor.
///
/// Dimensions that are not powers of two are zero-padded up to the next power
/// of two before the FFT and truncated afterwards, matching how the
/// accelerator (and the paper's PyTorch `rfft2` path) handles arbitrary
/// sequence lengths.
///
/// # Panics
///
/// Panics when `x` is not 2-D.
pub fn fourier_mix(x: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    fourier_mix_into(x, &mut out);
    out
}

/// [`fourier_mix`] writing into `out` (resized in place). The FFT itself
/// still stages its work in plan-cached internal buffers; this variant only
/// avoids allocating the output tensor, which is what the autodiff tape
/// reuses across training steps.
///
/// # Panics
///
/// Panics when `x` is not 2-D.
pub fn fourier_mix_into(x: &Tensor, out: &mut Tensor) {
    assert_eq!(x.shape().len(), 2, "fourier_mix requires a 2-D tensor");
    let (seq, hid) = (x.rows(), x.cols());
    let (pseq, phid) = (next_pow2(seq), next_pow2(hid));
    out.resize_to(&[seq, hid]);
    if (pseq, phid) == (seq, hid) {
        // Already power-of-two sized: transform without the padding copies.
        let mixed = fft2_real(x.as_slice(), seq, hid);
        out.as_mut_slice().copy_from_slice(&mixed);
        return;
    }
    let mut padded = vec![0.0f32; pseq * phid];
    for (prow, row) in padded.chunks_mut(phid).zip(x.as_slice().chunks(hid)) {
        prow[..hid].copy_from_slice(row);
    }
    let mixed = fft2_real(&padded, pseq, phid);
    for (orow, mrow) in out.as_mut_slice().chunks_mut(hid).zip(mixed.chunks(phid)) {
        orow.copy_from_slice(&mrow[..hid]);
    }
}

/// Gradient of [`fourier_mix`] with respect to its input.
///
/// Because the real part of the 2-D DFT is a symmetric linear map (the DFT
/// matrix is symmetric), the adjoint equals the forward transform itself, so
/// the backward pass simply applies [`fourier_mix`] to the upstream gradient.
pub fn fourier_mix_backward(grad_out: &Tensor) -> Tensor {
    fourier_mix(grad_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_tokens_globally() {
        // A single non-zero token must influence every output position.
        let mut x = Tensor::zeros(&[8, 4]);
        x.set(3, 1, 1.0);
        let y = fourier_mix(&x);
        let nonzero = y.as_slice().iter().filter(|v| v.abs() > 1e-6).count();
        assert!(nonzero > 8, "expected global mixing, got {nonzero} non-zeros");
    }

    #[test]
    fn linear_in_input() {
        let a =
            Tensor::from_vec((0..32).map(|i| (i as f32 * 0.3).sin()).collect(), &[8, 4]).unwrap();
        let b =
            Tensor::from_vec((0..32).map(|i| (i as f32 * 0.7).cos()).collect(), &[8, 4]).unwrap();
        let lhs = fourier_mix(&a.add(&b));
        let rhs = fourier_mix(&a).add(&fourier_mix(&b));
        assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn adjoint_identity_holds() {
        // <F(x), y> == <x, F(y)> since Re(DFT2) is symmetric.
        let x =
            Tensor::from_vec((0..32).map(|i| (i as f32 * 0.13).sin()).collect(), &[8, 4]).unwrap();
        let y =
            Tensor::from_vec((0..32).map(|i| (i as f32 * 0.37).cos()).collect(), &[8, 4]).unwrap();
        let fx = fourier_mix(&x);
        let fy = fourier_mix_backward(&y);
        let lhs: f32 = fx.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(fy.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn non_power_of_two_dims_are_padded() {
        let x = Tensor::ones(&[6, 3]);
        let y = fourier_mix(&x);
        assert_eq!(y.shape(), &[6, 3]);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }
}
