use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f32` components, used by the FFT reference model
/// and by the accelerator's functional butterfly-unit model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f32,
    /// Imaginary component.
    pub im: f32,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Self { re: 1.0, im: 0.0 }
    }

    /// `e^{i theta}` on the unit circle.
    pub fn from_polar(theta: f32) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Mul<f32> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f32) -> Complex {
        Complex { re: self.re * rhs, im: self.im * rhs }
    }
}

impl From<f32> for Complex {
    fn from(re: f32) -> Self {
        Complex { re, im: 0.0 }
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let c = a * b;
        assert!((c.re - 5.0).abs() < 1e-6);
        assert!((c.im - 5.0).abs() < 1e-6);
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj().im, -4.0);
        assert!((a.abs() - 5.0).abs() < 1e-6);
        let prod = a * a.conj();
        assert!((prod.re - 25.0).abs() < 1e-5);
        assert!(prod.im.abs() < 1e-5);
    }

    #[test]
    fn polar_on_unit_circle() {
        let w = Complex::from_polar(std::f32::consts::PI / 2.0);
        assert!(w.re.abs() < 1e-6);
        assert!((w.im - 1.0).abs() < 1e-6);
    }
}
