//! Hardware configuration: parallelism parameters, clock, memory system and
//! target FPGA devices.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced when validating an accelerator configuration against a
/// workload or device.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AcceleratorError {
    /// The configuration has no attention units but the workload contains
    /// attention layers.
    NoAttentionUnits,
    /// A parallelism parameter is zero where it must be positive.
    ZeroParallelism {
        /// The offending parameter name.
        parameter: &'static str,
    },
    /// The design does not fit on the target FPGA.
    ResourceOverflow {
        /// Which resource overflowed.
        resource: &'static str,
        /// Amount required by the design.
        required: u64,
        /// Amount available on the device.
        available: u64,
    },
}

impl fmt::Display for AcceleratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorError::NoAttentionUnits => {
                write!(f, "workload contains attention layers but the design has no QK/SV units")
            }
            AcceleratorError::ZeroParallelism { parameter } => {
                write!(f, "parallelism parameter {parameter} must be positive")
            }
            AcceleratorError::ResourceOverflow { resource, required, available } => {
                write!(f, "design needs {required} {resource} but the device has {available}")
            }
        }
    }
}

impl Error for AcceleratorError {}

/// Off-chip memory technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryKind {
    /// High-bandwidth memory (VCU128, server scenario).
    Hbm,
    /// DDR4 (Zynq 7045, edge scenario).
    Ddr4,
}

impl MemoryKind {
    /// Theoretical peak bandwidth in GB/s of a single stack/channel as used
    /// in the paper (one HBM stack = 450 GB/s, edge DDR4 ≈ 19.2 GB/s).
    pub fn peak_bandwidth_gbps(self) -> f64 {
        match self {
            MemoryKind::Hbm => 450.0,
            MemoryKind::Ddr4 => 19.2,
        }
    }
}

/// An FPGA device with its available resources (Table VII "Available" row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device name.
    pub name: String,
    /// Available look-up tables.
    pub luts: u64,
    /// Available flip-flops / registers.
    pub registers: u64,
    /// Available DSP48 blocks.
    pub dsps: u64,
    /// Available 36Kb BRAM blocks.
    pub brams: u64,
    /// Number of HBM stacks (0 for DDR devices).
    pub hbm_stacks: u64,
}

impl FpgaDevice {
    /// Xilinx VCU128 (cloud/server scenario).
    pub fn vcu128() -> Self {
        Self {
            name: "Xilinx VCU128".to_string(),
            luts: 1_303_680,
            registers: 2_607_360,
            dsps: 9_024,
            brams: 2_016,
            hbm_stacks: 2,
        }
    }

    /// Xilinx Zynq 7045 (edge/mobile scenario).
    pub fn zynq7045() -> Self {
        Self {
            name: "Xilinx Zynq 7045".to_string(),
            luts: 218_600,
            registers: 437_200,
            dsps: 900,
            brams: 545,
            hbm_stacks: 0,
        }
    }
}

/// The accelerator's design parameters — the hardware half of the paper's
/// joint design space (Section V-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of Butterfly Engines in the Butterfly Processor (`P_BE`).
    pub num_be: usize,
    /// Number of adaptable Butterfly Units per BE (`P_BU`); the paper deploys 4.
    pub num_bu: usize,
    /// Number of Attention Engines (`P_head`).
    pub num_heads_units: usize,
    /// Multipliers in each QK unit (`P_qk`); 0 disables the Attention Processor.
    pub pqk: usize,
    /// Multipliers in each SV unit (`P_sv`); 0 disables the Attention Processor.
    pub psv: usize,
    /// Clock frequency in MHz (all paper designs run at 200 MHz).
    pub clock_mhz: f64,
    /// Off-chip memory technology.
    pub memory: MemoryKind,
    /// Off-chip bandwidth in GB/s actually provisioned for the design.
    pub bandwidth_gbps: f64,
    /// Numeric precision in bytes (16-bit half precision = 2).
    pub precision_bytes: usize,
    /// Depth of the butterfly/query/key buffers (the paper uses 1024).
    pub buffer_depth: usize,
    /// Enable the fine-grained BP↔AP pipelining of Section V-B.
    pub fine_grained_pipelining: bool,
    /// Target FPGA device.
    pub device: FpgaDevice,
}

impl AcceleratorConfig {
    /// The server-scale design used against GPUs in Section VI-E: 120 BEs on
    /// a VCU128 (1920 multipliers) with HBM.
    pub fn vcu128_be120() -> Self {
        Self {
            num_be: 120,
            num_bu: 4,
            num_heads_units: 0,
            pqk: 0,
            psv: 0,
            clock_mhz: 200.0,
            memory: MemoryKind::Hbm,
            bandwidth_gbps: 450.0,
            precision_bytes: 2,
            buffer_depth: 1024,
            fine_grained_pipelining: true,
            device: FpgaDevice::vcu128(),
        }
    }

    /// The co-design output for the LRA tasks (Section VI-C):
    /// `⟨P_be, P_bu, P_qk, P_sv⟩ = ⟨64, 4, 0, 0⟩` on a VCU128.
    pub fn vcu128_fabnet() -> Self {
        Self { num_be: 64, ..Self::vcu128_be120() }
    }

    /// The SOTA-comparison design of Section VI-F: 40 BEs (640 DSPs) on a
    /// VCU128, matching the 128-multiplier / 1 GHz ASIC budget at 200 MHz.
    pub fn vcu128_be40() -> Self {
        Self { num_be: 40, ..Self::vcu128_be120() }
    }

    /// The edge-scale design of Section VI-E: 512 multipliers on a Zynq 7045
    /// with DDR4, organised as 8 wide Butterfly Engines (16 BUs each) to keep
    /// the per-engine control overhead within the smaller device.
    pub fn zynq7045_edge() -> Self {
        Self {
            num_be: 8,
            num_bu: 16,
            num_heads_units: 0,
            pqk: 0,
            psv: 0,
            clock_mhz: 200.0,
            memory: MemoryKind::Ddr4,
            bandwidth_gbps: 19.2,
            precision_bytes: 2,
            buffer_depth: 1024,
            fine_grained_pipelining: true,
            device: FpgaDevice::zynq7045(),
        }
    }

    /// A design with an Attention Processor, for FABNet configurations that
    /// keep `N_ABfly > 0` ABfly blocks.
    pub fn with_attention_units(mut self, heads: usize, pqk: usize, psv: usize) -> Self {
        self.num_heads_units = heads;
        self.pqk = pqk;
        self.psv = psv;
        self
    }

    /// Returns a copy with a different number of Butterfly Engines.
    pub fn with_bes(mut self, num_be: usize) -> Self {
        self.num_be = num_be;
        self
    }

    /// Returns a copy with a different off-chip bandwidth (GB/s).
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.bandwidth_gbps = gbps;
        self
    }

    /// Returns a copy with naive (non-pipelined) BP/AP scheduling, used by the
    /// pipelining ablation.
    pub fn without_fine_grained_pipelining(mut self) -> Self {
        self.fine_grained_pipelining = false;
        self
    }

    /// Total number of hardware multipliers: `P_be · P_bu · 4` in the BP plus
    /// `P_head · (P_qk + P_sv)` in the AP (the DSP equation of Section V-C).
    pub fn num_multipliers(&self) -> usize {
        self.num_be * self.num_bu * 4 + self.num_heads_units * (self.pqk + self.psv)
    }

    /// Peak throughput in GOP/s at the configured clock (each multiplier
    /// performs one multiply-accumulate, i.e. 2 ops, per cycle; the paper's
    /// "128 GOPS" normalisation counts 640 DSPs × 200 MHz).
    pub fn peak_gops(&self) -> f64 {
        self.num_multipliers() as f64 * self.clock_mhz * 1e6 / 1e9
    }

    /// Bytes transferable from off-chip memory per clock cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / (self.clock_mhz * 1e6)
    }

    /// Validates the parallelism parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::ZeroParallelism`] when `num_be` or
    /// `num_bu` is zero.
    pub fn validate(&self) -> Result<(), AcceleratorError> {
        if self.num_be == 0 {
            return Err(AcceleratorError::ZeroParallelism { parameter: "num_be" });
        }
        if self.num_bu == 0 {
            return Err(AcceleratorError::ZeroParallelism { parameter: "num_bu" });
        }
        Ok(())
    }

    /// Whether the design can execute attention layers (has QK and SV units).
    pub fn supports_attention(&self) -> bool {
        self.num_heads_units > 0 && self.pqk > 0 && self.psv > 0
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::vcu128_fabnet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_counts_match_paper_designs() {
        assert_eq!(AcceleratorConfig::vcu128_be120().num_multipliers(), 1920);
        assert_eq!(AcceleratorConfig::vcu128_be40().num_multipliers(), 640);
        assert_eq!(AcceleratorConfig::zynq7045_edge().num_multipliers(), 512);
    }

    #[test]
    fn be40_matches_ascis_normalised_throughput() {
        // Section VI-F: 640 DSPs x 200 MHz = 128 GOPS, the same budget as a
        // 128-multiplier ASIC at 1 GHz.
        let c = AcceleratorConfig::vcu128_be40();
        assert!((c.peak_gops() - 128.0).abs() < 1e-6);
    }

    #[test]
    fn attention_support_requires_qk_and_sv() {
        let c = AcceleratorConfig::vcu128_fabnet();
        assert!(!c.supports_attention());
        let c = c.with_attention_units(4, 8, 8);
        assert!(c.supports_attention());
        assert_eq!(c.num_multipliers(), 64 * 4 * 4 + 4 * 16);
    }

    #[test]
    fn validation_rejects_zero_parallelism() {
        let mut c = AcceleratorConfig::vcu128_fabnet();
        c.num_be = 0;
        assert!(matches!(c.validate(), Err(AcceleratorError::ZeroParallelism { .. })));
    }

    #[test]
    fn bytes_per_cycle_follows_bandwidth() {
        let c = AcceleratorConfig::vcu128_fabnet().with_bandwidth(100.0);
        assert!((c.bytes_per_cycle() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn device_presets_have_expected_resources() {
        let v = FpgaDevice::vcu128();
        assert_eq!(v.dsps, 9024);
        assert_eq!(v.brams, 2016);
        let z = FpgaDevice::zynq7045();
        assert_eq!(z.dsps, 900);
    }
}
