//! Functional (bit-level dataflow) model of the Butterfly Engine.
//!
//! The paper cross-validates its RTL against PyTorch ground truth
//! (Appendix C); this module plays the same role for the simulator: it
//! executes butterfly linear transforms and FFTs through the *adaptable
//! Butterfly Unit* datapath and the banked butterfly memory access order, and
//! the test suite checks the results against the `fab-butterfly` reference
//! kernels and, transitively, against the `fab-nn` model layers.

use crate::engine::AdaptableButterflyUnit;
use crate::memory::{stage_pairs, Layout, TransformAccessReport};
use fab_butterfly::fft::bit_reverse_permutation;
use fab_butterfly::{ButterflyMatrix, Complex};
use fab_tensor::Tensor;

/// Executes a butterfly linear transform on one vector through the BU
/// datapath, visiting operands in the banked-memory pair order.
///
/// # Panics
///
/// Panics when `x.len()` does not match the butterfly size.
pub fn execute_butterfly_linear(matrix: &ButterflyMatrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), matrix.size(), "input length must match the butterfly size");
    let bu = AdaptableButterflyUnit::new();
    let mut data = x.to_vec();
    for (stage_idx, stage) in matrix.stages().iter().enumerate() {
        let pairs = stage_pairs(matrix.size(), stage_idx);
        let snapshot = data.clone();
        for (p, &(i1, i2)) in pairs.iter().enumerate() {
            let (o1, o2) = bu.linear(snapshot[i1], snapshot[i2], stage.weights(p));
            data[i1] = o1;
            data[i2] = o2;
        }
    }
    data
}

/// Executes a butterfly linear transform over every row of a `[rows, n]`
/// tensor through the BU datapath.
pub fn execute_butterfly_linear_rows(matrix: &ButterflyMatrix, x: &Tensor) -> Tensor {
    let (rows, n) = (x.rows(), x.cols());
    assert_eq!(n, matrix.size(), "row width must match the butterfly size");
    let mut out = Tensor::zeros(&[rows, n]);
    for r in 0..rows {
        let row: Vec<f32> = (0..n).map(|c| x.at(r, c)).collect();
        let y = execute_butterfly_linear(matrix, &row);
        for (c, &v) in y.iter().enumerate() {
            out.set(r, c, v);
        }
    }
    out
}

/// Executes a radix-2 FFT through the BU datapath in FFT mode (complex
/// symmetric twiddles), using the same decimation-in-time schedule as the
/// reference FFT.
///
/// # Panics
///
/// Panics when the length is not a power of two.
pub fn execute_fft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    assert!(n.is_power_of_two() && n >= 2, "FFT size must be a power of two");
    let bu = AdaptableButterflyUnit::new();
    let perm = bit_reverse_permutation(n);
    let mut data: Vec<Complex> = (0..n).map(|i| x[perm[i]]).collect();
    let stages = (n as f64).log2() as usize;
    for s in 0..stages {
        let half = 1usize << s;
        let pairs = stage_pairs(n, s);
        let snapshot = data.clone();
        for &(i1, i2) in &pairs {
            // Twiddle index within the block: blocks start at multiples of
            // 2*half, so `i1 % half` recovers k in 0..half.
            let k = i1 % half;
            let theta = -std::f32::consts::PI * k as f32 / half as f32;
            let w = Complex::from_polar(theta);
            let (o1, o2) = bu.fft(snapshot[i1], snapshot[i2], w);
            data[i1] = o1;
            data[i2] = o2;
        }
    }
    data
}

/// Result of the functional cross-validation of one transform.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidation {
    /// Maximum absolute difference between the functional model and the reference.
    pub max_abs_error: f32,
    /// Whether the banked memory access of every stage was conflict-free.
    pub memory_conflict_free: bool,
}

impl CrossValidation {
    /// Whether the functional model matches the reference within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_error <= tol && self.memory_conflict_free
    }
}

/// Cross-validates the functional butterfly-linear path against the
/// `fab-butterfly` reference for a given transform and input, also checking
/// that the banked butterfly memory serves every stage without conflicts.
pub fn cross_validate_butterfly(
    matrix: &ButterflyMatrix,
    x: &[f32],
    banks: usize,
) -> CrossValidation {
    let functional = execute_butterfly_linear(matrix, x);
    let reference = matrix.forward(x);
    let max_abs_error =
        functional.iter().zip(reference.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    let memory = TransformAccessReport::analyze(Layout::Butterfly, matrix.size(), banks);
    CrossValidation { max_abs_error, memory_conflict_free: memory.is_conflict_free() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_butterfly::fft::fft;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn butterfly_linear_matches_reference_kernel() {
        let mut rng = StdRng::seed_from_u64(21);
        for &n in &[8usize, 32, 128] {
            let matrix = ButterflyMatrix::random(n, &mut rng).unwrap();
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let cv = cross_validate_butterfly(&matrix, &x, 8.min(n));
            assert!(cv.passes(1e-4), "n={n}: max error {}", cv.max_abs_error);
        }
    }

    #[test]
    fn butterfly_rows_match_reference_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        let matrix = ButterflyMatrix::random(16, &mut rng).unwrap();
        let x = fab_tensor::uniform(&mut rng, &[4, 16], -1.0, 1.0);
        let functional = execute_butterfly_linear_rows(&matrix, &x);
        let reference = matrix.forward_rows(&x);
        assert!(functional.allclose(&reference, 1e-4));
    }

    #[test]
    fn fft_mode_matches_reference_fft() {
        let mut rng = StdRng::seed_from_u64(33);
        for &n in &[8usize, 64, 256] {
            let x: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let functional = execute_fft(&x);
            let reference = fft(&x);
            let max_err = functional
                .iter()
                .zip(reference.iter())
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 1e-2, "n={n}: max error {max_err}");
        }
    }

    #[test]
    fn identity_butterfly_is_a_passthrough_on_the_datapath() {
        let matrix = ButterflyMatrix::identity(64);
        let x: Vec<f32> = (0..64).map(|i| i as f32 * 0.1).collect();
        assert_eq!(execute_butterfly_linear(&matrix, &x), x);
    }
}
