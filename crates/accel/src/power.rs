//! The power model of the accelerator, calibrated against the Vivado XPE
//! breakdown reported in Table VI (BE-40 and BE-120 designs on the VCU128).
//!
//! Each component (clocking, logic & signal, DSP, memory, static) is a linear
//! function of the number of Butterfly Engines fitted through the two
//! reported design points; edge designs on the Zynq 7045 use a smaller memory
//! and static baseline because they have no HBM stacks.

use crate::config::{AcceleratorConfig, MemoryKind};
use serde::{Deserialize, Serialize};

/// Power breakdown in watts (Table VI rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Clock distribution.
    pub clocking: f64,
    /// Logic and signal switching.
    pub logic_signal: f64,
    /// DSP blocks.
    pub dsp: f64,
    /// BRAM + HBM (or DDR interface).
    pub memory: f64,
    /// Static (leakage) power.
    pub static_power: f64,
}

impl PowerBreakdown {
    /// Dynamic power (everything except static).
    pub fn dynamic(&self) -> f64 {
        self.clocking + self.logic_signal + self.dsp + self.memory
    }

    /// Total power.
    pub fn total(&self) -> f64 {
        self.dynamic() + self.static_power
    }

    /// Fraction of total power that is dynamic.
    pub fn dynamic_fraction(&self) -> f64 {
        self.dynamic() / self.total()
    }
}

fn lerp_by_be(be: f64, at40: f64, at120: f64) -> f64 {
    at40 + (at120 - at40) / 80.0 * (be - 40.0)
}

/// Estimates the power breakdown of a design point.
pub fn estimate(config: &AcceleratorConfig) -> PowerBreakdown {
    let be = config.num_be as f64;
    let ap_mults = (config.num_heads_units * (config.pqk + config.psv)) as f64;
    match config.memory {
        MemoryKind::Hbm => PowerBreakdown {
            clocking: lerp_by_be(be, 2.668, 6.882),
            logic_signal: lerp_by_be(be, 2.381, 7.732) + 0.002 * ap_mults,
            dsp: lerp_by_be(be, 0.338, 1.437) + 0.0005 * ap_mults,
            memory: lerp_by_be(be, 5.325, 6.142),
            static_power: lerp_by_be(be, 3.368, 3.665),
        },
        // Edge designs: no HBM, smaller die, lower static power. Calibrated so
        // the Zynq 7045 512-multiplier design lands in the single-digit-watt
        // range typical for that device class.
        MemoryKind::Ddr4 => PowerBreakdown {
            clocking: 0.4 + 0.02 * be,
            logic_signal: 0.5 + 0.03 * be + 0.002 * ap_mults,
            dsp: 0.05 + 0.004 * be,
            memory: 1.2 + 0.01 * be,
            static_power: 0.25 + 0.002 * be,
        },
    }
}

/// Energy efficiency in predictions per joule, given a latency in seconds.
pub fn predictions_per_joule(config: &AcceleratorConfig, latency_seconds: f64) -> f64 {
    let watts = estimate(config).total();
    1.0 / (latency_seconds * watts)
}

/// Energy efficiency in GOP/s per watt, given achieved GOP/s.
pub fn gops_per_watt(config: &AcceleratorConfig, achieved_gops: f64) -> f64 {
    achieved_gops / estimate(config).total()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn be40_breakdown_matches_table_vi() {
        let p = estimate(&AcceleratorConfig::vcu128_be40());
        assert!(close(p.clocking, 2.668, 0.01));
        assert!(close(p.logic_signal, 2.381, 0.01));
        assert!(close(p.dsp, 0.338, 0.01));
        assert!(close(p.memory, 5.325, 0.01));
        assert!(close(p.static_power, 3.368, 0.01));
        // Sum of the Table VI rows.
        assert!(close(p.total(), 14.08, 0.05), "total {}", p.total());
    }

    #[test]
    fn be120_breakdown_matches_table_vi() {
        let p = estimate(&AcceleratorConfig::vcu128_be120());
        assert!(close(p.clocking, 6.882, 0.01));
        assert!(close(p.logic_signal, 7.732, 0.01));
        assert!(close(p.dsp, 1.437, 0.01));
        assert!(close(p.memory, 6.142, 0.01));
        assert!(close(p.static_power, 3.665, 0.01));
    }

    #[test]
    fn dynamic_power_dominates() {
        // Table VI: dynamic power accounts for more than 70% of the total in
        // both designs.
        for config in [AcceleratorConfig::vcu128_be40(), AcceleratorConfig::vcu128_be120()] {
            let p = estimate(&config);
            assert!(p.dynamic_fraction() > 0.7, "{}", p.dynamic_fraction());
        }
    }

    #[test]
    fn edge_design_uses_single_digit_watts() {
        let p = estimate(&AcceleratorConfig::zynq7045_edge());
        assert!(p.total() > 1.0 && p.total() < 10.0, "total {}", p.total());
    }

    #[test]
    fn power_grows_with_design_size() {
        let small = estimate(&AcceleratorConfig::vcu128_be40());
        let big = estimate(&AcceleratorConfig::vcu128_be120());
        assert!(big.total() > small.total());
        assert!(big.clocking > small.clocking);
        assert!(big.dsp > small.dsp);
    }

    #[test]
    fn efficiency_metrics_are_positive() {
        let config = AcceleratorConfig::vcu128_be40();
        assert!(predictions_per_joule(&config, 0.0024) > 0.0);
        assert!(gops_per_watt(&config, 100.0) > 0.0);
    }
}
