//! Conversion of a model configuration into the layer-by-layer operation
//! schedule executed by the accelerator.

use fab_butterfly::next_pow2;
use fab_nn::{ModelConfig, ModelKind};
use serde::{Deserialize, Serialize};

/// One hardware-level operation in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerOp {
    /// A butterfly linear transform of (padded) size `n` applied to `rows` rows,
    /// executed on the Butterfly Processor.
    ButterflyLinear {
        /// Number of rows (sequence positions).
        rows: usize,
        /// Power-of-two transform size.
        n: usize,
    },
    /// The 2-D FFT token mixing of an FBfly/FNet block, executed on the
    /// Butterfly Processor in FFT mode.
    Fft2d {
        /// Sequence length (padded to a power of two).
        seq: usize,
        /// Hidden size (padded to a power of two).
        hidden: usize,
    },
    /// A dense linear layer (only present for the vanilla Transformer / FNet
    /// FFNs, which the butterfly accelerator does not natively accelerate;
    /// the baseline MAC accelerator executes these).
    DenseLinear {
        /// Number of rows.
        rows: usize,
        /// Input features.
        d_in: usize,
        /// Output features.
        d_out: usize,
    },
    /// The attention score/value computation (`Q·K^T`, softmax, `S·V`) of an
    /// ABfly or Transformer block, executed on the Attention Processor.
    AttentionCore {
        /// Sequence length.
        seq: usize,
        /// Hidden size.
        hidden: usize,
        /// Number of heads.
        heads: usize,
    },
    /// Layer normalisation + shortcut addition on the post-processing unit.
    PostProcess {
        /// Number of rows.
        rows: usize,
        /// Hidden size.
        hidden: usize,
    },
}

impl LayerOp {
    /// Multiply-accumulate style operation count of the op (2 ops per MAC),
    /// matching the GOPs convention used in the paper's energy-efficiency
    /// numbers.
    pub fn flops(&self) -> u64 {
        match *self {
            LayerOp::ButterflyLinear { rows, n } => {
                fab_butterfly::flops::butterfly_linear_flops(rows, n)
            }
            LayerOp::Fft2d { seq, hidden } => fab_butterfly::flops::fourier_mix_flops(seq, hidden),
            LayerOp::DenseLinear { rows, d_in, d_out } => {
                fab_butterfly::flops::dense_linear_flops(rows, d_in, d_out)
            }
            LayerOp::AttentionCore { seq, hidden, .. } => {
                fab_butterfly::flops::attention_core_flops(seq, hidden)
            }
            LayerOp::PostProcess { rows, hidden } => {
                fab_butterfly::flops::layer_norm_flops(rows, hidden)
            }
        }
    }

    /// Bytes read from off-chip memory (activations in + weights).
    pub fn bytes_in(&self, precision: usize) -> u64 {
        let p = precision as u64;
        match *self {
            LayerOp::ButterflyLinear { rows, n } => {
                let stages = (n as f64).log2().ceil() as u64;
                (rows * n) as u64 * p + 2 * n as u64 * stages * p
            }
            LayerOp::Fft2d { seq, hidden } => (seq * hidden) as u64 * p,
            LayerOp::DenseLinear { rows, d_in, d_out } => {
                (rows * d_in) as u64 * p + (d_in * d_out) as u64 * p
            }
            LayerOp::AttentionCore { seq, hidden, .. } => 3 * (seq * hidden) as u64 * p,
            LayerOp::PostProcess { rows, hidden } => 2 * (rows * hidden) as u64 * p,
        }
    }

    /// Bytes written back to off-chip memory.
    pub fn bytes_out(&self, precision: usize) -> u64 {
        let p = precision as u64;
        match *self {
            LayerOp::ButterflyLinear { rows, n } => (rows * n) as u64 * p,
            // FFT keeps real and imaginary parts of the intermediate result.
            LayerOp::Fft2d { seq, hidden } => 2 * (seq * hidden) as u64 * p,
            LayerOp::DenseLinear { rows, d_out, .. } => (rows * d_out) as u64 * p,
            LayerOp::AttentionCore { seq, hidden, .. } => (seq * hidden) as u64 * p,
            LayerOp::PostProcess { rows, hidden } => (rows * hidden) as u64 * p,
        }
    }

    /// Whether the op runs on the Attention Processor.
    pub fn is_attention(&self) -> bool {
        matches!(self, LayerOp::AttentionCore { .. })
    }

    /// Whether the op runs on the Butterfly Processor.
    pub fn is_butterfly(&self) -> bool {
        matches!(self, LayerOp::ButterflyLinear { .. } | LayerOp::Fft2d { .. })
    }
}

/// A block boundary marker: the ops of one encoder block, kept together so the
/// simulator can apply the fine-grained BP↔AP pipelining within a block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockOps {
    /// Human-readable block name ("FBfly", "ABfly", "Transformer", "FNet").
    pub name: String,
    /// The ops of the block in execution order.
    pub ops: Vec<LayerOp>,
}

/// The full operation schedule of one model forward pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSchedule {
    /// Sequence length the schedule was generated for.
    pub seq_len: usize,
    /// Model configuration the schedule was generated from.
    pub hidden: usize,
    /// Per-block operation lists.
    pub blocks: Vec<BlockOps>,
}

impl LayerSchedule {
    /// Builds the schedule for a model configuration, kind and sequence length.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn from_model(config: &ModelConfig, kind: ModelKind, seq: usize) -> Self {
        config.validate().expect("invalid model configuration");
        let h = config.hidden;
        let r = config.ffn_ratio;
        let n_proj = next_pow2(h);
        let n_ffn = next_pow2(h * r);
        let pseq = next_pow2(seq);
        let mut blocks = Vec::with_capacity(config.num_layers);

        let fbfly = |blocks: &mut Vec<BlockOps>| {
            blocks.push(BlockOps {
                name: "FBfly".to_string(),
                ops: vec![
                    LayerOp::Fft2d { seq: pseq, hidden: n_proj },
                    LayerOp::PostProcess { rows: seq, hidden: h },
                    LayerOp::ButterflyLinear { rows: seq, n: n_ffn },
                    LayerOp::ButterflyLinear { rows: seq, n: n_ffn },
                    LayerOp::PostProcess { rows: seq, hidden: h },
                ],
            });
        };
        let abfly = |blocks: &mut Vec<BlockOps>| {
            blocks.push(BlockOps {
                name: "ABfly".to_string(),
                ops: vec![
                    // Q, K, V projections and the output projection.
                    LayerOp::ButterflyLinear { rows: seq, n: n_proj },
                    LayerOp::ButterflyLinear { rows: seq, n: n_proj },
                    LayerOp::ButterflyLinear { rows: seq, n: n_proj },
                    LayerOp::AttentionCore { seq, hidden: h, heads: config.num_heads },
                    LayerOp::ButterflyLinear { rows: seq, n: n_proj },
                    LayerOp::PostProcess { rows: seq, hidden: h },
                    LayerOp::ButterflyLinear { rows: seq, n: n_ffn },
                    LayerOp::ButterflyLinear { rows: seq, n: n_ffn },
                    LayerOp::PostProcess { rows: seq, hidden: h },
                ],
            });
        };
        let transformer = |blocks: &mut Vec<BlockOps>| {
            blocks.push(BlockOps {
                name: "Transformer".to_string(),
                ops: vec![
                    LayerOp::DenseLinear { rows: seq, d_in: h, d_out: h },
                    LayerOp::DenseLinear { rows: seq, d_in: h, d_out: h },
                    LayerOp::DenseLinear { rows: seq, d_in: h, d_out: h },
                    LayerOp::AttentionCore { seq, hidden: h, heads: config.num_heads },
                    LayerOp::DenseLinear { rows: seq, d_in: h, d_out: h },
                    LayerOp::PostProcess { rows: seq, hidden: h },
                    LayerOp::DenseLinear { rows: seq, d_in: h, d_out: h * r },
                    LayerOp::DenseLinear { rows: seq, d_in: h * r, d_out: h },
                    LayerOp::PostProcess { rows: seq, hidden: h },
                ],
            });
        };
        let fnet = |blocks: &mut Vec<BlockOps>| {
            blocks.push(BlockOps {
                name: "FNet".to_string(),
                ops: vec![
                    LayerOp::Fft2d { seq: pseq, hidden: n_proj },
                    LayerOp::PostProcess { rows: seq, hidden: h },
                    LayerOp::DenseLinear { rows: seq, d_in: h, d_out: h * r },
                    LayerOp::DenseLinear { rows: seq, d_in: h * r, d_out: h },
                    LayerOp::PostProcess { rows: seq, hidden: h },
                ],
            });
        };

        match kind {
            ModelKind::Transformer => {
                for _ in 0..config.num_layers {
                    transformer(&mut blocks);
                }
            }
            ModelKind::FNet => {
                for _ in 0..config.num_layers {
                    fnet(&mut blocks);
                }
            }
            ModelKind::FabNet => {
                for _ in 0..config.num_fbfly() {
                    fbfly(&mut blocks);
                }
                for _ in 0..config.num_abfly {
                    abfly(&mut blocks);
                }
            }
        }
        Self { seq_len: seq, hidden: h, blocks }
    }

    /// Every op in schedule order.
    pub fn ops(&self) -> impl Iterator<Item = &LayerOp> {
        self.blocks.iter().flat_map(|b| b.ops.iter())
    }

    /// Total operation count of the workload.
    pub fn total_flops(&self) -> u64 {
        self.ops().map(|op| op.flops()).sum()
    }

    /// Total off-chip traffic in bytes for a given numeric precision.
    pub fn total_bytes(&self, precision: usize) -> u64 {
        self.ops().map(|op| op.bytes_in(precision) + op.bytes_out(precision)).sum()
    }

    /// Whether any op requires the Attention Processor.
    pub fn needs_attention(&self) -> bool {
        self.ops().any(|op| op.is_attention())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabnet_schedule_has_no_dense_layers() {
        let config = ModelConfig::fabnet_base();
        let s = LayerSchedule::from_model(&config, ModelKind::FabNet, 128);
        assert_eq!(s.blocks.len(), 12);
        assert!(s.ops().all(|op| !matches!(op, LayerOp::DenseLinear { .. })));
        assert!(!s.needs_attention());
    }

    #[test]
    fn abfly_blocks_appear_when_configured() {
        let config = ModelConfig::fabnet_base().with_abfly(2);
        let s = LayerSchedule::from_model(&config, ModelKind::FabNet, 128);
        assert!(s.needs_attention());
        let abfly_blocks = s.blocks.iter().filter(|b| b.name == "ABfly").count();
        assert_eq!(abfly_blocks, 2);
        // FBfly blocks come first (Fig. 5).
        assert_eq!(s.blocks.first().unwrap().name, "FBfly");
        assert_eq!(s.blocks.last().unwrap().name, "ABfly");
    }

    #[test]
    fn transformer_schedule_uses_dense_layers_and_attention() {
        let config = ModelConfig::bert_base();
        let s = LayerSchedule::from_model(&config, ModelKind::Transformer, 256);
        assert!(s.needs_attention());
        assert!(s.ops().any(|op| matches!(op, LayerOp::DenseLinear { .. })));
    }

    #[test]
    fn schedule_flops_track_model_flops_model() {
        let config = ModelConfig::fabnet_base();
        let seq = 256;
        let s = LayerSchedule::from_model(&config, ModelKind::FabNet, seq);
        let analytic = fab_nn::flops::flops_breakdown(&config, ModelKind::FabNet, seq).total();
        let sched = s.total_flops();
        let ratio = sched as f64 / analytic as f64;
        assert!(ratio > 0.5 && ratio < 1.5, "schedule {sched} vs analytic {analytic}");
    }

    #[test]
    fn butterfly_sizes_are_padded_to_powers_of_two() {
        let config = ModelConfig::fabnet_base(); // hidden 768 -> 1024
        let s = LayerSchedule::from_model(&config, ModelKind::FabNet, 100);
        for op in s.ops() {
            if let LayerOp::ButterflyLinear { n, .. } = op {
                assert!(n.is_power_of_two());
            }
            if let LayerOp::Fft2d { seq, hidden } = op {
                assert!(seq.is_power_of_two() && hidden.is_power_of_two());
            }
        }
    }

    #[test]
    fn longer_sequences_move_traffic_and_compute_up() {
        let config = ModelConfig::fabnet_large();
        let short = LayerSchedule::from_model(&config, ModelKind::FabNet, 128);
        let long = LayerSchedule::from_model(&config, ModelKind::FabNet, 1024);
        assert!(long.total_flops() > 6 * short.total_flops());
        assert!(long.total_bytes(2) > 4 * short.total_bytes(2));
    }
}
