//! Functional and cycle models of the adaptable Butterfly Unit, the Butterfly
//! Engine and the Attention Engine (Fig. 6 and Fig. 7 of the paper).

use fab_butterfly::Complex;
use serde::{Deserialize, Serialize};

/// The two runtime configurations of an adaptable Butterfly Unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ButterflyUnitMode {
    /// FFT mode: complex symmetric twiddle, one complex multiply per butterfly.
    Fft,
    /// Butterfly linear transform mode: four independent real twiddles.
    Linear,
}

/// Functional model of one adaptable Butterfly Unit (Fig. 7a).
///
/// The unit owns four real multipliers, two real adders/subtractors and two
/// complex adders/subtractors; multiplexers select which operands reach the
/// multipliers so the same datapath serves both modes.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptableButterflyUnit;

impl AdaptableButterflyUnit {
    /// Creates a butterfly unit model.
    pub fn new() -> Self {
        Self
    }

    /// Number of real-valued multipliers in the unit (fixed by the design).
    pub const MULTIPLIERS: usize = 4;

    /// Executes one butterfly in linear-transform mode (Fig. 7b):
    ///
    /// ```text
    /// out1 = w1·in1 + w2·in2
    /// out2 = w3·in1 + w4·in2
    /// ```
    ///
    /// consuming exactly the unit's four multipliers and two real adders.
    pub fn linear(&self, in1: f32, in2: f32, w: (f32, f32, f32, f32)) -> (f32, f32) {
        let (w1, w2, w3, w4) = w;
        // Four real multiplies.
        let m1 = w1 * in1;
        let m2 = w2 * in2;
        let m3 = w3 * in1;
        let m4 = w4 * in2;
        // Two real adds; the complex adders are bypassed by the de-multiplexers.
        (m1 + m2, m3 + m4)
    }

    /// Executes one butterfly in FFT mode (Fig. 7c):
    ///
    /// ```text
    /// t    = w · in2          (complex multiply, reusing the 4 real multipliers)
    /// out1 = in1 + t
    /// out2 = in1 - t
    /// ```
    pub fn fft(&self, in1: Complex, in2: Complex, w: Complex) -> (Complex, Complex) {
        // The four real multipliers compute the complex product w * in2.
        let m1 = w.re * in2.re;
        let m2 = w.im * in2.im;
        let m3 = w.re * in2.im;
        let m4 = w.im * in2.re;
        // Real adders form the product; complex adders form the outputs.
        let t = Complex::new(m1 - m2, m3 + m4);
        (in1 + t, in1 - t)
    }
}

/// Cycle model of a Butterfly Engine: `num_bu` adaptable Butterfly Units fed
/// by the banked butterfly memory, processing one butterfly per unit per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ButterflyEngineModel {
    /// Number of butterfly units in the engine (`P_BU`).
    pub num_bu: usize,
}

impl ButterflyEngineModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics when `num_bu` is zero.
    pub fn new(num_bu: usize) -> Self {
        assert!(num_bu > 0, "a butterfly engine needs at least one butterfly unit");
        Self { num_bu }
    }

    /// Cycles to run a size-`n` butterfly transform (FFT or linear) over one
    /// row: `log2(n)` stages of `n/2` butterflies each.
    pub fn cycles_per_row(&self, n: usize) -> u64 {
        let stages = (n as f64).log2().ceil() as u64;
        let butterflies = stages * (n as u64 / 2);
        butterflies.div_ceil(self.num_bu as u64)
    }

    /// Cycles to process `rows` rows of a size-`n` transform on one engine.
    pub fn cycles(&self, rows: usize, n: usize) -> u64 {
        rows as u64 * self.cycles_per_row(n)
    }
}

/// Cycle model of an Attention Engine (one QK unit + one SV unit, Fig. 6c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttentionEngineModel {
    /// Multipliers in the QK unit (`P_qk`).
    pub pqk: usize,
    /// Multipliers in the SV unit (`P_sv`).
    pub psv: usize,
}

impl AttentionEngineModel {
    /// Creates the model.
    pub fn new(pqk: usize, psv: usize) -> Self {
        Self { pqk, psv }
    }

    /// Cycles for the `Q·K^T` product (plus the pipelined softmax) of one
    /// attention layer on one engine.
    pub fn qk_cycles(&self, seq: usize, hidden: usize) -> u64 {
        if self.pqk == 0 {
            return u64::MAX;
        }
        let macs = seq as u64 * seq as u64 * hidden as u64;
        macs.div_ceil(self.pqk as u64)
    }

    /// Cycles for the `S·V` product of one attention layer on one engine.
    pub fn sv_cycles(&self, seq: usize, hidden: usize) -> u64 {
        if self.psv == 0 {
            return u64::MAX;
        }
        let macs = seq as u64 * seq as u64 * hidden as u64;
        macs.div_ceil(self.psv as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_butterfly::ButterflyMatrix;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn linear_mode_matches_butterfly_stage_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let bfly = ButterflyMatrix::random(4, &mut rng).unwrap();
        let bu = AdaptableButterflyUnit::new();
        let x = [0.7f32, -1.3, 0.2, 0.9];
        let expected = bfly.forward(&x);
        // Re-execute the first stage by hand through the BU and the remaining
        // stage through the reference to make sure per-butterfly semantics match.
        let stage0 = &bfly.stages()[0];
        let mut after0 = x.to_vec();
        for p in 0..stage0.pairs() {
            let (i1, i2) = stage0.pair_indices(p);
            let (o1, o2) = bu.linear(x[i1], x[i2], stage0.weights(p));
            after0[i1] = o1;
            after0[i2] = o2;
        }
        let stage1 = &bfly.stages()[1];
        let mut after1 = after0.clone();
        for p in 0..stage1.pairs() {
            let (i1, i2) = stage1.pair_indices(p);
            let (o1, o2) = bu.linear(after0[i1], after0[i2], stage1.weights(p));
            after1[i1] = o1;
            after1[i2] = o2;
        }
        for (a, b) in after1.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn fft_mode_matches_complex_arithmetic() {
        let bu = AdaptableButterflyUnit::new();
        let a = Complex::new(0.3, -0.7);
        let b = Complex::new(1.2, 0.4);
        let w = Complex::from_polar(0.77);
        let (o1, o2) = bu.fft(a, b, w);
        let t = w * b;
        assert!((o1.re - (a + t).re).abs() < 1e-6 && (o1.im - (a + t).im).abs() < 1e-6);
        assert!((o2.re - (a - t).re).abs() < 1e-6 && (o2.im - (a - t).im).abs() < 1e-6);
    }

    #[test]
    fn butterfly_unit_has_four_multipliers() {
        assert_eq!(AdaptableButterflyUnit::MULTIPLIERS, 4);
    }

    #[test]
    fn engine_cycles_scale_with_parallelism() {
        let one = ButterflyEngineModel::new(1);
        let four = ButterflyEngineModel::new(4);
        assert_eq!(one.cycles_per_row(1024), 4 * four.cycles_per_row(1024));
        // 1024-point transform: 10 stages x 512 butterflies = 5120 butterflies.
        assert_eq!(one.cycles_per_row(1024), 5120);
    }

    #[test]
    fn attention_engine_cycle_counts() {
        let ae = AttentionEngineModel::new(8, 8);
        // seq 64, hidden 32: 64*64*32 = 131072 MACs per product.
        assert_eq!(ae.qk_cycles(64, 32), 131072 / 8);
        assert_eq!(ae.sv_cycles(64, 32), 131072 / 8);
        let disabled = AttentionEngineModel::new(0, 0);
        assert_eq!(disabled.qk_cycles(64, 32), u64::MAX);
    }
}
