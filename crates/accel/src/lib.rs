//! # fab-accel
//!
//! A performance, resource and power model of the paper's **adaptable
//! butterfly accelerator**, plus a functional model of its datapath.
//!
//! The accelerator (Section IV of the paper) consists of a Butterfly
//! Processor (`P_BE` Butterfly Engines, each with `P_BU` adaptable Butterfly
//! Units), an Attention Processor (`P_head` Attention Engines with QK and SV
//! units), a post-processing unit for layer norm / shortcuts, and a banked
//! butterfly memory system that avoids bank conflicts through a custom data
//! layout (S2P permutation + index coalescing). A single unified engine
//! executes both FFTs and butterfly linear transforms by reconfiguring the
//! Butterfly Units at runtime.
//!
//! This crate reproduces:
//!
//! * the **cycle-level latency model** the authors used for their evaluation
//!   (they report latency from "a cycle-accurate performance model ...
//!   cross-validated with RTL simulation"), including double buffering and
//!   the fine-grained BP↔AP pipelining of Section V-B ([`Simulator`]);
//! * the **analytic DSP/BRAM/LUT/FF resource model** of Section V-C
//!   ([`resources`]) and the **power model** calibrated to Table VI
//!   ([`power`]);
//! * a **functional model** of the adaptable Butterfly Unit and the butterfly
//!   memory system ([`functional`], [`memory`]), cross-validated against the
//!   `fab-butterfly` reference kernels (the paper's Appendix C methodology).
//!
//! # Example
//!
//! ```rust
//! use fab_accel::{AcceleratorConfig, Simulator, workload::LayerSchedule};
//! use fab_nn::{ModelConfig, ModelKind};
//!
//! let hw = AcceleratorConfig::vcu128_fabnet();
//! let model = ModelConfig::fabnet_base();
//! let schedule = LayerSchedule::from_model(&model, ModelKind::FabNet, 128);
//! let report = Simulator::new(hw).simulate(&schedule);
//! assert!(report.total_seconds() > 0.0);
//! ```

#![warn(missing_docs)]

mod config;
mod engine;
pub mod functional;
pub mod memory;
pub mod power;
pub mod resources;
mod simulator;
pub mod workload;

pub use config::{AcceleratorConfig, AcceleratorError, FpgaDevice, MemoryKind};
pub use engine::{
    AdaptableButterflyUnit, AttentionEngineModel, ButterflyEngineModel, ButterflyUnitMode,
};
pub use simulator::{LatencyReport, LayerTiming, Simulator};
