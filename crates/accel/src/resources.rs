//! The analytic FPGA resource model of Section V-C, calibrated against the
//! post-place-&-route numbers reported in Table VII.
//!
//! DSP usage follows the paper's closed form exactly
//! (`DSP = P_be · P_bu · 4 + P_head · (P_qk + P_sv)`); BRAM follows the
//! buffer inventory (`(BRAM_bfly + BRAM_weight) · P_be + key/query/shortcut
//! buffers`); LUT and register counts are linear fits through the two
//! reported design points (BE-40 and BE-120 on the VCU128).

use crate::config::{AcceleratorConfig, AcceleratorError, FpgaDevice, MemoryKind};
use serde::{Deserialize, Serialize};

/// Estimated FPGA resource usage of a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub luts: u64,
    /// Registers / flip-flops.
    pub registers: u64,
    /// DSP48 blocks.
    pub dsps: u64,
    /// 36Kb BRAM blocks.
    pub brams: u64,
    /// HBM stacks used.
    pub hbm_stacks: u64,
}

/// BRAM blocks consumed per Butterfly Engine (butterfly buffer + weight buffer).
const BRAM_PER_BE: u64 = 8;
/// BRAM blocks for the shared key, query and shortcut buffers.
const BRAM_FIXED: u64 = 18;
/// Control/memory-system LUTs per Butterfly Engine.
const LUT_PER_BE: u64 = 2_850;
/// Datapath LUTs per adaptable Butterfly Unit.
const LUT_PER_BU: u64 = 1_400;
/// Platform overhead (HBM controller, interfaces) on HBM devices.
const LUT_FIXED_HBM: u64 = 20_609;
/// Platform overhead on DDR devices.
const LUT_FIXED_DDR: u64 = 5_000;
/// Register costs, split the same way.
const REG_PER_BE: i64 = 2_000;
const REG_PER_BU: i64 = 2_975;
const REG_FIXED_HBM: i64 = -19_150;
const REG_FIXED_DDR: i64 = 10_000;
/// Logic cost per attention-processor multiplier.
const LUT_PER_AP_MULT: u64 = 60;
const REG_PER_AP_MULT: u64 = 90;
const BRAM_PER_AE: u64 = 4;

/// Estimates the resource usage of a design point.
pub fn estimate(config: &AcceleratorConfig) -> ResourceUsage {
    let be = config.num_be as u64;
    let bu_total = (config.num_be * config.num_bu) as u64;
    let ap_mults = (config.num_heads_units * (config.pqk + config.psv)) as u64;
    let (lut_fixed, reg_fixed) = match config.memory {
        MemoryKind::Hbm => (LUT_FIXED_HBM, REG_FIXED_HBM),
        MemoryKind::Ddr4 => (LUT_FIXED_DDR, REG_FIXED_DDR),
    };
    let luts = lut_fixed + LUT_PER_BE * be + LUT_PER_BU * bu_total + LUT_PER_AP_MULT * ap_mults;
    let registers = (reg_fixed + REG_PER_BE * be as i64 + REG_PER_BU * bu_total as i64).max(40_000)
        as u64
        + REG_PER_AP_MULT * ap_mults;
    let dsps = config.num_multipliers() as u64;
    let brams = BRAM_FIXED + BRAM_PER_BE * be + BRAM_PER_AE * config.num_heads_units as u64;
    let hbm_stacks = match config.memory {
        MemoryKind::Hbm => 1,
        MemoryKind::Ddr4 => 0,
    };
    ResourceUsage { luts, registers, dsps, brams, hbm_stacks }
}

/// Per-resource utilisation of a device, as percentages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// LUT utilisation (%).
    pub luts: f64,
    /// Register utilisation (%).
    pub registers: f64,
    /// DSP utilisation (%).
    pub dsps: f64,
    /// BRAM utilisation (%).
    pub brams: f64,
}

/// Computes the utilisation of `usage` on `device`.
pub fn utilization(usage: &ResourceUsage, device: &FpgaDevice) -> Utilization {
    Utilization {
        luts: 100.0 * usage.luts as f64 / device.luts as f64,
        registers: 100.0 * usage.registers as f64 / device.registers as f64,
        dsps: 100.0 * usage.dsps as f64 / device.dsps as f64,
        brams: 100.0 * usage.brams as f64 / device.brams as f64,
    }
}

/// Checks that a design fits on its target device.
///
/// # Errors
///
/// Returns [`AcceleratorError::ResourceOverflow`] naming the first resource
/// that does not fit.
pub fn check_fits(config: &AcceleratorConfig) -> Result<ResourceUsage, AcceleratorError> {
    let usage = estimate(config);
    let device = &config.device;
    let checks: [(&'static str, u64, u64); 4] = [
        ("LUTs", usage.luts, device.luts),
        ("registers", usage.registers, device.registers),
        ("DSPs", usage.dsps, device.dsps),
        ("BRAMs", usage.brams, device.brams),
    ];
    for (resource, required, available) in checks {
        if required > available {
            return Err(AcceleratorError::ResourceOverflow { resource, required, available });
        }
    }
    Ok(usage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: u64, expected: u64, tolerance: f64) -> bool {
        let diff = (actual as f64 - expected as f64).abs();
        diff / expected as f64 <= tolerance
    }

    #[test]
    fn be40_matches_table_vii() {
        let usage = estimate(&AcceleratorConfig::vcu128_be40());
        assert_eq!(usage.dsps, 640);
        assert!(within(usage.brams, 338, 0.02), "brams {}", usage.brams);
        assert!(within(usage.luts, 358_609, 0.02), "luts {}", usage.luts);
        assert!(within(usage.registers, 536_810, 0.02), "regs {}", usage.registers);
        assert_eq!(usage.hbm_stacks, 1);
    }

    #[test]
    fn be120_matches_table_vii() {
        let usage = estimate(&AcceleratorConfig::vcu128_be120());
        assert_eq!(usage.dsps, 1920);
        assert!(within(usage.brams, 978, 0.02), "brams {}", usage.brams);
        assert!(within(usage.luts, 1_034_610, 0.02), "luts {}", usage.luts);
        assert!(within(usage.registers, 1_648_695, 0.02), "regs {}", usage.registers);
    }

    #[test]
    fn dsp_equation_matches_section_v() {
        // DSP = Pbe*Pbu*4 + Phead*(Pqk+Psv)
        let config = AcceleratorConfig::vcu128_be40().with_attention_units(8, 16, 16);
        assert_eq!(estimate(&config).dsps, (40 * 4 * 4 + 8 * 32) as u64);
    }

    #[test]
    fn both_paper_designs_fit_the_vcu128() {
        assert!(check_fits(&AcceleratorConfig::vcu128_be40()).is_ok());
        assert!(check_fits(&AcceleratorConfig::vcu128_be120()).is_ok());
        assert!(check_fits(&AcceleratorConfig::zynq7045_edge()).is_ok());
    }

    #[test]
    fn oversized_designs_are_rejected() {
        let too_big = AcceleratorConfig::zynq7045_edge().with_bes(200);
        assert!(matches!(check_fits(&too_big), Err(AcceleratorError::ResourceOverflow { .. })));
    }

    #[test]
    fn utilization_matches_table_vii_percentages() {
        let config = AcceleratorConfig::vcu128_be120();
        let u = utilization(&estimate(&config), &config.device);
        // Table VII reports 79.3% LUTs, 63.2% registers and 48.5% BRAMs for
        // BE-120. (The table's DSP row reports 2,880 DSPs, i.e. 1.5 DSPs per
        // multiplier; the analytic model of Section V-C counts multipliers
        // directly, giving 1,920 ≈ 21%.)
        assert!((u.luts - 79.3).abs() < 3.0, "lut util {}", u.luts);
        assert!((u.registers - 63.2).abs() < 3.0, "reg util {}", u.registers);
        assert!((u.dsps - 21.3).abs() < 2.0, "dsp util {}", u.dsps);
        assert!((u.brams - 48.5).abs() < 3.0, "bram util {}", u.brams);
    }
}
