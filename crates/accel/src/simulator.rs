//! The cycle-level latency model of the adaptable butterfly accelerator.
//!
//! The model walks a [`LayerSchedule`] and, for every operation, derives
//! compute cycles from the configured parallelism (`P_be`, `P_bu`, `P_head`,
//! `P_qk`, `P_sv`) and off-chip transfer cycles from the provisioned
//! bandwidth, then combines them according to the double-buffering overlap
//! strategies of Section V-A (Fig. 13) and the fine-grained BP↔AP pipelining
//! of Section V-B (Fig. 14).

use crate::config::AcceleratorConfig;
use crate::engine::{AttentionEngineModel, ButterflyEngineModel};
use crate::workload::{LayerOp, LayerSchedule};
use serde::{Deserialize, Serialize};

/// Timing of a single scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// The operation.
    pub op: LayerOp,
    /// Cycles the compute engines are busy.
    pub compute_cycles: u64,
    /// Cycles the off-chip interface is busy (input + output transfers).
    pub memory_cycles: u64,
    /// Cycles charged to the operation after overlap.
    pub latency_cycles: u64,
}

impl LayerTiming {
    /// Whether the operation is limited by off-chip bandwidth rather than compute.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_cycles > self.compute_cycles
    }
}

/// End-to-end latency report for one model forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Clock frequency the cycle counts are referenced to (MHz).
    pub clock_mhz: f64,
    /// Per-operation timings in schedule order.
    pub timings: Vec<LayerTiming>,
    /// Total cycles of the forward pass.
    pub total_cycles: u64,
    /// Cycles spent in operations mapped to the Butterfly Processor.
    pub butterfly_cycles: u64,
    /// Cycles spent in operations mapped to the Attention Processor.
    pub attention_cycles: u64,
    /// Cycles spent in post-processing (layer norm, shortcut).
    pub postprocess_cycles: u64,
    /// Cycles saved by the fine-grained BP↔AP pipelining.
    pub pipeline_savings_cycles: u64,
    /// Total operation count of the workload.
    pub total_flops: u64,
}

impl LatencyReport {
    /// Total latency in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Total latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }

    /// Achieved throughput in GOP/s.
    pub fn achieved_gops(&self) -> f64 {
        self.total_flops as f64 / self.total_seconds() / 1e9
    }

    /// Predictions per second for this workload.
    pub fn throughput_pred_per_sec(&self) -> f64 {
        1.0 / self.total_seconds()
    }

    /// Fraction of operations that are bandwidth-limited.
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.timings.is_empty() {
            return 0.0;
        }
        self.timings.iter().filter(|t| t.is_memory_bound()).count() as f64
            / self.timings.len() as f64
    }
}

/// The accelerator latency simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: AcceleratorConfig,
}

impl Simulator {
    /// Creates a simulator for a hardware configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`AcceleratorConfig::validate`].
    pub fn new(config: AcceleratorConfig) -> Self {
        config.validate().expect("invalid accelerator configuration");
        Self { config }
    }

    /// The hardware configuration being simulated.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Simulates one forward pass of `schedule`.
    ///
    /// # Panics
    ///
    /// Panics when the schedule contains attention layers but the design has
    /// no QK/SV units (`supports_attention()` is false). Use
    /// [`AcceleratorConfig::with_attention_units`] for ABfly workloads.
    pub fn simulate(&self, schedule: &LayerSchedule) -> LatencyReport {
        assert!(
            !schedule.needs_attention() || self.config.supports_attention(),
            "schedule needs the Attention Processor but the design has no QK/SV units"
        );
        let be = ButterflyEngineModel::new(self.config.num_bu);
        let ae = AttentionEngineModel::new(self.config.pqk, self.config.psv);
        let bytes_per_cycle = self.config.bytes_per_cycle();
        let precision = self.config.precision_bytes;

        let mut timings = Vec::new();
        let mut total_cycles = 0u64;
        let mut butterfly_cycles = 0u64;
        let mut attention_cycles = 0u64;
        let mut postprocess_cycles = 0u64;
        let mut pipeline_savings = 0u64;

        for block in &schedule.blocks {
            let mut block_cycles = 0u64;
            // Latency of the projection op immediately preceding the attention
            // core; used to compute the BP↔AP overlap.
            let mut prev_projection_cycles = 0u64;
            for op in &block.ops {
                let (compute, seq_rows) = self.compute_cycles(&be, &ae, op);
                let mem_in = (op.bytes_in(precision) as f64 / bytes_per_cycle).ceil() as u64;
                let mem_out = (op.bytes_out(precision) as f64 / bytes_per_cycle).ceil() as u64;
                let latency = match op {
                    // Butterfly linear transform: ping-pong banks let input,
                    // compute and output all overlap (Fig. 13a).
                    LayerOp::ButterflyLinear { n, .. } => {
                        let fill = (*n as f64).log2().ceil() as u64 + 16;
                        compute.max(mem_in).max(mem_out) + fill
                    }
                    // FFT: real+imaginary parts occupy both ping-pong banks, so
                    // only the output store overlaps with the next input load
                    // (Fig. 13b).
                    LayerOp::Fft2d { .. } => compute.max(mem_in + mem_out) + 16,
                    // Dense layers are not native to the butterfly engine; they
                    // run as MAC operations over the BP multipliers (used only
                    // when simulating non-FABNet models for reference).
                    LayerOp::DenseLinear { .. } => compute.max(mem_in).max(mem_out) + 16,
                    LayerOp::AttentionCore { seq, .. } => {
                        let qk = ae.qk_cycles(*seq, schedule.hidden)
                            / self.config.num_heads_units.max(1) as u64;
                        let sv = ae.sv_cycles(*seq, schedule.hidden)
                            / self.config.num_heads_units.max(1) as u64;
                        let naive = qk + sv;
                        if self.config.fine_grained_pipelining {
                            // Section V-B: Q·K^T overlaps with the Q projection
                            // still running on the BP, and S·V overlaps with
                            // Q·K^T row by row. The reduction is
                            // (M-1)/M · T_QK + (L-1)/L · T_SV, bounded by the
                            // work actually available to overlap with.
                            let rows = *seq as u64;
                            let qk_overlap =
                                (qk * (rows - 1) / rows.max(1)).min(prev_projection_cycles);
                            let sv_overlap = (sv * (rows - 1) / rows.max(1)).min(qk);
                            let saved = qk_overlap + sv_overlap;
                            pipeline_savings += saved;
                            (naive - saved).max(mem_in).max(mem_out)
                        } else {
                            naive.max(mem_in).max(mem_out)
                        }
                    }
                    // Layer norm and shortcut run on the post-processing unit,
                    // streaming over the data once.
                    LayerOp::PostProcess { .. } => compute.max(mem_in).max(mem_out),
                };
                let _ = seq_rows;
                if let LayerOp::ButterflyLinear { .. } = op {
                    prev_projection_cycles = latency;
                }
                match op {
                    LayerOp::ButterflyLinear { .. }
                    | LayerOp::Fft2d { .. }
                    | LayerOp::DenseLinear { .. } => butterfly_cycles += latency,
                    LayerOp::AttentionCore { .. } => attention_cycles += latency,
                    LayerOp::PostProcess { .. } => postprocess_cycles += latency,
                }
                timings.push(LayerTiming {
                    op: *op,
                    compute_cycles: compute,
                    memory_cycles: mem_in + mem_out,
                    latency_cycles: latency,
                });
                block_cycles += latency;
            }
            total_cycles += block_cycles;
        }

        LatencyReport {
            clock_mhz: self.config.clock_mhz,
            timings,
            total_cycles,
            butterfly_cycles,
            attention_cycles,
            postprocess_cycles,
            pipeline_savings_cycles: pipeline_savings,
            total_flops: schedule.total_flops(),
        }
    }

    /// Raw compute cycles of one op, before any memory overlap.
    fn compute_cycles(
        &self,
        be: &ButterflyEngineModel,
        ae: &AttentionEngineModel,
        op: &LayerOp,
    ) -> (u64, usize) {
        let num_be = self.config.num_be as u64;
        match *op {
            LayerOp::ButterflyLinear { rows, n } => (be.cycles(rows, n).div_ceil(num_be), rows),
            LayerOp::Fft2d { seq, hidden } => {
                // One FFT along the hidden dimension per row plus one along the
                // sequence dimension per column; each BU completes one complex
                // butterfly per cycle.
                let row_ffts = be.cycles(seq, hidden);
                let col_ffts = be.cycles(hidden, seq);
                ((row_ffts + col_ffts).div_ceil(num_be), seq)
            }
            LayerOp::DenseLinear { rows, d_in, d_out } => {
                let macs = rows as u64 * d_in as u64 * d_out as u64;
                // Dense GEMM keeps only half of the butterfly datapath busy.
                let effective = (self.config.num_multipliers() as u64 / 2).max(1);
                (macs.div_ceil(effective), rows)
            }
            LayerOp::AttentionCore { seq, hidden, .. } => {
                let heads_units = self.config.num_heads_units.max(1) as u64;
                let qk = ae.qk_cycles(seq, hidden) / heads_units;
                let sv = ae.sv_cycles(seq, hidden) / heads_units;
                (qk.saturating_add(sv), seq)
            }
            LayerOp::PostProcess { rows, hidden } => {
                // The post-processing unit normalises `P_head`-independent lanes;
                // model a fixed 64-lane streaming engine.
                (((rows * hidden) as u64).div_ceil(64), rows)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_nn::{ModelConfig, ModelKind};

    fn fabnet_schedule(seq: usize) -> LayerSchedule {
        LayerSchedule::from_model(&ModelConfig::fabnet_base(), ModelKind::FabNet, seq)
    }

    #[test]
    fn latency_is_positive_and_scales_with_sequence_length() {
        let sim = Simulator::new(AcceleratorConfig::vcu128_be120());
        let short = sim.simulate(&fabnet_schedule(128));
        let long = sim.simulate(&fabnet_schedule(1024));
        assert!(short.total_seconds() > 0.0);
        assert!(long.total_cycles > 4 * short.total_cycles);
    }

    #[test]
    fn more_butterfly_engines_reduce_latency() {
        let schedule = fabnet_schedule(1024);
        let small =
            Simulator::new(AcceleratorConfig::vcu128_be120().with_bes(16)).simulate(&schedule);
        let big =
            Simulator::new(AcceleratorConfig::vcu128_be120().with_bes(128)).simulate(&schedule);
        assert!(small.total_cycles > big.total_cycles);
    }

    #[test]
    fn latency_saturates_with_bandwidth() {
        // Fig. 21: beyond some bandwidth the design becomes compute-bound and
        // extra bandwidth no longer helps.
        let schedule = fabnet_schedule(1024);
        let base = AcceleratorConfig::vcu128_be120().with_bes(16);
        let starved = Simulator::new(base.clone().with_bandwidth(6.0)).simulate(&schedule);
        let medium = Simulator::new(base.clone().with_bandwidth(50.0)).simulate(&schedule);
        let plenty = Simulator::new(base.clone().with_bandwidth(200.0)).simulate(&schedule);
        assert!(starved.total_cycles > medium.total_cycles);
        let gain = medium.total_cycles as f64 / plenty.total_cycles as f64;
        assert!(gain < 1.1, "16 BEs should be compute-bound beyond 50 GB/s, gain {gain}");
    }

    #[test]
    fn large_designs_need_more_bandwidth_to_saturate() {
        let schedule = fabnet_schedule(1024);
        let big = AcceleratorConfig::vcu128_be120().with_bes(128);
        let at50 = Simulator::new(big.clone().with_bandwidth(50.0)).simulate(&schedule);
        let at100 = Simulator::new(big.clone().with_bandwidth(100.0)).simulate(&schedule);
        assert!(
            at50.total_cycles as f64 > 1.02 * at100.total_cycles as f64,
            "a 128-BE design should still benefit from 50 -> 100 GB/s: {} vs {}",
            at50.total_cycles,
            at100.total_cycles
        );
    }

    #[test]
    fn fine_grained_pipelining_helps_abfly_workloads() {
        let config = ModelConfig::fabnet_base().with_abfly(4);
        let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, 256);
        let hw = AcceleratorConfig::vcu128_be120().with_attention_units(8, 16, 16);
        let piped = Simulator::new(hw.clone()).simulate(&schedule);
        let naive = Simulator::new(hw.without_fine_grained_pipelining()).simulate(&schedule);
        assert!(piped.total_cycles < naive.total_cycles);
        assert!(piped.pipeline_savings_cycles > 0);
    }

    #[test]
    #[should_panic(expected = "Attention Processor")]
    fn attention_workload_requires_attention_units() {
        let config = ModelConfig::fabnet_base().with_abfly(1);
        let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, 128);
        let sim = Simulator::new(AcceleratorConfig::vcu128_fabnet());
        let _ = sim.simulate(&schedule);
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let sim = Simulator::new(AcceleratorConfig::vcu128_be40());
        let report = sim.simulate(&fabnet_schedule(256));
        let summed: u64 = report.timings.iter().map(|t| t.latency_cycles).sum();
        assert_eq!(summed, report.total_cycles);
        assert_eq!(
            report.butterfly_cycles + report.attention_cycles + report.postprocess_cycles,
            report.total_cycles
        );
        assert!(report.achieved_gops() > 0.0);
        // A linear butterfly performs 6 ops (4 mul + 2 add) and an FFT
        // butterfly 10 ops on 4 multipliers, so the achieved GOPs can exceed
        // the multiplier-count "peak" by up to 2.5x; anything above that would
        // indicate double-counted work.
        assert!(report.achieved_gops() <= sim.config().peak_gops() * 2.6);
    }
}
