//! Property-based tests of the accelerator's memory system and simulator
//! invariants.

use fab_accel::memory::{bank_and_column, stage_pairs, Layout, TransformAccessReport};
use fab_accel::workload::LayerSchedule;
use fab_accel::{AcceleratorConfig, Simulator};
use fab_nn::{ModelConfig, ModelKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn butterfly_layout_is_always_a_bank_permutation(log_n in 4u32..10, log_banks in 2u32..5) {
        let n = 1usize << log_n;
        let banks = 1usize << log_banks;
        prop_assume!(banks <= n);
        // Every storage column must contain exactly one element per bank.
        for col in 0..n / banks {
            let mut seen = vec![false; banks];
            for idx in col * banks..(col + 1) * banks {
                let (bank, _) = bank_and_column(Layout::Butterfly, idx, n, banks);
                prop_assert!(!seen[bank]);
                seen[bank] = true;
            }
        }
    }

    #[test]
    fn butterfly_layout_never_stalls(log_n in 4u32..11, log_banks in 2u32..5) {
        let n = 1usize << log_n;
        let banks = 1usize << log_banks;
        prop_assume!(banks <= n);
        let report = TransformAccessReport::analyze(Layout::Butterfly, n, banks);
        prop_assert!(report.is_conflict_free());
    }

    #[test]
    fn stage_pairs_form_a_perfect_matching(log_n in 2u32..10, stage in 0usize..9) {
        let n = 1usize << log_n;
        prop_assume!((1usize << (stage + 1)) <= n);
        let pairs = stage_pairs(n, stage);
        prop_assert_eq!(pairs.len(), n / 2);
        let mut seen = vec![false; n];
        for (a, b) in pairs {
            prop_assert_eq!(b - a, 1usize << stage);
            prop_assert!(!seen[a] && !seen[b]);
            seen[a] = true;
            seen[b] = true;
        }
    }

    #[test]
    fn latency_is_monotone_in_parallelism(seq_pow in 5u32..9, bes in 1usize..4) {
        let seq = 1usize << seq_pow;
        let small_bes = 16 * bes;
        let big_bes = small_bes * 2;
        let config = ModelConfig::fabnet_base();
        let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, seq);
        let small = Simulator::new(AcceleratorConfig::vcu128_be120().with_bes(small_bes)).simulate(&schedule);
        let big = Simulator::new(AcceleratorConfig::vcu128_be120().with_bes(big_bes)).simulate(&schedule);
        prop_assert!(big.total_cycles <= small.total_cycles);
    }

    #[test]
    fn latency_is_monotone_in_bandwidth(bw_low in 6.0f64..40.0, extra in 10.0f64..200.0) {
        let config = ModelConfig::fabnet_large();
        let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, 512);
        let base = AcceleratorConfig::vcu128_be120().with_bes(64);
        let slow = Simulator::new(base.clone().with_bandwidth(bw_low)).simulate(&schedule);
        let fast = Simulator::new(base.clone().with_bandwidth(bw_low + extra)).simulate(&schedule);
        prop_assert!(fast.total_cycles <= slow.total_cycles);
    }

    #[test]
    fn resource_estimates_are_monotone_in_design_size(bes_small in 4usize..60, delta in 1usize..60) {
        use fab_accel::resources::estimate;
        let small = estimate(&AcceleratorConfig::vcu128_be120().with_bes(bes_small));
        let big = estimate(&AcceleratorConfig::vcu128_be120().with_bes(bes_small + delta));
        prop_assert!(big.luts > small.luts);
        prop_assert!(big.dsps > small.dsps);
        prop_assert!(big.brams > small.brams);
    }
}
