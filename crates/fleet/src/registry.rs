//! The model registry: named, versioned, ref-counted model entries with
//! atomic swap and a loading → ready → draining → retired lifecycle.
//!
//! Hot reload never drops a request. The sequence:
//!
//! 1. [`Registry::begin_load`] marks the name as loading (a reload keeps
//!    the old version serving — the mark only blocks a *second* concurrent
//!    load of the same name).
//! 2. The caller builds the new model (training is its business) and
//!    commits a running [`Server`] via [`LoadTicket::commit`]; the new
//!    entry is swapped into the name under the write lock — lookups see
//!    either the old or the new version, never a gap.
//! 3. The old entry moves to *draining*: a reaper thread waits for every
//!    outstanding [`ModelHandle`] (held across the resolve→submit window,
//!    never across a blocking wait) to drop, then calls
//!    [`Server::shutdown`] — which answers every request still queued —
//!    and marks the entry *retired*.
//!
//! Every request admitted against the old version is therefore answered
//! (the PR-6 zero-drop drain invariant), while new lookups route to the
//! new version immediately.

use crate::FleetError;
use fab_serve::{Server, ServerHandle};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, Weak};
use std::time::Duration;

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How often a reaper polls for the last outstanding handle.
const REAP_POLL: Duration = Duration::from_millis(1);
/// Retired entries kept for `models()` listings.
const RETIRED_HISTORY: usize = 32;

/// Lifecycle state of a registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelState {
    /// `begin_load` ran; no server committed for this version yet.
    Loading,
    /// Serving traffic.
    Ready,
    /// Swapped out (reload/unload); answering its admitted requests.
    Draining,
    /// Fully drained; its server is gone.
    Retired,
}

impl ModelState {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ModelState::Loading => "loading",
            ModelState::Ready => "ready",
            ModelState::Draining => "draining",
            ModelState::Retired => "retired",
        }
    }
}

impl fmt::Display for ModelState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a committed model version came from — operators watch this to spot
/// snapshot-corruption (fallback) and retrain-on-miss events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSource {
    /// Restored from the newest valid snapshot (warm start).
    Warm,
    /// Trained in-process (cold start, hot reload, or snapshot miss).
    Trained,
    /// Restored from an *older* snapshot after the newest was rejected as
    /// corrupt or stale.
    Fallback,
}

impl ModelSource {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ModelSource::Warm => "warm",
            ModelSource::Trained => "trained",
            ModelSource::Fallback => "fallback",
        }
    }
}

impl fmt::Display for ModelSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identity of a fleet model: what it is, not how it is doing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Registry name (route key).
    pub name: String,
    /// Task the model was trained for (e.g. `text`, `pathfinder`).
    pub task: String,
    /// Architecture (e.g. `fabnet`, `transformer`).
    pub arch: String,
    /// Serving precision (`f32` / `fastmath` / `int8`).
    pub precision: String,
}

/// A registry entry: one version of one named model.
struct ModelEntry {
    spec: ModelSpec,
    version: u64,
    source: ModelSource,
    state: Mutex<ModelState>,
    /// The running server; taken (consumed) by the reaper at drain time.
    server: Mutex<Option<Server>>,
    /// Kept separately so requests never contend with the reaper.
    handle: ServerHandle,
}

/// A ref-counted grip on one model version.
///
/// Holding one pins the version: its server is not shut down until every
/// handle drops, so a request that resolved a name can still enqueue
/// against its (possibly just-swapped-out) version. Do not hold one
/// across a blocking wait for that version's own answers — the reaper
/// cannot start the drain that produces them until the handle drops.
#[derive(Clone)]
pub struct ModelHandle {
    entry: Arc<ModelEntry>,
}

impl ModelHandle {
    /// The model's identity.
    pub fn spec(&self) -> &ModelSpec {
        &self.entry.spec
    }

    /// The version this handle pins (1 for the first load, +1 per reload).
    pub fn version(&self) -> u64 {
        self.entry.version
    }

    /// Where this version came from (warm / trained / fallback).
    pub fn source(&self) -> ModelSource {
        self.entry.source
    }

    /// The serving handle for submitting requests.
    pub fn server(&self) -> &ServerHandle {
        &self.entry.handle
    }
}

/// A point-in-time description of one registry entry.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// The model's identity.
    pub spec: ModelSpec,
    /// Version number (1-based; a reload bumps it).
    pub version: u64,
    /// Where this version came from (warm / trained / fallback).
    pub source: ModelSource,
    /// Lifecycle state at snapshot time.
    pub state: ModelState,
}

/// The fleet's name → model map. See the module docs for the lifecycle.
pub struct Registry {
    ready: RwLock<HashMap<String, Arc<ModelEntry>>>,
    /// Names with a load in progress (blocks concurrent loads, renders as
    /// `loading` in listings).
    loading: Mutex<HashMap<String, ModelSpec>>,
    /// Next version per name (survives unload, so a re-load after an
    /// unload still bumps the version).
    versions: Mutex<HashMap<String, u64>>,
    /// Arc-shared with reaper threads, which append retired entries.
    retired: Arc<Mutex<Vec<ModelInfo>>>,
    /// Weak refs to entries mid-drain, so listings show them between the
    /// swap and the reaper's retired-log append. Weak, because a strong
    /// ref here would keep the reaper's handle count from reaching one.
    draining: Arc<Mutex<Vec<Weak<ModelEntry>>>>,
    reapers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            ready: RwLock::new(HashMap::new()),
            loading: Mutex::new(HashMap::new()),
            versions: Mutex::new(HashMap::new()),
            retired: Arc::new(Mutex::new(Vec::new())),
            draining: Arc::new(Mutex::new(Vec::new())),
            reapers: Mutex::new(Vec::new()),
        }
    }

    /// Starts loading `spec.name`. The returned ticket must be
    /// [committed](LoadTicket::commit) with a running server (or dropped
    /// to abort). An existing ready version keeps serving meanwhile.
    ///
    /// # Errors
    ///
    /// [`FleetError::AlreadyLoading`] when a load of the same name is in
    /// progress.
    pub fn begin_load(&self, spec: ModelSpec) -> Result<LoadTicket<'_>, FleetError> {
        let mut loading = lock_recover(&self.loading);
        if loading.contains_key(&spec.name) {
            return Err(FleetError::AlreadyLoading(spec.name));
        }
        loading.insert(spec.name.clone(), spec.clone());
        Ok(LoadTicket { registry: self, spec: Some(spec) })
    }

    /// Resolves a name to its current ready version.
    ///
    /// # Errors
    ///
    /// [`FleetError::ModelLoading`] when the name's first load is still in
    /// progress, [`FleetError::NoSuchModel`] otherwise.
    pub fn get(&self, name: &str) -> Result<ModelHandle, FleetError> {
        let ready = self.ready.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = ready.get(name) {
            return Ok(ModelHandle { entry: Arc::clone(entry) });
        }
        drop(ready);
        if lock_recover(&self.loading).contains_key(name) {
            Err(FleetError::ModelLoading(name.to_string()))
        } else {
            Err(FleetError::NoSuchModel(name.to_string()))
        }
    }

    /// Removes a name and drains its current version in the background.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSuchModel`] when no ready version exists.
    pub fn unload(&self, name: &str) -> Result<ModelInfo, FleetError> {
        let old = self
            .ready
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)
            .ok_or_else(|| FleetError::NoSuchModel(name.to_string()))?;
        let info = ModelInfo {
            spec: old.spec.clone(),
            version: old.version,
            source: old.source,
            state: ModelState::Draining,
        };
        self.retire(old);
        Ok(info)
    }

    /// Moves `entry` to draining and spawns its reaper: wait for the last
    /// outside handle, shut the server down (answering everything still
    /// queued), mark retired.
    fn retire(&self, entry: Arc<ModelEntry>) {
        *lock_recover(&entry.state) = ModelState::Draining;
        lock_recover(&self.draining).push(Arc::downgrade(&entry));
        let log = Arc::clone(&self.retired);
        let draining = Arc::clone(&self.draining);
        let reaper = std::thread::Builder::new()
            .name(format!("fab-fleet-reaper-{}", entry.spec.name))
            .spawn(move || {
                // The registry dropped its Arc; once requests (ModelHandle
                // clones) drop theirs, ours is the last one standing (the
                // draining list only holds a Weak).
                while Arc::strong_count(&entry) > 1 {
                    std::thread::sleep(REAP_POLL);
                }
                if let Some(server) = lock_recover(&entry.server).take() {
                    server.shutdown();
                }
                *lock_recover(&entry.state) = ModelState::Retired;
                {
                    let mut log = lock_recover(&log);
                    log.push(ModelInfo {
                        spec: entry.spec.clone(),
                        version: entry.version,
                        source: entry.source,
                        state: ModelState::Retired,
                    });
                    let overflow = log.len().saturating_sub(RETIRED_HISTORY);
                    log.drain(..overflow);
                }
                // Logged as retired; stop listing it as draining. (`list`
                // dedups against the retired log, so the overlap between
                // the push above and this prune never double-counts.)
                lock_recover(&draining)
                    .retain(|w| w.upgrade().is_some_and(|e| !Arc::ptr_eq(&e, &entry)));
            })
            .expect("spawn fleet reaper");
        lock_recover(&self.reapers).push(reaper);
    }

    /// Lists every known entry — loading marks, ready/draining versions,
    /// and recently retired ones — sorted by name then version.
    pub fn list(&self) -> Vec<ModelInfo> {
        let mut out: Vec<ModelInfo> = Vec::new();
        for spec in lock_recover(&self.loading).values() {
            out.push(ModelInfo {
                spec: spec.clone(),
                version: 0,
                source: ModelSource::Trained,
                state: ModelState::Loading,
            });
        }
        {
            let ready = self.ready.read().unwrap_or_else(PoisonError::into_inner);
            for entry in ready.values() {
                out.push(ModelInfo {
                    spec: entry.spec.clone(),
                    version: entry.version,
                    source: entry.source,
                    state: *lock_recover(&entry.state),
                });
            }
        }
        out.extend(lock_recover(&self.retired).iter().cloned());
        for weak in lock_recover(&self.draining).iter() {
            let Some(entry) = weak.upgrade() else { continue };
            let info = ModelInfo {
                spec: entry.spec.clone(),
                version: entry.version,
                source: entry.source,
                state: *lock_recover(&entry.state),
            };
            if !out.iter().any(|m| m.spec.name == info.spec.name && m.version == info.version) {
                out.push(info);
            }
        }
        out.sort_by(|a, b| a.spec.name.cmp(&b.spec.name).then(a.version.cmp(&b.version)));
        out
    }

    /// Snapshots `(info, handle)` for every ready entry, for stats and
    /// metric scrapes.
    pub fn ready_models(&self) -> Vec<(ModelInfo, ModelHandle)> {
        let ready = self.ready.read().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<(ModelInfo, ModelHandle)> = ready
            .values()
            .map(|entry| {
                (
                    ModelInfo {
                        spec: entry.spec.clone(),
                        version: entry.version,
                        source: entry.source,
                        state: *lock_recover(&entry.state),
                    },
                    ModelHandle { entry: Arc::clone(entry) },
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.spec.name.cmp(&b.0.spec.name));
        out
    }

    /// Unloads everything and waits for every drain to finish. Idempotent;
    /// callers must have released their [`ModelHandle`]s or this blocks
    /// until they do.
    pub fn shutdown(&self) {
        let names: Vec<String> = {
            let ready = self.ready.read().unwrap_or_else(PoisonError::into_inner);
            ready.keys().cloned().collect()
        };
        for name in names {
            let _ = self.unload(&name);
        }
        let reapers: Vec<_> = lock_recover(&self.reapers).drain(..).collect();
        for r in reapers {
            let _ = r.join();
        }
    }
}

/// An in-progress load of one name. Commit it with the trained model's
/// running server, or drop it to abort (clearing the loading mark).
pub struct LoadTicket<'a> {
    registry: &'a Registry,
    spec: Option<ModelSpec>,
}

impl LoadTicket<'_> {
    /// The spec being loaded.
    pub fn spec(&self) -> &ModelSpec {
        self.spec.as_ref().expect("ticket not yet consumed")
    }

    /// Installs `server` as the new current version of the name: assigns
    /// the next version number, swaps it in atomically, and sends any
    /// previous version to drain in the background. The version is recorded
    /// as [`ModelSource::Trained`]; snapshot restores use
    /// [`LoadTicket::commit_with_source`].
    pub fn commit(self, server: Server) -> ModelInfo {
        self.commit_with_source(server, ModelSource::Trained)
    }

    /// [`LoadTicket::commit`] with an explicit provenance tag (warm /
    /// trained / fallback), surfaced in listings, stats and metrics.
    pub fn commit_with_source(mut self, server: Server, source: ModelSource) -> ModelInfo {
        let spec = self.spec.take().expect("ticket not yet consumed");
        let registry = self.registry;
        let version = {
            let mut versions = lock_recover(&registry.versions);
            let v = versions.entry(spec.name.clone()).or_insert(0);
            *v += 1;
            *v
        };
        let entry = Arc::new(ModelEntry {
            spec: spec.clone(),
            version,
            source,
            state: Mutex::new(ModelState::Ready),
            handle: server.handle(),
            server: Mutex::new(Some(server)),
        });
        let old = registry
            .ready
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(spec.name.clone(), entry);
        lock_recover(&registry.loading).remove(&spec.name);
        if let Some(old) = old {
            registry.retire(old);
        }
        ModelInfo { spec, version, source, state: ModelState::Ready }
    }
}

impl Drop for LoadTicket<'_> {
    fn drop(&mut self) {
        if let Some(spec) = self.spec.take() {
            lock_recover(&self.registry.loading).remove(&spec.name);
        }
    }
}
