//! Tenant-level quality of service: token-bucket admission quotas,
//! weighted-fair shares, and per-tenant serving counters.
//!
//! Quotas bound *admission rate* (how many requests per second a tenant
//! may inject, with a burst allowance), while weights bound *service
//! share* (how the scheduler divides each priority class among the
//! tenants queued in it). The two compose: a tenant inside its quota but
//! over its fair share queues behind its peers; a tenant over its quota
//! is rejected at the door with a `retry_after_ms` hint derived from its
//! own refill rate — not from any model's queue depth.

use fab_serve::{HistogramSummary, LatencyHistogram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Tenant name used when a request carries no `X-Tenant` label: anonymous
/// traffic shares one bucket and one scheduling lane.
pub const DEFAULT_TENANT: &str = "default";

/// Per-tenant admission quota and scheduling weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQuota {
    /// Sustained admission rate, in requests per second (the token-bucket
    /// refill rate). Non-positive = admit nothing once the burst is spent.
    pub rate_per_s: f64,
    /// Burst allowance, in requests (the token-bucket capacity).
    pub burst: f64,
    /// Weighted-fair share among the tenants queued in the same priority
    /// class. Zero = strictly best-effort: served only when no
    /// positive-weight tenant is queued (the no-starvation guarantee
    /// covers nonzero weights only).
    pub weight: f64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self { rate_per_s: 500.0, burst: 1000.0, weight: 1.0 }
    }
}

/// Lock-free serving counters for one tenant, shared between the fleet
/// (which updates them) and metric scrapes (which read them).
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests this tenant pushed into a model queue.
    pub submitted: AtomicU64,
    /// Requests answered with a prediction.
    pub completed: AtomicU64,
    /// Requests answered with an explicit serve error.
    pub failed: AtomicU64,
    /// Requests rejected at admission because the tenant's token bucket
    /// was empty.
    pub quota_rejected: AtomicU64,
    /// End-to-end latency of this tenant's completed requests.
    pub latency: LatencyHistogram,
}

/// The classic token bucket: refilled continuously at `rate_per_s`, capped
/// at `burst`, one token per admitted request.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    fn full(quota: &TenantQuota) -> Self {
        Self { tokens: quota.burst.max(1.0), refilled: Instant::now() }
    }

    /// Takes one token, or reports how many milliseconds until the bucket
    /// refills enough for one (clamped to `[10 ms, 5 s]`).
    fn try_take(&mut self, quota: &TenantQuota, now: Instant) -> Result<(), u64> {
        let dt = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + dt * quota.rate_per_s.max(0.0)).min(quota.burst.max(1.0));
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        if quota.rate_per_s <= 0.0 {
            return Err(5000);
        }
        let wait_ms = ((1.0 - self.tokens) / quota.rate_per_s * 1000.0).ceil();
        Err(wait_ms.clamp(10.0, 5000.0) as u64)
    }
}

struct TenantEntry {
    quota: TenantQuota,
    bucket: TokenBucket,
    counters: Arc<TenantCounters>,
}

/// The fleet-wide tenant directory: quotas, buckets, weights, counters.
///
/// Tenants named in the configuration get their configured quota; a
/// tenant first seen on a request is created on the fly with the default
/// quota, so an unknown `X-Tenant` is rate-limited rather than unlimited.
pub struct TenantTable {
    default_quota: TenantQuota,
    inner: Mutex<HashMap<String, TenantEntry>>,
}

impl TenantTable {
    /// Builds the table from configured `(name, quota)` pairs; every other
    /// tenant falls back to `default_quota` on first sight.
    pub fn new(default_quota: TenantQuota, tenants: Vec<(String, TenantQuota)>) -> Self {
        let mut map = HashMap::new();
        for (name, quota) in tenants {
            map.insert(
                name,
                TenantEntry {
                    bucket: TokenBucket::full(&quota),
                    counters: Arc::new(TenantCounters::default()),
                    quota,
                },
            );
        }
        Self { default_quota, inner: Mutex::new(map) }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, HashMap<String, TenantEntry>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Charges one request against `tenant`'s token bucket. On success
    /// returns the tenant's counters (for outcome bookkeeping); on an
    /// empty bucket returns the tenant's own refill-derived retry hint in
    /// milliseconds and counts the rejection.
    pub fn charge(&self, tenant: &str) -> Result<Arc<TenantCounters>, u64> {
        let mut map = self.locked();
        let default_quota = self.default_quota.clone();
        let entry = map.entry(tenant.to_string()).or_insert_with(|| TenantEntry {
            bucket: TokenBucket::full(&default_quota),
            counters: Arc::new(TenantCounters::default()),
            quota: default_quota,
        });
        match entry.bucket.try_take(&entry.quota, Instant::now()) {
            Ok(()) => Ok(Arc::clone(&entry.counters)),
            Err(retry_ms) => {
                entry.counters.quota_rejected.fetch_add(1, Ordering::Relaxed);
                Err(retry_ms)
            }
        }
    }

    /// The tenant's weighted-fair share (default quota's weight for
    /// tenants never seen or configured).
    pub fn weight(&self, tenant: &str) -> f64 {
        self.locked().get(tenant).map_or(self.default_quota.weight, |e| e.quota.weight)
    }

    /// Snapshots every known tenant, sorted by name.
    pub fn snapshot(&self) -> Vec<TenantStats> {
        let map = self.locked();
        let mut stats: Vec<TenantStats> = map
            .iter()
            .map(|(name, e)| TenantStats {
                tenant: name.clone(),
                rate_per_s: e.quota.rate_per_s,
                weight: e.quota.weight,
                submitted: e.counters.submitted.load(Ordering::Relaxed),
                completed: e.counters.completed.load(Ordering::Relaxed),
                failed: e.counters.failed.load(Ordering::Relaxed),
                quota_rejected: e.counters.quota_rejected.load(Ordering::Relaxed),
                latency: e.counters.latency.summary(),
            })
            .collect();
        stats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        stats
    }
}

/// A point-in-time snapshot of one tenant's QoS state.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Configured sustained admission rate.
    pub rate_per_s: f64,
    /// Configured weighted-fair share.
    pub weight: f64,
    /// Requests admitted into model queues.
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests answered with an explicit error.
    pub failed: u64,
    /// Requests rejected by the tenant's quota.
    pub quota_rejected: u64,
    /// End-to-end latency of completed requests.
    pub latency: HistogramSummary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn quota_rejects_once_the_burst_is_spent_and_refills() {
        let table = TenantTable::new(
            TenantQuota::default(),
            vec![("bg".to_string(), TenantQuota { rate_per_s: 100.0, burst: 3.0, weight: 1.0 })],
        );
        for _ in 0..3 {
            table.charge("bg").expect("burst admits");
        }
        let hint = table.charge("bg").expect_err("empty bucket rejects");
        assert!((10..=5000).contains(&hint), "hint {hint}ms outside its clamp");
        // 100 req/s refills one token in 10 ms.
        std::thread::sleep(Duration::from_millis(25));
        table.charge("bg").expect("bucket refilled");
        assert_eq!(table.snapshot()[0].quota_rejected, 1);
    }

    #[test]
    fn unknown_tenants_get_the_default_quota_not_unlimited() {
        let table =
            TenantTable::new(TenantQuota { rate_per_s: 0.0, burst: 2.0, weight: 1.0 }, Vec::new());
        assert!(table.charge("stranger").is_ok());
        assert!(table.charge("stranger").is_ok());
        assert_eq!(table.charge("stranger").err(), Some(5000), "zero refill pins the max hint");
        assert_eq!(table.weight("stranger"), 1.0);
    }
}
