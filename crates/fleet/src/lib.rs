//! # fab-fleet
//!
//! The model-fleet layer between `fab-serve` (one dynamic-batching server
//! per model) and `fabd` (the network daemon): one process serving many
//! named models — mixed tasks, architectures, and precisions — behind
//! shared admission and scheduling policy.
//!
//! Three pieces compose the subsystem:
//!
//! - [`Registry`] — named, versioned, ref-counted model entries with a
//!   loading → ready → draining → retired lifecycle and atomic swap:
//!   hot load/unload/reload never drops an in-flight request (the PR-6
//!   zero-drop drain invariant holds across a reload).
//! - [`TenantTable`] — per-tenant token-bucket admission quotas, fair
//!   -share weights, and serving counters; a tenant over its quota is
//!   rejected with a hint derived from its own refill rate.
//! - [`QosPolicy`] — a two-level weighted-fair (stride) scheduler over
//!   `(priority class, tenant)` lanes, plugged into fab-serve's
//!   [`BatchPolicy`](fab_serve::BatchPolicy) trait, so each model's
//!   worker pool keeps all the PR-6 robustness machinery while dequeue
//!   order follows QoS policy. Priority classes are weighted
//!   (16 : 4 : 1 by default), not strict — a background tenant with a
//!   nonzero weight is never starved.
//!
//! [`Fleet`] ties them together: `submit` resolves the model (pinning the
//! version across the enqueue, after which the server's own drain
//! guarantees the answer), charges the tenant's bucket, labels the
//! request with [`RequestQos`], and returns a [`FleetPending`] that
//! records per-tenant / per-class outcome metrics.
//!
//! Scheduling never changes results: logits stay bit-identical to the
//! same session answering the request alone, whatever batch, order, or
//! worker count the policy produces (fab-serve's padding invariance).

#![warn(missing_docs)]

pub mod overload;
pub mod qos;
pub mod registry;
pub mod scheduler;

pub use overload::{
    CircuitBreaker, CircuitDecision, CircuitState, DegradeController, GuardStats, ModelGuard,
    OverloadConfig,
};
pub use qos::{TenantCounters, TenantQuota, TenantStats, TenantTable, DEFAULT_TENANT};
pub use registry::{
    LoadTicket, ModelHandle, ModelInfo, ModelSource, ModelSpec, ModelState, Registry,
};
pub use scheduler::{ClassWeights, QosPolicy};

use fab_serve::{
    HistogramSummary, InferenceSession, LatencyHistogram, Prediction, Priority, RequestQos,
    ServeConfig, ServeError, Server, ServerStats,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why the fleet could not take or finish a request or admin action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// No model is registered under this name.
    NoSuchModel(String),
    /// The name's first load has not finished yet.
    ModelLoading(String),
    /// A load of this name is already in progress.
    AlreadyLoading(String),
    /// The tenant's token bucket is empty.
    QuotaExceeded {
        /// The rejected tenant.
        tenant: String,
        /// Milliseconds until the tenant's bucket refills one token.
        retry_after_ms: u64,
    },
    /// The model's circuit breaker is open: recent requests hard-failed
    /// and the fleet is fast-failing instead of queueing onto a broken
    /// server.
    CircuitOpen {
        /// The model whose circuit tripped.
        model: String,
        /// Milliseconds until the breaker will admit probe requests.
        retry_after_ms: u64,
    },
    /// The model's server rejected or failed the request.
    Serve(ServeError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoSuchModel(name) => write!(f, "no model named '{name}'"),
            FleetError::ModelLoading(name) => write!(f, "model '{name}' is still loading"),
            FleetError::AlreadyLoading(name) => {
                write!(f, "a load of model '{name}' is already in progress")
            }
            FleetError::QuotaExceeded { tenant, retry_after_ms } => {
                write!(f, "tenant '{tenant}' exceeded its quota; retry in {retry_after_ms}ms")
            }
            FleetError::CircuitOpen { model, retry_after_ms } => {
                write!(f, "model '{model}' circuit is open; retry in {retry_after_ms}ms")
            }
            FleetError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

/// Which batch-formation policy each model's server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The tenant-aware weighted-fair [`QosPolicy`] (the default).
    #[default]
    WeightedFair,
    /// fab-serve's plain length-bucket batcher (QoS labels are ignored).
    LengthBucket,
}

impl SchedulerKind {
    /// Canonical lowercase name (`weighted-fair` / `length-bucket`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::WeightedFair => "weighted-fair",
            SchedulerKind::LengthBucket => "length-bucket",
        }
    }

    /// Parses a canonical name back into a kind.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "weighted-fair" => Some(SchedulerKind::WeightedFair),
            "length-bucket" => Some(SchedulerKind::LengthBucket),
            _ => None,
        }
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// Per-model server knobs (pool size, queue capacity, batching delay).
    pub serve: ServeConfig,
    /// Scheduler installed in each model's server.
    pub scheduler: SchedulerKind,
    /// Relative dequeue shares of the priority classes.
    pub class_weights: ClassWeights,
    /// Quota applied to tenants not named in `tenants`.
    pub default_quota: TenantQuota,
    /// Explicitly configured tenants.
    pub tenants: Vec<(String, TenantQuota)>,
    /// Bound on one tenant's queued requests per model (0 = none).
    pub per_tenant_queue_cap: usize,
    /// Adaptive admission, precision degradation, and circuit breakers
    /// (all off by default; see [`OverloadConfig`]).
    pub overload: OverloadConfig,
}

/// The fleet facade: registry + tenants + per-class latency, one `submit`
/// entry point. See the crate docs.
pub struct Fleet {
    config: FleetConfig,
    registry: Registry,
    tenants: Arc<TenantTable>,
    /// End-to-end latency per priority class, fleet-wide.
    class_latency: [Arc<LatencyHistogram>; 3],
    /// Overload-control state per model name (created on first use; kept
    /// across reloads so a hot swap does not reset breaker history).
    guards: Mutex<HashMap<String, Arc<ModelGuard>>>,
    /// Set once any model has a forced degrade level, so the default
    /// all-off config never pays the guard-map lock on the submit path.
    forced_any: AtomicBool,
}

impl Fleet {
    /// An empty fleet; load models with [`Fleet::load`].
    pub fn new(config: FleetConfig) -> Self {
        let tenants =
            Arc::new(TenantTable::new(config.default_quota.clone(), config.tenants.clone()));
        Self {
            config,
            registry: Registry::new(),
            tenants,
            class_latency: std::array::from_fn(|_| Arc::new(LatencyHistogram::new())),
            guards: Mutex::new(HashMap::new()),
            forced_any: AtomicBool::new(false),
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The tenant directory (for metric scrapes).
    pub fn tenants(&self) -> &TenantTable {
        &self.tenants
    }

    /// Marks `spec.name` as loading and returns the ticket to commit the
    /// trained session with ([`Fleet::commit`]). A ready version of the
    /// name keeps serving until the commit swaps it out.
    ///
    /// # Errors
    ///
    /// [`FleetError::AlreadyLoading`].
    pub fn begin_load(&self, spec: ModelSpec) -> Result<LoadTicket<'_>, FleetError> {
        self.registry.begin_load(spec)
    }

    /// Builds a server around `session` (with this fleet's scheduler) and
    /// commits it as the new current version of the ticket's name, recorded
    /// as [`ModelSource::Trained`].
    pub fn commit(&self, ticket: LoadTicket<'_>, session: InferenceSession) -> ModelInfo {
        self.commit_with_source(ticket, session, ModelSource::Trained)
    }

    /// [`Fleet::commit`] with an explicit provenance tag — warm starts and
    /// snapshot fallbacks record where the version came from.
    pub fn commit_with_source(
        &self,
        ticket: LoadTicket<'_>,
        session: InferenceSession,
        source: ModelSource,
    ) -> ModelInfo {
        let max_seq = session.max_seq();
        let server = match self.config.scheduler {
            SchedulerKind::WeightedFair => {
                let policy = QosPolicy::new(
                    max_seq,
                    Duration::from_micros(self.config.serve.max_wait_us),
                    self.config.class_weights.clone(),
                    self.config.per_tenant_queue_cap,
                    Arc::clone(&self.tenants),
                );
                Server::start_with_policy(session, self.config.serve.clone(), Box::new(policy))
            }
            SchedulerKind::LengthBucket => Server::start(session, self.config.serve.clone()),
        };
        ticket.commit_with_source(server, source)
    }

    /// One-step [`Fleet::begin_load`] + [`Fleet::commit`] for callers that
    /// already hold the session.
    ///
    /// # Errors
    ///
    /// [`FleetError::AlreadyLoading`].
    pub fn load(
        &self,
        spec: ModelSpec,
        session: InferenceSession,
    ) -> Result<ModelInfo, FleetError> {
        let ticket = self.begin_load(spec)?;
        Ok(self.commit(ticket, session))
    }

    /// Removes a name; its current version drains in the background
    /// (answering everything it admitted).
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSuchModel`].
    pub fn unload(&self, name: &str) -> Result<ModelInfo, FleetError> {
        self.registry.unload(name)
    }

    /// Resolves a name to a version-pinning handle.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSuchModel`] / [`FleetError::ModelLoading`].
    pub fn get(&self, name: &str) -> Result<ModelHandle, FleetError> {
        self.registry.get(name)
    }

    /// Submits one request: resolves the model, consults its circuit
    /// breaker, charges the tenant's bucket (`None` = the shared
    /// [`DEFAULT_TENANT`]), routes through the overload controls (which
    /// may reroute to a cheaper precision of the same task), and enqueues
    /// with the tenant/priority labels the scheduler orders by.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSuchModel`] / [`FleetError::ModelLoading`],
    /// [`FleetError::CircuitOpen`], [`FleetError::QuotaExceeded`], or
    /// [`FleetError::Serve`] for validation and admission failures of the
    /// model's server (including the adaptive admission limit).
    pub fn submit(
        &self,
        model: &str,
        tenant: Option<&str>,
        priority: Priority,
        tokens: Vec<usize>,
        deadline: Option<Duration>,
    ) -> Result<FleetPending, FleetError> {
        let handle = self.registry.get(model)?;
        let overload = &self.config.overload;
        // The default all-off config takes the static path untouched: no
        // guard map, no extra locks, byte-for-byte the pre-overload flow.
        let use_guards = overload.adaptive
            || overload.degrade
            || overload.breaker_failures > 0
            || self.forced_any.load(Ordering::Relaxed);
        let guard = use_guards.then(|| self.guard(model));
        let now = Instant::now();
        if let Some(guard) = &guard {
            if let CircuitDecision::Reject { retry_after_ms } = guard.admit_circuit(now) {
                return Err(FleetError::CircuitOpen { model: model.to_string(), retry_after_ms });
            }
        }
        let tenant = tenant.unwrap_or(DEFAULT_TENANT);
        let counters = self.tenants.charge(tenant).map_err(|retry_after_ms| {
            FleetError::QuotaExceeded { tenant: tenant.to_string(), retry_after_ms }
        })?;
        let (serving, serving_guard) = match &guard {
            Some(g) => match self.route(handle, g, now) {
                Ok(r) => r,
                Err(e) => {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            },
            None => (handle, None),
        };
        let degraded = serving.spec().name != model;
        let served_by = serving.spec().name.clone();
        if degraded {
            if let Some(g) = &guard {
                g.count_degraded();
            }
        }
        let qos = RequestQos { tenant: Some(tenant.to_string()), priority };
        let pending = match serving.server().submit_with_qos(tokens, deadline, qos) {
            Ok(p) => p,
            Err(e) => {
                if let Some(sg) = &serving_guard {
                    sg.limiter().release_failure();
                }
                counters.failed.fetch_add(1, Ordering::Relaxed);
                return Err(FleetError::Serve(e));
            }
        };
        // The handle drops here, releasing the version: once the request
        // is *enqueued*, the server's own shutdown drain guarantees the
        // answer — pinning through the wait would deadlock a reaper
        // against a request only that reaper's shutdown can answer.
        drop(serving);
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(FleetPending {
            pending,
            counters,
            class_latency: Arc::clone(&self.class_latency[priority.index()]),
            submitted: Instant::now(),
            served_by,
            degraded,
            serving_guard,
            primary_guard: guard,
            slo_us: overload.aimd.slo_us,
        })
    }

    /// Picks the model that actually serves this request and, when
    /// adaptive admission is on, takes a limiter slot on it.
    ///
    /// The chain tried is `primary, ladder[0], ladder[1], ...` starting at
    /// the current degrade level — routing never moves *up* the ladder,
    /// so an escalated level is honored by every request until the
    /// controller itself recovers. Each acquire failure feeds one
    /// pressure event into the primary's degrade controller; exhausting
    /// the chain is an [`ServeError::Overloaded`] rejection whose hint is
    /// derived from the admission SLO.
    fn route(
        &self,
        handle: ModelHandle,
        guard: &Arc<ModelGuard>,
        now: Instant,
    ) -> Result<(ModelHandle, Option<Arc<ModelGuard>>), FleetError> {
        let overload = &self.config.overload;
        if !overload.adaptive && guard.degrade_level() == 0 {
            return Ok((handle, None));
        }
        let ladder = self.ladder_for(handle.spec());
        let mut level = guard.degrade_level().min(ladder.len());
        let mut primary = Some(handle);
        loop {
            let candidate = if level == 0 {
                Some((primary.take().expect("level 0 is visited at most once"), Arc::clone(guard)))
            } else {
                let name = &ladder[level - 1];
                // A rung can vanish between the ladder snapshot and here
                // (hot unload); skip it rather than fail the request.
                self.registry.get(name).ok().map(|h| (h, self.guard(name)))
            };
            if let Some((cand_handle, cand_guard)) = candidate {
                if !overload.adaptive {
                    // Forced degrade without adaptive admission: route
                    // straight to the pinned rung, no limiter slot.
                    return Ok((cand_handle, None));
                }
                if cand_guard.limiter().try_acquire() {
                    return Ok((cand_handle, Some(cand_guard)));
                }
                // This rung is out of capacity — the pressure signal the
                // primary's degrade controller keys off.
                guard.pressure(now);
            }
            if level >= ladder.len() {
                break;
            }
            level += 1;
        }
        let retry_after_ms = (overload.aimd.slo_us / 1_000).clamp(10, 5_000);
        Err(FleetError::Serve(ServeError::Overloaded { depth: 0, retry_after_ms }))
    }

    /// The overload-control guard for `name`, created on first use.
    fn guard(&self, name: &str) -> Arc<ModelGuard> {
        let mut guards = self.guards.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            guards
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(ModelGuard::new(self.config.overload.clone()))),
        )
    }

    /// The degradation ladder below `spec`: ready models of the same task
    /// at strictly cheaper precisions, most precise first. Models whose
    /// precision has no rank (see [`overload::precision_rank`]) never
    /// participate.
    fn ladder_for(&self, spec: &ModelSpec) -> Vec<String> {
        let Some(primary_rank) = overload::precision_rank(&spec.precision) else {
            return Vec::new();
        };
        let mut rungs: Vec<(usize, String)> = self
            .registry
            .ready_models()
            .into_iter()
            .filter_map(|(info, _)| {
                if info.spec.name == spec.name || info.spec.task != spec.task {
                    return None;
                }
                let rank = overload::precision_rank(&info.spec.precision)?;
                (rank > primary_rank).then_some((rank, info.spec.name))
            })
            .collect();
        rungs.sort();
        rungs.into_iter().map(|(_, name)| name).collect()
    }

    /// The degradation ladder below `model`, in routing order.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSuchModel`] / [`FleetError::ModelLoading`].
    pub fn ladder(&self, model: &str) -> Result<Vec<String>, FleetError> {
        let handle = self.registry.get(model)?;
        Ok(self.ladder_for(handle.spec()))
    }

    /// Pins `model`'s degrade level (clamped to its ladder), or releases
    /// the pin with `None`; returns the effective level.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSuchModel`] / [`FleetError::ModelLoading`].
    pub fn force_degrade(&self, model: &str, level: Option<usize>) -> Result<usize, FleetError> {
        let handle = self.registry.get(model)?;
        let ladder = self.ladder_for(handle.spec());
        drop(handle);
        if level.is_some() {
            self.forced_any.store(true, Ordering::Relaxed);
        }
        Ok(self.guard(model).force_level(level, ladder.len()))
    }

    /// Overload-control snapshots for every ready model, sorted by name.
    pub fn guard_stats(&self) -> Vec<(String, GuardStats)> {
        let now = Instant::now();
        self.registry
            .ready_models()
            .into_iter()
            .map(|(info, _)| {
                let stats = self.guard(&info.spec.name).stats(now);
                (info.spec.name, stats)
            })
            .collect()
    }

    /// Lists every known model entry (loading, ready, draining, recently
    /// retired), sorted by name.
    pub fn models(&self) -> Vec<ModelInfo> {
        self.registry.list()
    }

    /// Snapshots `(info, server stats)` for every ready model.
    pub fn model_stats(&self) -> Vec<(ModelInfo, ServerStats)> {
        self.registry
            .ready_models()
            .into_iter()
            .map(|(info, handle)| {
                let stats = handle.server().stats();
                (info, stats)
            })
            .collect()
    }

    /// Snapshots every known tenant.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.tenants.snapshot()
    }

    /// Fleet-wide end-to-end latency per priority class, as
    /// `(class name, summary)` in [`Priority::ALL`] order.
    pub fn class_latency(&self) -> [(&'static str, HistogramSummary); 3] {
        std::array::from_fn(|i| (Priority::ALL[i].name(), self.class_latency[i].summary()))
    }

    /// Fault injection: makes one worker of `name`'s current version exit.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSuchModel`] / [`FleetError::ModelLoading`].
    pub fn inject_worker_exit(&self, name: &str) -> Result<(), FleetError> {
        self.registry.get(name).map(|h| h.server().inject_worker_exit())
    }

    /// Unloads every model and waits for all drains: every admitted
    /// request is answered before this returns. Idempotent.
    pub fn shutdown(&self) {
        self.registry.shutdown();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A submitted fleet request: fab-serve's pending prediction plus the
/// tenant/class metric sinks. It holds no [`ModelHandle`] — an enqueued
/// request is answered by its server's drain even after the version is
/// swapped out, so the version needs pinning only during submission.
pub struct FleetPending {
    pending: fab_serve::PendingPrediction,
    counters: Arc<TenantCounters>,
    class_latency: Arc<LatencyHistogram>,
    submitted: Instant,
    /// Name of the model actually serving the request (the requested one
    /// unless degradation rerouted it).
    served_by: String,
    degraded: bool,
    /// Limiter slot to release on completion: the guard of the *serving*
    /// model, present only when adaptive admission took a slot.
    serving_guard: Option<Arc<ModelGuard>>,
    /// Feedback target for breaker/degrade signals: the guard of the
    /// *requested* model.
    primary_guard: Option<Arc<ModelGuard>>,
    slo_us: u64,
}

impl FleetPending {
    /// Name of the model actually serving this request.
    pub fn served_by(&self) -> &str {
        &self.served_by
    }

    /// Whether overload control rerouted this request to a cheaper
    /// precision than the one requested.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Blocks until the prediction (or its explicit error) arrives,
    /// recording the outcome in the tenant's and class's metrics and
    /// feeding it back into the overload controls: the serving model's
    /// limiter slot is released with the observed latency, and the
    /// requested model's breaker hears hard failures (forward panics,
    /// dead servers) while its degrade controller hears on-SLO
    /// completions as calm.
    ///
    /// # Errors
    ///
    /// The request's explicit [`ServeError`].
    pub fn wait(self) -> Result<Prediction, ServeError> {
        match self.pending.wait() {
            Ok(p) => {
                let us = self.submitted.elapsed().as_micros() as u64;
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                self.counters.latency.record(us);
                self.class_latency.record(us);
                if let Some(sg) = &self.serving_guard {
                    sg.limiter().release(us);
                }
                if let Some(pg) = &self.primary_guard {
                    let now = Instant::now();
                    pg.circuit_outcome(now, false);
                    // Calm = on-SLO completion while the primary's own
                    // limiter has headroom: recovery probes the primary's
                    // capacity, not the rung currently absorbing traffic.
                    let limiter = pg.limiter();
                    if us <= self.slo_us && limiter.inflight() < limiter.limit() {
                        pg.calm(now);
                    }
                }
                Ok(p)
            }
            Err(e) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                if let Some(sg) = &self.serving_guard {
                    sg.limiter().release_failure();
                }
                if let Some(pg) = &self.primary_guard {
                    let hard = matches!(e, ServeError::ModelPanicked | ServeError::ServerStopped);
                    pg.circuit_outcome(Instant::now(), hard);
                }
                Err(e)
            }
        }
    }
}
