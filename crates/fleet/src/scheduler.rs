//! The fleet's tenant-aware batch-formation policy: two-level weighted
//! (stride) fair queueing plugged into fab-serve's [`BatchPolicy`] trait.
//!
//! Requests are keyed by `(priority class, tenant)`. Dequeue picks the
//! class with the smallest virtual *pass*, then the tenant with the
//! smallest pass inside that class; each dequeue advances the chosen
//! class's pass by `1 / class_weight` and the chosen tenant's by
//! `1 / tenant_weight`. Classes are therefore *weighted*, not strict: an
//! interactive flood gets `interactive : background = 16 : 1` of the
//! dequeues (by default), never 100% — a background tenant with a nonzero
//! weight has a bounded wait under any load (the property fleet's tests
//! check). A lane rejoining the queue clamps its pass up to the current
//! virtual clock, so an idle tenant cannot hoard credit and burst past
//! active ones.
//!
//! Batch *shapes* come out mixed (no length bucketing); the server pads
//! to the longest survivor, and the session's padding invariance keeps
//! logits bit-identical to serving each request alone — scheduling order
//! never changes results, only latency.

use crate::qos::TenantTable;
use fab_serve::policy::{BatchDecision, BatchPolicy, QueuedRequest};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Relative dequeue shares of the three priority classes.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassWeights {
    /// Share of [`Priority::Interactive`](fab_serve::Priority::Interactive).
    pub interactive: f64,
    /// Share of [`Priority::Batch`](fab_serve::Priority::Batch).
    pub batch: f64,
    /// Share of [`Priority::Background`](fab_serve::Priority::Background).
    pub background: f64,
}

impl Default for ClassWeights {
    /// 16 : 4 : 1 — interactive dominates under contention but background
    /// still owns ~5% of dequeues.
    fn default() -> Self {
        Self { interactive: 16.0, batch: 4.0, background: 1.0 }
    }
}

impl ClassWeights {
    fn as_array(&self) -> [f64; 3] {
        [self.interactive, self.batch, self.background]
    }
}

/// Weight floor: a zero weight would stall the pass arithmetic, so it is
/// treated as "one dequeue advances the pass by 10^9" — effectively served
/// only when nothing weightier is queued.
const WEIGHT_FLOOR: f64 = 1e-9;

/// One tenant's FIFO lane inside a class.
struct TenantLane {
    queue: VecDeque<QueuedRequest>,
    weight: f64,
    pass: f64,
}

/// One priority class: its tenant lanes plus its own stride state.
#[derive(Default)]
struct ClassLane {
    lanes: HashMap<String, TenantLane>,
    depth: usize,
    /// This class's virtual pass in the top-level (across-class) stride.
    pass: f64,
    /// Pass of the last tenant dequeued from this class: the clamp floor
    /// for lanes that rejoin after idling.
    vclock: f64,
}

/// The two-level weighted-fair [`BatchPolicy`] described in the module
/// docs. One instance guards one model's queue (it lives inside that
/// server's queue mutex); the [`TenantTable`] supplying the weights is
/// shared fleet-wide.
pub struct QosPolicy {
    classes: [ClassLane; 3],
    class_weights: [f64; 3],
    /// Pass of the last dequeued class: the clamp floor for classes that
    /// rejoin after idling.
    vclock: f64,
    depth: usize,
    max_wait: Duration,
    max_seq: usize,
    /// Per-tenant queue bound within this model (0 = none): one tenant
    /// cannot fill the whole shared queue even inside its rate quota.
    per_tenant_cap: usize,
    tenants: Arc<TenantTable>,
}

impl QosPolicy {
    /// Creates the policy for one model queue. `max_seq` bounds accepted
    /// sequence lengths (normally the session's `max_seq`), `max_wait` is
    /// the batching delay bound, `per_tenant_cap` bounds one tenant's
    /// queued requests (0 disables), and `tenants` supplies per-tenant
    /// weights as lanes first appear.
    pub fn new(
        max_seq: usize,
        max_wait: Duration,
        class_weights: ClassWeights,
        per_tenant_cap: usize,
        tenants: Arc<TenantTable>,
    ) -> Self {
        assert!(max_seq >= 1, "max_seq must be at least 1");
        Self {
            classes: Default::default(),
            class_weights: class_weights.as_array(),
            vclock: 0.0,
            depth: 0,
            max_wait,
            max_seq,
            per_tenant_cap,
            tenants,
        }
    }

    /// The oldest enqueue instant across every lane head.
    fn oldest_head(&self) -> Option<Instant> {
        self.classes
            .iter()
            .flat_map(|c| c.lanes.values())
            .filter_map(|l| l.queue.front().map(|r| r.enqueued_at()))
            .min()
    }

    /// Dequeues the globally next request per the two-level stride.
    fn dequeue(&mut self) -> QueuedRequest {
        let ci = (0..3)
            .filter(|&c| self.classes[c].depth > 0)
            .min_by(|&a, &b| self.classes[a].pass.total_cmp(&self.classes[b].pass))
            .expect("dequeue called with depth > 0");
        let class = &mut self.classes[ci];
        let tenant = class
            .lanes
            .iter()
            .filter(|(_, l)| !l.queue.is_empty())
            .min_by(|(_, a), (_, b)| a.pass.total_cmp(&b.pass))
            .map(|(name, _)| name.clone())
            .expect("class depth > 0 implies a non-empty lane");
        let lane = class.lanes.get_mut(&tenant).expect("lane exists");
        let req = lane.queue.pop_front().expect("lane is non-empty");
        lane.pass += 1.0 / lane.weight.max(WEIGHT_FLOOR);
        class.vclock = lane.pass;
        class.depth -= 1;
        class.pass += 1.0 / self.class_weights[ci].max(WEIGHT_FLOOR);
        self.vclock = class.pass;
        self.depth -= 1;
        req
    }
}

impl BatchPolicy for QosPolicy {
    fn admit(&mut self, req: QueuedRequest) -> Result<(), QueuedRequest> {
        let qos = req.qos();
        let ci = qos.priority.index();
        let tenant = qos.tenant.as_deref().unwrap_or(crate::qos::DEFAULT_TENANT).to_string();
        let weight = self.tenants.weight(&tenant);
        let vclock = self.vclock;
        let class = &mut self.classes[ci];
        let lane = class.lanes.entry(tenant).or_insert_with(|| TenantLane {
            queue: VecDeque::new(),
            weight,
            pass: 0.0,
        });
        if self.per_tenant_cap != 0 && lane.queue.len() >= self.per_tenant_cap {
            return Err(req);
        }
        if lane.queue.is_empty() {
            // Rejoining lane: forfeit credit accumulated while idle.
            lane.pass = lane.pass.max(class.vclock);
            lane.weight = weight; // pick up quota reconfiguration
        }
        if class.depth == 0 {
            class.pass = class.pass.max(vclock);
        }
        lane.queue.push_back(req);
        class.depth += 1;
        self.depth += 1;
        Ok(())
    }

    fn next_batch(&mut self, max_batch: usize, now: Instant, rush: bool) -> BatchDecision {
        if self.depth == 0 {
            return BatchDecision::Idle;
        }
        let oldest = self.oldest_head().expect("depth > 0 implies a queued head");
        let ready = rush || self.depth >= max_batch || now.duration_since(oldest) >= self.max_wait;
        if !ready {
            return BatchDecision::WaitUntil(oldest + self.max_wait);
        }
        let take = self.depth.min(max_batch);
        let requests: Vec<QueuedRequest> = (0..take).map(|_| self.dequeue()).collect();
        BatchDecision::Dispatch { requests, pad_to: None }
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn max_seq_len(&self) -> usize {
        self.max_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::TenantQuota;
    use fab_serve::policy::{Priority, RequestQos};

    fn table(weights: &[(&str, f64)]) -> Arc<TenantTable> {
        Arc::new(TenantTable::new(
            TenantQuota::default(),
            weights
                .iter()
                .map(|&(n, w)| (n.to_string(), TenantQuota { weight: w, ..TenantQuota::default() }))
                .collect(),
        ))
    }

    fn req(tenant: &str, priority: Priority) -> QueuedRequest {
        QueuedRequest::detached(
            vec![1, 2, 3],
            None,
            RequestQos { tenant: Some(tenant.to_string()), priority },
        )
        .0
    }

    fn drain_tenants(p: &mut QosPolicy, n: usize) -> Vec<String> {
        let mut order = Vec::new();
        while order.len() < n {
            match p.next_batch(1, Instant::now(), true) {
                BatchDecision::Dispatch { requests, .. } => order
                    .extend(requests.iter().map(|r| r.qos().tenant.clone().expect("tenant set"))),
                _ => panic!("rush with queued work must dispatch"),
            }
        }
        order
    }

    #[test]
    fn equal_weights_interleave_tenants() {
        let mut p = QosPolicy::new(
            16,
            Duration::ZERO,
            ClassWeights::default(),
            0,
            table(&[("a", 1.0), ("b", 1.0)]),
        );
        for _ in 0..4 {
            p.admit(req("a", Priority::Interactive)).unwrap();
            p.admit(req("b", Priority::Interactive)).unwrap();
        }
        let order = drain_tenants(&mut p, 8);
        for pair in order.chunks(2) {
            assert_ne!(pair[0], pair[1], "equal weights must alternate: {order:?}");
        }
    }

    #[test]
    fn weights_divide_dequeues_proportionally() {
        let mut p = QosPolicy::new(
            16,
            Duration::ZERO,
            ClassWeights::default(),
            0,
            table(&[("heavy", 3.0), ("light", 1.0)]),
        );
        for _ in 0..40 {
            p.admit(req("heavy", Priority::Batch)).unwrap();
            p.admit(req("light", Priority::Batch)).unwrap();
        }
        let first16: Vec<String> = drain_tenants(&mut p, 16);
        let heavy = first16.iter().filter(|t| *t == "heavy").count();
        assert!((11..=13).contains(&heavy), "3:1 weights should give ~12/16: {first16:?}");
    }

    #[test]
    fn classes_share_by_weight_not_strictly() {
        let mut p = QosPolicy::new(
            16,
            Duration::ZERO,
            ClassWeights { interactive: 4.0, batch: 1.0, background: 1.0 },
            0,
            table(&[]),
        );
        for _ in 0..50 {
            p.admit(req("fg", Priority::Interactive)).unwrap();
        }
        for _ in 0..10 {
            p.admit(req("bg", Priority::Background)).unwrap();
        }
        let first25 = drain_tenants(&mut p, 25);
        let bg = first25.iter().filter(|t| *t == "bg").count();
        assert!(bg >= 3, "background must keep its ~1/5 share under interactive load: {bg}");
        assert!(bg <= 8, "background must not outrun its weight: {bg}");
    }

    #[test]
    fn idle_lane_cannot_hoard_credit() {
        let mut p = QosPolicy::new(16, Duration::ZERO, ClassWeights::default(), 0, table(&[]));
        // "busy" works alone for a long stretch, racking up pass.
        for _ in 0..32 {
            p.admit(req("busy", Priority::Interactive)).unwrap();
        }
        drain_tenants(&mut p, 32);
        // "sleeper" arrives fresh; its pass clamps up to the clock, so it
        // interleaves with busy instead of monopolising.
        for _ in 0..8 {
            p.admit(req("sleeper", Priority::Interactive)).unwrap();
            p.admit(req("busy", Priority::Interactive)).unwrap();
        }
        let order = drain_tenants(&mut p, 8);
        let sleeper = order.iter().filter(|t| *t == "sleeper").count();
        assert!((3..=5).contains(&sleeper), "rejoining lane must not burst: {order:?}");
    }

    #[test]
    fn per_tenant_cap_bounds_one_tenant() {
        let mut p = QosPolicy::new(16, Duration::ZERO, ClassWeights::default(), 2, table(&[]));
        p.admit(req("t", Priority::Interactive)).unwrap();
        p.admit(req("t", Priority::Interactive)).unwrap();
        assert!(p.admit(req("t", Priority::Interactive)).is_err(), "cap must reject");
        assert!(p.admit(req("other", Priority::Interactive)).is_ok(), "cap is per tenant");
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn coalesces_until_max_wait_then_dispatches() {
        let mut p =
            QosPolicy::new(16, Duration::from_secs(5), ClassWeights::default(), 0, table(&[]));
        p.admit(req("t", Priority::Interactive)).unwrap();
        assert!(matches!(p.next_batch(8, Instant::now(), false), BatchDecision::WaitUntil(_)));
        // A full batch dispatches without waiting.
        for _ in 0..7 {
            p.admit(req("t", Priority::Interactive)).unwrap();
        }
        match p.next_batch(8, Instant::now(), false) {
            BatchDecision::Dispatch { requests, pad_to } => {
                assert_eq!(requests.len(), 8);
                assert_eq!(pad_to, None);
            }
            _ => panic!("a full batch must dispatch immediately"),
        }
    }
}
