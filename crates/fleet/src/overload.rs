//! Adaptive overload control: per-model AIMD admission, a hysteretic
//! precision-degradation controller, and circuit breakers.
//!
//! Three state machines, one [`ModelGuard`] per model name tying them
//! together for [`Fleet::submit`](crate::Fleet::submit):
//!
//! - [`fab_serve::AimdLimiter`] — bounds each model's in-flight
//!   concurrency adaptively (grow on on-SLO completions, cut on
//!   breaches). An acquire failure is the *pressure* signal everything
//!   else keys off.
//! - [`DegradeController`] — a level counter over the model's precision
//!   ladder (`f32-exact → fastmath → int8`, same task, from the
//!   registry). Pressure escalates one level at a time, sustained calm
//!   recovers one level at a time, and both directions are dwell-limited
//!   so the ladder cannot flap. Every transition method takes an explicit
//!   `now`, so property tests drive simulated time through the exact
//!   production code.
//! - [`CircuitBreaker`] — counts *consecutive* hard failures (forward
//!   panics, dead servers) against a threshold; tripping opens the
//!   circuit (fast-fail with a retry hint), a timeout moves it to
//!   half-open where a bounded number of probe requests decide between
//!   closing and re-opening.
//!
//! Degradation never invents a numeric path: a degraded request is
//! served by the *registered* cheaper-precision server, so its logits are
//! bit-identical to that profile answering directly.

use fab_serve::{AimdConfig, AimdLimiter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Overload-control knobs, embedded in
/// [`FleetConfig`](crate::FleetConfig) and applied per model name.
///
/// Everything defaults *off* (`adaptive: false`, `degrade: false`,
/// `breaker_failures: 0`): a fleet configured without an `overload`
/// section behaves exactly like the pre-PR-9 one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Enables the per-model AIMD concurrency limiter.
    pub adaptive: bool,
    /// The limiter's control-law knobs (limits, SLO, AIMD steps).
    pub aimd: AimdConfig,
    /// Enables precision degradation under sustained pressure.
    pub degrade: bool,
    /// Minimum milliseconds between two degrade-level changes (either
    /// direction) — the anti-flap dwell.
    pub degrade_dwell_ms: u64,
    /// Milliseconds of sustained calm before recovering one level.
    pub recover_after_ms: u64,
    /// Consecutive hard failures that open the circuit (0 = breaker off).
    pub breaker_failures: u32,
    /// Milliseconds an open circuit fast-fails before probing.
    pub breaker_open_ms: u64,
    /// Probe requests admitted while half-open.
    pub breaker_probes: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            adaptive: false,
            aimd: AimdConfig::default(),
            degrade: false,
            degrade_dwell_ms: 200,
            recover_after_ms: 1_000,
            breaker_failures: 0,
            breaker_open_ms: 1_000,
            breaker_probes: 2,
        }
    }
}

/// The hysteretic precision-degradation state machine. Level 0 is the
/// configured precision; each higher level is one step down the model's
/// ladder. See the module docs for the control law.
#[derive(Debug, Clone)]
pub struct DegradeController {
    level: usize,
    dwell: Duration,
    recover_after: Duration,
    last_change: Option<Instant>,
    calm_since: Option<Instant>,
    forced: Option<usize>,
}

impl DegradeController {
    /// A controller at level 0 with the given dwell and recovery windows.
    pub fn new(dwell: Duration, recover_after: Duration) -> Self {
        Self { level: 0, dwell, recover_after, last_change: None, calm_since: None, forced: None }
    }

    /// The effective level: the forced override when set, the adaptive
    /// level otherwise.
    pub fn level(&self) -> usize {
        self.forced.unwrap_or(self.level)
    }

    /// The adaptive level, ignoring any forced override.
    pub fn adaptive_level(&self) -> usize {
        self.level
    }

    /// The forced override, if any.
    pub fn forced(&self) -> Option<usize> {
        self.forced
    }

    /// Pins the effective level (admin/chaos use); `None` returns control
    /// to the adaptive law.
    pub fn force(&mut self, level: Option<usize>) {
        self.forced = level;
    }

    /// Feeds one pressure event (an admission-limit rejection) at `now`.
    /// Escalates one level — never more — once per dwell window; any
    /// pressure cancels accumulated calm. Returns `true` on escalation.
    pub fn on_pressure(&mut self, now: Instant) -> bool {
        self.calm_since = None;
        if let Some(last) = self.last_change {
            if now.saturating_duration_since(last) < self.dwell {
                return false;
            }
        }
        self.level += 1;
        self.last_change = Some(now);
        true
    }

    /// Feeds one calm event (an on-SLO completion with admission
    /// headroom) at `now`. Recovers one level once calm has been
    /// sustained for `recover_after` *and* the dwell has elapsed since
    /// the last change. Returns `true` on recovery.
    pub fn on_calm(&mut self, now: Instant) -> bool {
        let since = *self.calm_since.get_or_insert(now);
        if self.level == 0 {
            return false;
        }
        if now.saturating_duration_since(since) < self.recover_after {
            return false;
        }
        if let Some(last) = self.last_change {
            if now.saturating_duration_since(last) < self.dwell {
                return false;
            }
        }
        self.level -= 1;
        self.last_change = Some(now);
        self.calm_since = Some(now);
        true
    }

    /// Clamps the adaptive and forced levels to `max` (the ladder may
    /// shrink when a model is unloaded).
    pub fn clamp_to(&mut self, max: usize) {
        self.level = self.level.min(max);
        self.forced = self.forced.map(|f| f.min(max));
    }
}

/// Externally visible circuit state, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: requests flow.
    Closed,
    /// Probing: a bounded number of requests test recovery.
    HalfOpen,
    /// Tripped: requests fast-fail with a retry hint.
    Open,
}

impl CircuitState {
    /// Canonical snake_case name (`closed` / `half_open` / `open`).
    pub fn name(self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::HalfOpen => "half_open",
            CircuitState::Open => "open",
        }
    }

    /// Metric gauge value: 0 closed, 1 half-open, 2 open.
    pub fn gauge(self) -> u64 {
        match self {
            CircuitState::Closed => 0,
            CircuitState::HalfOpen => 1,
            CircuitState::Open => 2,
        }
    }
}

/// What the breaker says about admitting one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitDecision {
    /// Circuit closed: admit normally.
    Admit,
    /// Circuit half-open: admit as one of the bounded probes.
    Probe,
    /// Circuit open (or probes exhausted): fast-fail, retry after the
    /// hinted delay.
    Reject {
        /// Milliseconds until the circuit is worth re-trying.
        retry_after_ms: u64,
    },
}

/// The per-model circuit breaker. All methods take an explicit `now` so
/// tests drive simulated time; a `threshold` of 0 disables the breaker
/// (every decision is [`CircuitDecision::Admit`]).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    open_for: Duration,
    probes: u32,
    consecutive: u32,
    /// `Some(until)` while open; half-open once `now` passes it.
    open_until: Option<Instant>,
    /// Probes still admittable in the current half-open episode.
    probes_left: u32,
    half_open: bool,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures,
    /// staying open `open_for`, then admitting `probes` probe requests.
    pub fn new(threshold: u32, open_for: Duration, probes: u32) -> Self {
        Self {
            threshold,
            open_for,
            probes: probes.max(1),
            consecutive: 0,
            open_until: None,
            probes_left: 0,
            half_open: false,
        }
    }

    /// Whether the breaker is active (`threshold > 0`).
    pub fn enabled(&self) -> bool {
        self.threshold > 0
    }

    /// The externally visible state at `now`.
    pub fn state(&self, now: Instant) -> CircuitState {
        match self.open_until {
            None if self.half_open => CircuitState::HalfOpen,
            None => CircuitState::Closed,
            Some(until) if now < until => CircuitState::Open,
            Some(_) => CircuitState::HalfOpen,
        }
    }

    /// Consecutive hard failures observed while closed.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }

    /// Decides one request at `now`. An open circuit whose timeout has
    /// elapsed transitions to half-open here and starts handing out its
    /// probe budget.
    pub fn admit(&mut self, now: Instant) -> CircuitDecision {
        if !self.enabled() {
            return CircuitDecision::Admit;
        }
        if let Some(until) = self.open_until {
            if now < until {
                let remaining = until.saturating_duration_since(now).as_millis() as u64;
                return CircuitDecision::Reject { retry_after_ms: remaining.max(1) };
            }
            // Timeout elapsed: move to half-open with a fresh probe budget.
            self.open_until = None;
            self.half_open = true;
            self.probes_left = self.probes;
        }
        if self.half_open {
            if self.probes_left > 0 {
                self.probes_left -= 1;
                return CircuitDecision::Probe;
            }
            // Probes are in flight and undecided: fast-fail until one
            // resolves (success closes, failure re-opens).
            return CircuitDecision::Reject { retry_after_ms: self.open_for.as_millis() as u64 };
        }
        CircuitDecision::Admit
    }

    /// Feeds a healthy completion at `now`: resets the failure streak;
    /// a successful half-open probe closes the circuit.
    pub fn on_success(&mut self, _now: Instant) {
        self.consecutive = 0;
        if self.open_until.is_none() && self.half_open {
            self.half_open = false;
            self.probes_left = 0;
        }
    }

    /// Feeds a hard failure (forward panic, dead server) at `now`: while
    /// closed, counts toward the threshold; while half-open, re-opens
    /// immediately.
    pub fn on_failure(&mut self, now: Instant) {
        if !self.enabled() {
            return;
        }
        if self.open_until.is_some() {
            return; // stale completion from before the trip
        }
        if self.half_open {
            self.trip(now);
            return;
        }
        self.consecutive += 1;
        if self.consecutive >= self.threshold {
            self.trip(now);
        }
    }

    fn trip(&mut self, now: Instant) {
        self.open_until = Some(now + self.open_for);
        self.half_open = false;
        self.probes_left = 0;
        self.consecutive = 0;
    }
}

/// One model name's overload-control state: limiter + degrade controller
/// + breaker, shared between submission and completion.
#[derive(Debug)]
pub struct ModelGuard {
    config: OverloadConfig,
    limiter: AimdLimiter,
    degrade: Mutex<DegradeController>,
    breaker: Mutex<CircuitBreaker>,
    degraded_total: AtomicU64,
    breaker_rejected: AtomicU64,
}

impl ModelGuard {
    /// A fresh guard from the fleet's overload config.
    pub fn new(config: OverloadConfig) -> Self {
        let limiter = AimdLimiter::new(config.aimd.clone());
        let degrade = DegradeController::new(
            Duration::from_millis(config.degrade_dwell_ms),
            Duration::from_millis(config.recover_after_ms),
        );
        let breaker = CircuitBreaker::new(
            config.breaker_failures,
            Duration::from_millis(config.breaker_open_ms),
            config.breaker_probes,
        );
        Self {
            config,
            limiter,
            degrade: Mutex::new(degrade),
            breaker: Mutex::new(breaker),
            degraded_total: AtomicU64::new(0),
            breaker_rejected: AtomicU64::new(0),
        }
    }

    /// The guard's config (the fleet's, shared by every model).
    pub fn config(&self) -> &OverloadConfig {
        &self.config
    }

    /// The admission limiter.
    pub fn limiter(&self) -> &AimdLimiter {
        &self.limiter
    }

    /// Asks the breaker about one request. A disabled breaker
    /// (`breaker_failures: 0`) admits without touching any lock.
    pub fn admit_circuit(&self, now: Instant) -> CircuitDecision {
        if self.config.breaker_failures == 0 {
            return CircuitDecision::Admit;
        }
        let decision = lock_recover(&self.breaker).admit(now);
        if matches!(decision, CircuitDecision::Reject { .. }) {
            self.breaker_rejected.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    /// Feeds a completion outcome into the breaker (no-op when the
    /// breaker is disabled).
    pub fn circuit_outcome(&self, now: Instant, hard_failure: bool) {
        if self.config.breaker_failures == 0 {
            return;
        }
        let mut breaker = lock_recover(&self.breaker);
        if hard_failure {
            breaker.on_failure(now);
        } else {
            breaker.on_success(now);
        }
    }

    /// The effective degrade level.
    pub fn degrade_level(&self) -> usize {
        lock_recover(&self.degrade).level()
    }

    /// The forced degrade override, if any.
    pub fn forced_level(&self) -> Option<usize> {
        lock_recover(&self.degrade).forced()
    }

    /// Pins (or releases) the degrade level, clamped to `max`.
    pub fn force_level(&self, level: Option<usize>, max: usize) -> usize {
        let mut degrade = lock_recover(&self.degrade);
        degrade.force(level.map(|l| l.min(max)));
        degrade.level()
    }

    /// Feeds one pressure event; returns `true` when the level escalated.
    pub fn pressure(&self, now: Instant) -> bool {
        if !self.config.degrade {
            return false;
        }
        lock_recover(&self.degrade).on_pressure(now)
    }

    /// Feeds one calm event; returns `true` when the level recovered.
    pub fn calm(&self, now: Instant) -> bool {
        if !self.config.degrade {
            return false;
        }
        lock_recover(&self.degrade).on_calm(now)
    }

    /// Clamps the degrade level to the current ladder length.
    pub fn clamp_level(&self, max: usize) {
        lock_recover(&self.degrade).clamp_to(max);
    }

    /// Counts one request actually rerouted to a cheaper precision.
    pub fn count_degraded(&self) {
        self.degraded_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time stats for `/v1/circuits`, `/v1/stats`, and metrics.
    pub fn stats(&self, now: Instant) -> GuardStats {
        let degrade = lock_recover(&self.degrade);
        let breaker = lock_recover(&self.breaker);
        GuardStats {
            adaptive: self.config.adaptive,
            limit: self.limiter.limit(),
            inflight: self.limiter.inflight(),
            limiter_rejected: self.limiter.rejected(),
            degrade_level: degrade.level(),
            forced_level: degrade.forced(),
            degraded_total: self.degraded_total.load(Ordering::Relaxed),
            circuit: breaker.state(now),
            breaker_enabled: breaker.enabled(),
            consecutive_failures: breaker.consecutive_failures(),
            breaker_rejected: self.breaker_rejected.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of one model's [`ModelGuard`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardStats {
    /// Whether the AIMD limiter gates admission for this model.
    pub adaptive: bool,
    /// Current adaptive concurrency limit.
    pub limit: u64,
    /// Requests currently holding a limiter slot.
    pub inflight: u64,
    /// Admissions rejected by the limiter since start.
    pub limiter_rejected: u64,
    /// Effective degrade level (0 = configured precision).
    pub degrade_level: usize,
    /// Forced degrade override, if pinned.
    pub forced_level: Option<usize>,
    /// Requests actually served by a cheaper precision.
    pub degraded_total: u64,
    /// Circuit state at snapshot time.
    pub circuit: CircuitState,
    /// Whether the breaker is active for this model.
    pub breaker_enabled: bool,
    /// Consecutive hard failures while closed.
    pub consecutive_failures: u32,
    /// Requests fast-failed by an open circuit since start.
    pub breaker_rejected: u64,
}

/// Ranks a [`ModelSpec`](crate::ModelSpec) precision string on the
/// degradation ladder: lower is more precise. Unknown precisions return
/// `None` and never participate in degradation.
pub fn precision_rank(precision: &str) -> Option<usize> {
    match precision {
        "f32" | "exact" => Some(0),
        "fastmath" | "fast" => Some(1),
        "int8" => Some(2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn degrade_escalates_once_per_dwell_and_cancels_calm() {
        let base = Instant::now();
        let mut c = DegradeController::new(Duration::from_millis(100), Duration::from_millis(300));
        assert!(c.on_pressure(at(base, 0)));
        assert_eq!(c.level(), 1);
        // A burst of pressure inside the dwell does not stack levels.
        for ms in [1, 10, 50, 99] {
            assert!(!c.on_pressure(at(base, ms)));
        }
        assert_eq!(c.level(), 1);
        assert!(c.on_pressure(at(base, 100)));
        assert_eq!(c.level(), 2);
    }

    #[test]
    fn degrade_recovers_only_after_sustained_calm() {
        let base = Instant::now();
        let mut c = DegradeController::new(Duration::from_millis(100), Duration::from_millis(300));
        c.on_pressure(at(base, 0));
        // Calm accumulates from the first calm event...
        assert!(!c.on_calm(at(base, 150)));
        assert!(!c.on_calm(at(base, 300)));
        // ...and recovers once 300 ms of calm have been sustained.
        assert!(c.on_calm(at(base, 450)));
        assert_eq!(c.level(), 0);
        // At level 0, calm is a no-op.
        assert!(!c.on_calm(at(base, 1000)));
    }

    #[test]
    fn pressure_resets_the_calm_clock() {
        let base = Instant::now();
        let mut c = DegradeController::new(Duration::from_millis(10), Duration::from_millis(300));
        c.on_pressure(at(base, 0));
        assert!(!c.on_calm(at(base, 100)));
        // Pressure at 200 ms (dwell elapsed → escalates) wipes the calm
        // accumulated since 100 ms.
        assert!(c.on_pressure(at(base, 200)));
        assert!(!c.on_calm(at(base, 450)), "calm restarted at 450");
        assert!(!c.on_calm(at(base, 700)), "only 250 ms of calm");
        assert!(c.on_calm(at(base, 750)), "300 ms of calm since 450");
        assert_eq!(c.level(), 1);
    }

    #[test]
    fn forced_level_overrides_and_releases() {
        let mut c = DegradeController::new(Duration::from_millis(10), Duration::from_millis(10));
        assert_eq!(c.level(), 0);
        c.force(Some(2));
        assert_eq!(c.level(), 2);
        assert_eq!(c.adaptive_level(), 0);
        c.force(None);
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_only() {
        let base = Instant::now();
        let mut b = CircuitBreaker::new(3, Duration::from_millis(500), 1);
        b.on_failure(at(base, 0));
        b.on_failure(at(base, 1));
        b.on_success(at(base, 2)); // streak broken
        b.on_failure(at(base, 3));
        b.on_failure(at(base, 4));
        assert_eq!(b.state(at(base, 5)), CircuitState::Closed);
        b.on_failure(at(base, 5)); // third consecutive
        assert_eq!(b.state(at(base, 6)), CircuitState::Open);
        match b.admit(at(base, 6)) {
            CircuitDecision::Reject { retry_after_ms } => {
                assert!((1..=500).contains(&retry_after_ms), "{retry_after_ms}");
            }
            other => panic!("open circuit admitted: {other:?}"),
        }
    }

    #[test]
    fn breaker_half_open_probe_success_closes() {
        let base = Instant::now();
        let mut b = CircuitBreaker::new(1, Duration::from_millis(100), 2);
        b.on_failure(at(base, 0));
        assert_eq!(b.state(at(base, 50)), CircuitState::Open);
        // Timeout elapsed: the first two admits are probes, the third is
        // rejected while they are undecided.
        assert_eq!(b.admit(at(base, 100)), CircuitDecision::Probe);
        assert_eq!(b.state(at(base, 100)), CircuitState::HalfOpen);
        assert_eq!(b.admit(at(base, 101)), CircuitDecision::Probe);
        assert!(matches!(b.admit(at(base, 102)), CircuitDecision::Reject { .. }));
        b.on_success(at(base, 110));
        assert_eq!(b.state(at(base, 110)), CircuitState::Closed);
        assert_eq!(b.admit(at(base, 111)), CircuitDecision::Admit);
    }

    #[test]
    fn breaker_half_open_probe_failure_reopens() {
        let base = Instant::now();
        let mut b = CircuitBreaker::new(1, Duration::from_millis(100), 1);
        b.on_failure(at(base, 0));
        assert_eq!(b.admit(at(base, 100)), CircuitDecision::Probe);
        b.on_failure(at(base, 105));
        assert_eq!(b.state(at(base, 106)), CircuitState::Open);
        // A second full cycle still works: open → half-open → closed.
        assert_eq!(b.admit(at(base, 205)), CircuitDecision::Probe);
        b.on_success(at(base, 210));
        assert_eq!(b.state(at(base, 211)), CircuitState::Closed);
    }

    #[test]
    fn disabled_breaker_admits_everything() {
        let base = Instant::now();
        let mut b = CircuitBreaker::new(0, Duration::from_millis(100), 1);
        for i in 0..50 {
            b.on_failure(at(base, i));
            assert_eq!(b.admit(at(base, i)), CircuitDecision::Admit);
        }
        assert_eq!(b.state(at(base, 50)), CircuitState::Closed);
    }

    #[test]
    fn guard_stats_reflect_the_machines() {
        let config = OverloadConfig {
            adaptive: true,
            degrade: true,
            breaker_failures: 2,
            ..OverloadConfig::default()
        };
        let g = ModelGuard::new(config);
        let now = Instant::now();
        assert_eq!(g.admit_circuit(now), CircuitDecision::Admit);
        g.circuit_outcome(now, true);
        g.circuit_outcome(now, true);
        let s = g.stats(now);
        assert_eq!(s.circuit, CircuitState::Open);
        assert!(s.breaker_enabled);
        let level = g.force_level(Some(9), 2);
        assert_eq!(level, 2, "forced level clamps to the ladder");
        assert_eq!(g.stats(now).forced_level, Some(2));
    }

    #[test]
    fn precision_ranks_order_the_ladder() {
        assert_eq!(precision_rank("f32"), Some(0));
        assert_eq!(precision_rank("exact"), Some(0));
        assert_eq!(precision_rank("fastmath"), Some(1));
        assert_eq!(precision_rank("int8"), Some(2));
        assert_eq!(precision_rank("bf16"), None);
    }
}
