//! PR-7 fleet property tests.
//!
//! - **No starvation**: under sustained interactive saturation, a
//!   background tenant with any nonzero weight is dequeued within a
//!   bounded number of dispatches.
//! - **Hot reload keeps the zero-drop drain invariant**: every request
//!   admitted against the old version of a name is answered — by the old
//!   version — while the new version takes over new traffic, across
//!   worker counts and batch mixes.
//! - **Scheduling never changes results**: whatever tenants, priorities,
//!   and dequeue order the weighted-fair policy produces, served logits
//!   stay bit-identical to the model's single-request answer.

use fab_fleet::{
    ClassWeights, Fleet, FleetConfig, ModelSpec, ModelState, QosPolicy, TenantQuota, TenantTable,
};
use fab_nn::{Model, ModelConfig, ModelKind};
use fab_serve::policy::{BatchDecision, BatchPolicy, Priority, QueuedRequest, RequestQos};
use fab_serve::{InferenceSession, ServeConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model_for(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng)
}

fn mixed_batch(rng: &mut StdRng, n: usize, vocab: usize, max_len: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..=max_len);
            (0..len).map(|_| rng.gen_range(0..vocab)).collect()
        })
        .collect()
}

fn spec(name: &str) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        task: "text".to_string(),
        arch: "fabnet".to_string(),
        precision: "f32".to_string(),
    }
}

fn fleet_config(num_workers: usize) -> FleetConfig {
    FleetConfig {
        serve: ServeConfig {
            max_batch: 3,
            max_wait_us: 200,
            num_workers,
            ..ServeConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn qos_req(tenant: &str, priority: Priority) -> QueuedRequest {
    QueuedRequest::detached(
        vec![1, 2, 3],
        None,
        RequestQos { tenant: Some(tenant.to_string()), priority },
    )
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // A background tenant with a nonzero weight, queued behind a
    // firehose of interactive traffic from several tenants, is dequeued
    // within a bounded number of dispatches. The bound follows from the
    // stride arithmetic: background owns `1/(16+4+1)` of dequeues at the
    // default class weights, so its head emerges within ~21 dispatches —
    // we assert a loose 64. Starvation (the pre-weighted-fair failure
    // mode) would blow past any bound as long as interactive stays
    // saturated.
    #[test]
    fn background_tenant_wait_is_bounded_under_saturation(
        bg_weight in 0.1f64..8.0,
        interactive_tenants in 1usize..5,
        seed in 0u64..1000,
    ) {
        let table = Arc::new(TenantTable::new(
            TenantQuota::default(),
            vec![("bg".to_string(), TenantQuota { weight: bg_weight, ..TenantQuota::default() })],
        ));
        let mut policy = QosPolicy::new(
            16,
            Duration::ZERO,
            ClassWeights::default(),
            0,
            table,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let names: Vec<String> =
            (0..interactive_tenants).map(|i| format!("fg{i}")).collect();
        // Pre-fill interactive lanes, then the one background request.
        for _ in 0..8 {
            for name in &names {
                policy.admit(qos_req(name, Priority::Interactive)).unwrap();
            }
        }
        policy.admit(qos_req("bg", Priority::Background)).unwrap();
        let mut dispatches = 0usize;
        loop {
            // Keep interactive saturated: every dispatched slot is refilled.
            match policy.next_batch(1, Instant::now(), true) {
                BatchDecision::Dispatch { requests, .. } => {
                    prop_assert_eq!(requests.len(), 1);
                    dispatches += 1;
                    if requests[0].qos().tenant.as_deref() == Some("bg") {
                        break;
                    }
                    let refill = &names[rng.gen_range(0..names.len())];
                    policy.admit(qos_req(refill, Priority::Interactive)).unwrap();
                }
                _ => prop_assert!(false, "saturated policy must dispatch"),
            }
            prop_assert!(
                dispatches <= 64,
                "background tenant (weight {bg_weight}) starved for {dispatches} dispatches"
            );
        }
    }

    // Hot reload under load: requests admitted against v1 are all
    // answered by v1 (logits match the v1 model bit-for-bit), requests
    // after the swap are answered by v2, nothing is dropped, and the
    // name's version bumps — across worker counts and batch mixes.
    #[test]
    fn hot_reload_preserves_the_zero_drop_drain_invariant(
        num_workers in 1usize..4,
        before in 1usize..24,
        after in 1usize..24,
        seed in 0u64..500,
    ) {
        let v1 = model_for(seed);
        let v2 = model_for(seed ^ 0xfeed);
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e1);
        let fleet = Fleet::new(fleet_config(num_workers));
        fleet.load(spec("m"), InferenceSession::exact(&v1)).expect("v1 loads");

        let batch_v1 = mixed_batch(&mut rng, before, config.vocab_size, config.max_seq);
        let pending_v1: Vec<_> = batch_v1
            .iter()
            .map(|t| {
                fleet
                    .submit("m", Some("alice"), Priority::Interactive, t.clone(), None)
                    .expect("admitted against v1")
            })
            .collect();

        // Swap in v2 while v1's requests are (mostly) still queued.
        let info = fleet.load(spec("m"), InferenceSession::exact(&v2)).expect("reload");
        prop_assert_eq!(info.version, 2);

        let batch_v2 = mixed_batch(&mut rng, after, config.vocab_size, config.max_seq);
        let pending_v2: Vec<_> = batch_v2
            .iter()
            .map(|t| {
                fleet
                    .submit("m", Some("bob"), Priority::Batch, t.clone(), None)
                    .expect("admitted against v2")
            })
            .collect();

        // Every admitted request is answered — by the version it was
        // admitted against.
        for (tokens, p) in batch_v1.iter().zip(pending_v1) {
            let served = p.wait().expect("v1 request answered across the reload");
            prop_assert_eq!(&served.logits, &v1.predict(tokens));
        }
        for (tokens, p) in batch_v2.iter().zip(pending_v2) {
            let served = p.wait().expect("v2 request answered");
            prop_assert_eq!(&served.logits, &v2.predict(tokens));
        }

        // With every handle dropped, v1 drains to `retired`.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let retired = fleet
                .models()
                .iter()
                .any(|m| m.version == 1 && m.state == ModelState::Retired);
            if retired {
                break;
            }
            prop_assert!(Instant::now() < deadline, "v1 never retired: {:?}", fleet.models());
            std::thread::sleep(Duration::from_millis(2));
        }
        fleet.shutdown();
    }

    // Weighted-fair scheduling across tenants and priority classes never
    // changes logits: every request's answer is bit-identical to the
    // model's direct single-request prediction.
    #[test]
    fn scheduling_order_never_changes_logits(
        n in 1usize..24,
        num_workers in 1usize..4,
        seed in 0u64..500,
    ) {
        let model = model_for(seed);
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let fleet = Fleet::new(fleet_config(num_workers));
        fleet.load(spec("m"), InferenceSession::exact(&model)).expect("loads");
        let tenants = ["alice", "bob", "carol"];
        let batch = mixed_batch(&mut rng, n, config.vocab_size, config.max_seq);
        let pending: Vec<_> = batch
            .iter()
            .map(|t| {
                let tenant = tenants[rng.gen_range(0..tenants.len())];
                let priority = Priority::ALL[rng.gen_range(0..3usize)];
                fleet
                    .submit("m", Some(tenant), priority, t.clone(), None)
                    .expect("admitted")
            })
            .collect();
        for (tokens, p) in batch.iter().zip(pending) {
            let served = p.wait().expect("answered");
            prop_assert_eq!(&served.logits, &model.predict(tokens));
        }
        fleet.shutdown();
    }
}

/// Unload answers what it admitted, then the name 404s; a later re-load
/// keeps counting versions up.
#[test]
fn unload_drains_and_versions_survive_reload_cycles() {
    let model = model_for(7);
    let fleet = Fleet::new(fleet_config(2));
    fleet.load(spec("m"), InferenceSession::exact(&model)).expect("v1");
    let p = fleet.submit("m", None, Priority::Interactive, vec![1, 2, 3], None).expect("admitted");
    let info = fleet.unload("m").expect("unload");
    assert_eq!(info.state, ModelState::Draining);
    p.wait().expect("request admitted before unload is answered");
    assert!(
        matches!(
            fleet.submit("m", None, Priority::Interactive, vec![1], None),
            Err(fab_fleet::FleetError::NoSuchModel(_))
        ),
        "unloaded name must 404"
    );
    let info = fleet.load(spec("m"), InferenceSession::exact(&model)).expect("v2");
    assert_eq!(info.version, 2, "versions survive an unload");
    fleet.shutdown();
}

/// Per-tenant counters and class latency record completed work.
#[test]
fn tenant_and_class_metrics_record_outcomes() {
    let model = model_for(9);
    let fleet = Fleet::new(fleet_config(2));
    fleet.load(spec("m"), InferenceSession::exact(&model)).expect("loads");
    for _ in 0..4 {
        fleet
            .submit("m", Some("alice"), Priority::Batch, vec![1, 2], None)
            .expect("admitted")
            .wait()
            .expect("answered");
    }
    let stats = fleet.tenant_stats();
    let alice = stats.iter().find(|t| t.tenant == "alice").expect("alice tracked");
    assert_eq!(alice.submitted, 4);
    assert_eq!(alice.completed, 4);
    assert_eq!(alice.latency.count, 4);
    let classes = fleet.class_latency();
    assert_eq!(classes[Priority::Batch.index()].1.count, 4);
    assert_eq!(classes[Priority::Interactive.index()].1.count, 0);
    fleet.shutdown();
}
