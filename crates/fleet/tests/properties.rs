//! PR-7 fleet property tests.
//!
//! - **No starvation**: under sustained interactive saturation, a
//!   background tenant with any nonzero weight is dequeued within a
//!   bounded number of dispatches.
//! - **Hot reload keeps the zero-drop drain invariant**: every request
//!   admitted against the old version of a name is answered — by the old
//!   version — while the new version takes over new traffic, across
//!   worker counts and batch mixes.
//! - **Scheduling never changes results**: whatever tenants, priorities,
//!   and dequeue order the weighted-fair policy produces, served logits
//!   stay bit-identical to the model's single-request answer.

use fab_fleet::{
    ClassWeights, Fleet, FleetConfig, ModelSpec, ModelState, QosPolicy, TenantQuota, TenantTable,
};
use fab_nn::{Model, ModelConfig, ModelKind};
use fab_serve::policy::{BatchDecision, BatchPolicy, Priority, QueuedRequest, RequestQos};
use fab_serve::{InferenceSession, ServeConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model_for(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(&ModelConfig::tiny_for_tests(), ModelKind::FabNet, &mut rng)
}

fn mixed_batch(rng: &mut StdRng, n: usize, vocab: usize, max_len: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..=max_len);
            (0..len).map(|_| rng.gen_range(0..vocab)).collect()
        })
        .collect()
}

fn spec(name: &str) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        task: "text".to_string(),
        arch: "fabnet".to_string(),
        precision: "f32".to_string(),
    }
}

fn fleet_config(num_workers: usize) -> FleetConfig {
    FleetConfig {
        serve: ServeConfig {
            max_batch: 3,
            max_wait_us: 200,
            num_workers,
            ..ServeConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn qos_req(tenant: &str, priority: Priority) -> QueuedRequest {
    QueuedRequest::detached(
        vec![1, 2, 3],
        None,
        RequestQos { tenant: Some(tenant.to_string()), priority },
    )
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // A background tenant with a nonzero weight, queued behind a
    // firehose of interactive traffic from several tenants, is dequeued
    // within a bounded number of dispatches. The bound follows from the
    // stride arithmetic: background owns `1/(16+4+1)` of dequeues at the
    // default class weights, so its head emerges within ~21 dispatches —
    // we assert a loose 64. Starvation (the pre-weighted-fair failure
    // mode) would blow past any bound as long as interactive stays
    // saturated.
    #[test]
    fn background_tenant_wait_is_bounded_under_saturation(
        bg_weight in 0.1f64..8.0,
        interactive_tenants in 1usize..5,
        seed in 0u64..1000,
    ) {
        let table = Arc::new(TenantTable::new(
            TenantQuota::default(),
            vec![("bg".to_string(), TenantQuota { weight: bg_weight, ..TenantQuota::default() })],
        ));
        let mut policy = QosPolicy::new(
            16,
            Duration::ZERO,
            ClassWeights::default(),
            0,
            table,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let names: Vec<String> =
            (0..interactive_tenants).map(|i| format!("fg{i}")).collect();
        // Pre-fill interactive lanes, then the one background request.
        for _ in 0..8 {
            for name in &names {
                policy.admit(qos_req(name, Priority::Interactive)).unwrap();
            }
        }
        policy.admit(qos_req("bg", Priority::Background)).unwrap();
        let mut dispatches = 0usize;
        loop {
            // Keep interactive saturated: every dispatched slot is refilled.
            match policy.next_batch(1, Instant::now(), true) {
                BatchDecision::Dispatch { requests, .. } => {
                    prop_assert_eq!(requests.len(), 1);
                    dispatches += 1;
                    if requests[0].qos().tenant.as_deref() == Some("bg") {
                        break;
                    }
                    let refill = &names[rng.gen_range(0..names.len())];
                    policy.admit(qos_req(refill, Priority::Interactive)).unwrap();
                }
                _ => prop_assert!(false, "saturated policy must dispatch"),
            }
            prop_assert!(
                dispatches <= 64,
                "background tenant (weight {bg_weight}) starved for {dispatches} dispatches"
            );
        }
    }

    // Hot reload under load: requests admitted against v1 are all
    // answered by v1 (logits match the v1 model bit-for-bit), requests
    // after the swap are answered by v2, nothing is dropped, and the
    // name's version bumps — across worker counts and batch mixes.
    #[test]
    fn hot_reload_preserves_the_zero_drop_drain_invariant(
        num_workers in 1usize..4,
        before in 1usize..24,
        after in 1usize..24,
        seed in 0u64..500,
    ) {
        let v1 = model_for(seed);
        let v2 = model_for(seed ^ 0xfeed);
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e1);
        let fleet = Fleet::new(fleet_config(num_workers));
        fleet.load(spec("m"), InferenceSession::exact(&v1)).expect("v1 loads");

        let batch_v1 = mixed_batch(&mut rng, before, config.vocab_size, config.max_seq);
        let pending_v1: Vec<_> = batch_v1
            .iter()
            .map(|t| {
                fleet
                    .submit("m", Some("alice"), Priority::Interactive, t.clone(), None)
                    .expect("admitted against v1")
            })
            .collect();

        // Swap in v2 while v1's requests are (mostly) still queued.
        let info = fleet.load(spec("m"), InferenceSession::exact(&v2)).expect("reload");
        prop_assert_eq!(info.version, 2);

        let batch_v2 = mixed_batch(&mut rng, after, config.vocab_size, config.max_seq);
        let pending_v2: Vec<_> = batch_v2
            .iter()
            .map(|t| {
                fleet
                    .submit("m", Some("bob"), Priority::Batch, t.clone(), None)
                    .expect("admitted against v2")
            })
            .collect();

        // Every admitted request is answered — by the version it was
        // admitted against.
        for (tokens, p) in batch_v1.iter().zip(pending_v1) {
            let served = p.wait().expect("v1 request answered across the reload");
            prop_assert_eq!(&served.logits, &v1.predict(tokens));
        }
        for (tokens, p) in batch_v2.iter().zip(pending_v2) {
            let served = p.wait().expect("v2 request answered");
            prop_assert_eq!(&served.logits, &v2.predict(tokens));
        }

        // With every handle dropped, v1 drains to `retired`.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let retired = fleet
                .models()
                .iter()
                .any(|m| m.version == 1 && m.state == ModelState::Retired);
            if retired {
                break;
            }
            prop_assert!(Instant::now() < deadline, "v1 never retired: {:?}", fleet.models());
            std::thread::sleep(Duration::from_millis(2));
        }
        fleet.shutdown();
    }

    // Weighted-fair scheduling across tenants and priority classes never
    // changes logits: every request's answer is bit-identical to the
    // model's direct single-request prediction.
    #[test]
    fn scheduling_order_never_changes_logits(
        n in 1usize..24,
        num_workers in 1usize..4,
        seed in 0u64..500,
    ) {
        let model = model_for(seed);
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let fleet = Fleet::new(fleet_config(num_workers));
        fleet.load(spec("m"), InferenceSession::exact(&model)).expect("loads");
        let tenants = ["alice", "bob", "carol"];
        let batch = mixed_batch(&mut rng, n, config.vocab_size, config.max_seq);
        let pending: Vec<_> = batch
            .iter()
            .map(|t| {
                let tenant = tenants[rng.gen_range(0..tenants.len())];
                let priority = Priority::ALL[rng.gen_range(0..3usize)];
                fleet
                    .submit("m", Some(tenant), priority, t.clone(), None)
                    .expect("admitted")
            })
            .collect();
        for (tokens, p) in batch.iter().zip(pending) {
            let served = p.wait().expect("answered");
            prop_assert_eq!(&served.logits, &model.predict(tokens));
        }
        fleet.shutdown();
    }
}

/// Unload answers what it admitted, then the name 404s; a later re-load
/// keeps counting versions up.
#[test]
fn unload_drains_and_versions_survive_reload_cycles() {
    let model = model_for(7);
    let fleet = Fleet::new(fleet_config(2));
    fleet.load(spec("m"), InferenceSession::exact(&model)).expect("v1");
    let p = fleet.submit("m", None, Priority::Interactive, vec![1, 2, 3], None).expect("admitted");
    let info = fleet.unload("m").expect("unload");
    assert_eq!(info.state, ModelState::Draining);
    p.wait().expect("request admitted before unload is answered");
    assert!(
        matches!(
            fleet.submit("m", None, Priority::Interactive, vec![1], None),
            Err(fab_fleet::FleetError::NoSuchModel(_))
        ),
        "unloaded name must 404"
    );
    let info = fleet.load(spec("m"), InferenceSession::exact(&model)).expect("v2");
    assert_eq!(info.version, 2, "versions survive an unload");
    fleet.shutdown();
}

/// Per-tenant counters and class latency record completed work.
#[test]
fn tenant_and_class_metrics_record_outcomes() {
    let model = model_for(9);
    let fleet = Fleet::new(fleet_config(2));
    fleet.load(spec("m"), InferenceSession::exact(&model)).expect("loads");
    for _ in 0..4 {
        fleet
            .submit("m", Some("alice"), Priority::Batch, vec![1, 2], None)
            .expect("admitted")
            .wait()
            .expect("answered");
    }
    let stats = fleet.tenant_stats();
    let alice = stats.iter().find(|t| t.tenant == "alice").expect("alice tracked");
    assert_eq!(alice.submitted, 4);
    assert_eq!(alice.completed, 4);
    assert_eq!(alice.latency.count, 4);
    let classes = fleet.class_latency();
    assert_eq!(classes[Priority::Batch.index()].1.count, 4);
    assert_eq!(classes[Priority::Interactive.index()].1.count, 0);
    fleet.shutdown();
}

// ---------------------------------------------------------------------------
// PR-9 overload-control properties.
// ---------------------------------------------------------------------------

use fab_fleet::{CircuitBreaker, CircuitDecision, CircuitState, DegradeController};
use fab_quant::{quantize_frozen, CalibrationConfig};

fn spec_p(name: &str, precision: &str) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        task: "text".to_string(),
        arch: "fabnet".to_string(),
        precision: precision.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The degradation controller is hysteretic and monotone under any
    // event sequence: a pressure event never lowers the level and a calm
    // event never raises it, the level moves at most one step per event,
    // two level changes are never closer than the dwell, and a recovery
    // only ever happens after `recover_after` of uninterrupted calm.
    // Afterwards, sustained calm always brings the level back to 0.
    #[test]
    fn degradation_is_hysteretic_and_monotone(
        dwell_ms in 1u64..200,
        recover_ms in 1u64..500,
        seed in 0u64..10_000,
    ) {
        let base = Instant::now();
        let mut c = DegradeController::new(
            Duration::from_millis(dwell_ms),
            Duration::from_millis(recover_ms),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now_ms = 0u64;
        let mut last_change_ms: Option<u64> = None;
        let mut last_pressure_ms: Option<u64> = None;
        let mut prev_level = c.level();
        for _ in 0..300 {
            now_ms += rng.gen_range(0..100u64);
            let now = base + Duration::from_millis(now_ms);
            let pressure = rng.gen_bool(0.5);
            let changed = if pressure {
                last_pressure_ms = Some(now_ms);
                c.on_pressure(now)
            } else {
                c.on_calm(now)
            };
            let level = c.level();
            if pressure {
                prop_assert!(level >= prev_level, "pressure lowered the level");
                prop_assert!(level - prev_level <= 1, "pressure skipped a level");
            } else {
                prop_assert!(level <= prev_level, "calm raised the level");
                prop_assert!(prev_level - level <= 1, "calm skipped a level");
            }
            prop_assert_eq!(changed, level != prev_level);
            if changed {
                if let Some(last) = last_change_ms {
                    prop_assert!(
                        now_ms - last >= dwell_ms,
                        "changes at {last}ms and {now_ms}ms violate dwell {dwell_ms}ms"
                    );
                }
                if !pressure {
                    if let Some(lp) = last_pressure_ms {
                        prop_assert!(
                            now_ms - lp >= recover_ms,
                            "recovered {}ms after pressure (< {recover_ms}ms)",
                            now_ms - lp
                        );
                    }
                }
                last_change_ms = Some(now_ms);
            }
            prev_level = level;
        }
        // Pressure cleared: calm alone must walk the level back to 0,
        // one rung per recovery window.
        let mut steps = 0;
        let max_steps = c.level() + 2;
        while c.level() > 0 {
            now_ms += recover_ms.max(dwell_ms) + 1;
            c.on_calm(base + Duration::from_millis(now_ms));
            steps += 1;
            prop_assert!(steps < max_steps, "sustained calm never recovered to level 0");
        }
    }

    // The breaker's decisions always agree with its externally visible
    // state: Admit only while closed, Probe only while half-open, Reject
    // never while closed and always with a hint in (0, open_ms]; and a
    // closed breaker's failure streak never silently reaches the
    // threshold without the circuit opening.
    #[test]
    fn breaker_decisions_agree_with_its_state(
        threshold in 1u32..6,
        open_ms in 1u64..300,
        probes in 1u32..4,
        seed in 0u64..10_000,
    ) {
        let base = Instant::now();
        let mut b = CircuitBreaker::new(threshold, Duration::from_millis(open_ms), probes);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now_ms = 0u64;
        for _ in 0..400 {
            now_ms += rng.gen_range(0..=open_ms);
            let now = base + Duration::from_millis(now_ms);
            match rng.gen_range(0..3u32) {
                0 => {
                    let before = b.state(now);
                    match b.admit(now) {
                        CircuitDecision::Admit => {
                            prop_assert_eq!(before, CircuitState::Closed);
                        }
                        CircuitDecision::Probe => {
                            prop_assert_eq!(before, CircuitState::HalfOpen);
                        }
                        CircuitDecision::Reject { retry_after_ms } => {
                            prop_assert!(before != CircuitState::Closed, "reject while closed");
                            prop_assert!(
                                retry_after_ms >= 1 && retry_after_ms <= open_ms.max(1),
                                "reject hint {retry_after_ms}ms outside (0, {open_ms}]"
                            );
                        }
                    }
                }
                1 => b.on_failure(now),
                _ => b.on_success(now),
            }
            if b.state(base + Duration::from_millis(now_ms)) == CircuitState::Closed {
                prop_assert!(
                    b.consecutive_failures() < threshold,
                    "streak reached the threshold without opening"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Forced degradation reroutes to the expected rung of the precision
    // ladder and never invents numerics: the degraded answer is
    // bit-identical to the rung's own directly-served logits, and
    // releasing the pin restores the requested precision exactly.
    #[test]
    fn forced_degradation_reroutes_and_logits_bit_match_the_rung(
        n in 1usize..6,
        num_workers in 1usize..3,
        seed in 0u64..200,
    ) {
        let config = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ab);
        let model = model_for(seed);
        let frozen = model.freeze().with_fast_math(true);
        let calib: Vec<Vec<usize>> = (0..8)
            .map(|i| (0..8).map(|j| (i * 5 + j * 3 + 1) % config.vocab_size).collect())
            .collect();
        let quant = quantize_frozen(&frozen, &calib, &CalibrationConfig::default());
        let fleet = Fleet::new(fleet_config(num_workers));
        fleet.load(spec_p("m-f32", "f32"), InferenceSession::exact(&model)).expect("f32");
        fleet.load(spec_p("m-fast", "fastmath"), InferenceSession::new(&model)).expect("fast");
        fleet.load(spec_p("m-int8", "int8"), InferenceSession::quantized(quant)).expect("int8");
        prop_assert_eq!(
            fleet.ladder("m-f32").unwrap(),
            vec!["m-fast".to_string(), "m-int8".to_string()]
        );

        let batch = mixed_batch(&mut rng, n, config.vocab_size, config.max_seq);
        for (level, rung) in [(1usize, "m-fast"), (2, "m-int8")] {
            prop_assert_eq!(fleet.force_degrade("m-f32", Some(level)).unwrap(), level);
            for tokens in &batch {
                let pending = fleet
                    .submit("m-f32", None, Priority::Interactive, tokens.clone(), None)
                    .expect("admitted while degraded");
                prop_assert!(pending.degraded());
                prop_assert_eq!(pending.served_by(), rung);
                let degraded = pending.wait().expect("degraded request answered");
                let direct = fleet
                    .submit(rung, None, Priority::Interactive, tokens.clone(), None)
                    .expect("direct submit")
                    .wait()
                    .expect("direct request answered");
                prop_assert!(
                    degraded.logits == direct.logits,
                    "level {level} logits diverge from {rung}'s own"
                );
            }
        }
        prop_assert_eq!(fleet.force_degrade("m-f32", None).unwrap(), 0);
        let p = fleet
            .submit("m-f32", None, Priority::Interactive, vec![1, 2, 3], None)
            .expect("admitted after the pin is released");
        prop_assert!(!p.degraded());
        prop_assert_eq!(p.served_by(), "m-f32");
        prop_assert_eq!(&p.wait().expect("answered").logits, &model.predict(&[1, 2, 3]));
        fleet.shutdown();
    }
}
