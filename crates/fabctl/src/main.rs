//! `fabctl` — the CLI client for a running `fabd` daemon.
//!
//! Subcommands map one-to-one onto daemon endpoints; every request goes
//! through [`fabd::FabClient`], which retries connection failures and
//! `429 Too Many Requests` with jittered exponential backoff, honouring
//! the server's `Retry-After` hint.

use fabd::{ClientError, FabClient, Json, RetryPolicy};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: fabctl [--addr <host:port>] [--retries <n>] [--timeout-ms <ms>] \
[--wait-ready <ms>] <command>

options:
  --wait-ready <ms>     poll /readyz (jittered backoff) until the daemon is
                        ready or <ms> elapse before running the command

commands:
  predict <t1,t2,...>   predict one token sequence
      [--model <name>]      profile to route to (server default otherwise)
      [--deadline-ms <ms>]  per-request deadline (504 when missed)
      [--tenant <name>]     tenant the request is charged to (quota + fair share)
      [--priority <class>]  interactive | batch | background (default interactive)
  stats                 JSON stats: models, tenants, priority classes
  models                list the model registry (names, versions, states)
  models load <file>    train the profile JSON in <file> and hot-swap it in
  models reload <name>  re-train a served profile and hot-swap it (version bump)
  models unload <name>  remove a model; its current version drains
  metrics               Prometheus metrics dump
  ready                 exit 0 when ready, 1 while loading/draining/unreachable
  circuits              per-model breaker state, admission limit, degrade ladder
  degrade <model> <n>   pin <model> to degrade rung <n> (0 = primary)
  degrade <model> off   return <model> to adaptive control
  chaos                 show chaos sites (rates and fire counts)
  chaos set <site> <every> [param_ms]
                        arm a chaos site (fault-injection daemons only;
                        every=0 disables, every=1 fires on each draw)
  chaos reset           disarm every chaos site
  snapshot              persist every loaded model to the snapshot store now
  snapshot list         list snapshot versions on disk
  drain                 start a graceful drain (POST /admin/shutdown)";

struct Options {
    addr: String,
    retries: u32,
    timeout_ms: u64,
    wait_ready_ms: Option<u64>,
    command: Vec<String>,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:4270".to_string(),
        retries: 5,
        timeout_ms: 10_000,
        wait_ready_ms: None,
        command: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = args.next().ok_or("--addr needs host:port")?,
            "--retries" => {
                opts.retries =
                    args.next().and_then(|v| v.parse().ok()).ok_or("--retries needs a number")?;
            }
            "--timeout-ms" => {
                opts.timeout_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--timeout-ms needs a number")?;
            }
            "--wait-ready" => {
                opts.wait_ready_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--wait-ready needs a number")?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            _ => {
                opts.command.push(arg);
                opts.command.extend(args);
                break;
            }
        }
    }
    if opts.command.is_empty() {
        return Err(format!("missing command\n{USAGE}"));
    }
    Ok(opts)
}

fn parse_tokens(spec: &str) -> Result<Vec<usize>, String> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse::<usize>().map_err(|_| format!("bad token '{s}'")))
        .collect()
}

fn run(opts: Options) -> Result<(), String> {
    let policy = RetryPolicy { max_retries: opts.retries, ..RetryPolicy::default() };
    // Seed the backoff jitter from the PID so concurrent fabctl invocations
    // retrying against the same overloaded daemon spread out.
    let mut client = FabClient::with_policy(&opts.addr, policy, u64::from(std::process::id()))
        .with_timeout(Duration::from_millis(opts.timeout_ms.max(1)));
    if let Some(ms) = opts.wait_ready_ms {
        client
            .wait_ready(Duration::from_millis(ms))
            .map_err(|e| format!("waiting for ready: {}", render_error(e)))?;
    }
    let command = opts.command[0].as_str();
    let rest = &opts.command[1..];
    match command {
        "predict" => {
            let mut tokens: Option<Vec<usize>> = None;
            let mut model: Option<String> = None;
            let mut deadline_ms: Option<u64> = None;
            let mut tenant: Option<String> = None;
            let mut priority: Option<String> = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--model" => {
                        model = Some(it.next().ok_or("--model needs a name")?.clone());
                    }
                    "--deadline-ms" => {
                        deadline_ms = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .ok_or("--deadline-ms needs a number")?,
                        );
                    }
                    "--tenant" => {
                        tenant = Some(it.next().ok_or("--tenant needs a name")?.clone());
                    }
                    "--priority" => {
                        priority = Some(it.next().ok_or("--priority needs a class")?.clone());
                    }
                    spec => tokens = Some(parse_tokens(spec)?),
                }
            }
            let tokens = tokens.ok_or(format!("predict needs a token list\n{USAGE}"))?;
            let result = client
                .predict_qos(
                    model.as_deref(),
                    &tokens,
                    deadline_ms,
                    tenant.as_deref(),
                    priority.as_deref(),
                )
                .map_err(render_error)?;
            println!("{result}");
            Ok(())
        }
        "stats" => {
            let stats = client.stats().map_err(render_error)?;
            println!("{stats}");
            Ok(())
        }
        "models" => {
            let result = match rest.first().map(String::as_str) {
                None => client.models_list(),
                Some("load") => {
                    let path = rest.get(1).ok_or("models load needs a profile JSON file")?;
                    let text =
                        std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                    let profile = Json::parse(&text).map_err(|e| format!("profile JSON: {e}"))?;
                    client.models_load(&profile)
                }
                Some("reload") => {
                    let name = rest.get(1).ok_or("models reload needs a model name")?;
                    client.models_reload(name)
                }
                Some("unload") => {
                    let name = rest.get(1).ok_or("models unload needs a model name")?;
                    client.models_unload(name)
                }
                Some(other) => {
                    return Err(format!("unknown models action '{other}'\n{USAGE}"));
                }
            };
            println!("{}", result.map_err(render_error)?);
            Ok(())
        }
        "metrics" => {
            let text = client.metrics().map_err(render_error)?;
            print!("{text}");
            Ok(())
        }
        "ready" => match client.ready() {
            Ok(true) => {
                println!("ready");
                Ok(())
            }
            Ok(false) => Err("not ready".to_string()),
            Err(e) => Err(render_error(e)),
        },
        "snapshot" => {
            let result = match rest.first().map(String::as_str) {
                None => client.snapshot_trigger(),
                Some("list") => client.snapshot_list(),
                Some(other) => {
                    return Err(format!("unknown snapshot action '{other}'\n{USAGE}"));
                }
            };
            println!("{}", result.map_err(render_error)?);
            Ok(())
        }
        "circuits" => {
            let circuits = client.circuits().map_err(render_error)?;
            println!("{circuits}");
            Ok(())
        }
        "degrade" => {
            let model = rest.first().ok_or(format!("degrade needs a model name\n{USAGE}"))?;
            let level = match rest.get(1).map(String::as_str) {
                Some("off") => None,
                Some(n) => {
                    Some(n.parse::<usize>().map_err(|_| format!("bad degrade level '{n}'"))?)
                }
                None => return Err(format!("degrade needs a level or 'off'\n{USAGE}")),
            };
            let ack = client.degrade(model, level).map_err(render_error)?;
            println!("{ack}");
            Ok(())
        }
        "chaos" => {
            let result = match rest.first().map(String::as_str) {
                None => client.chaos_status(),
                Some("reset") => client.chaos_reset(),
                Some("set") => {
                    let site = rest.get(1).ok_or("chaos set needs a site name")?;
                    let every = rest
                        .get(2)
                        .and_then(|v| v.parse().ok())
                        .ok_or("chaos set needs an 'every' rate")?;
                    let param_ms = match rest.get(3) {
                        Some(v) => v.parse().map_err(|_| format!("bad param_ms '{v}'"))?,
                        None => 0,
                    };
                    client.chaos_configure(site, every, param_ms)
                }
                Some(other) => {
                    return Err(format!("unknown chaos action '{other}'\n{USAGE}"));
                }
            };
            println!("{}", result.map_err(render_error)?);
            Ok(())
        }
        "drain" => {
            let ack = client.drain().map_err(render_error)?;
            println!("{ack}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

/// Flattens a client failure into the message printed to stderr, keeping
/// the server's JSON `error` field when there is one.
fn render_error(e: ClientError) -> String {
    if let ClientError::Status { status, body } = &e {
        if let Ok(parsed) = Json::parse(body) {
            if let Some(msg) = parsed.get("error").and_then(Json::as_str) {
                return format!("server answered {status}: {msg}");
            }
        }
    }
    e.to_string()
}

fn main() -> ExitCode {
    match parse_options().and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fabctl: {msg}");
            ExitCode::FAILURE
        }
    }
}
