//! PR-5 quantization benchmark: post-training int8 serving (`fab-quant`)
//! against the f32 SIMD serving path, on trained LRA-proxy models.
//!
//! For each task (Text @ 64, ListOps @ 32) a dense Transformer is trained
//! at reduced scale, frozen with the serving fast-math kernels, then
//! calibrated on the task's deterministic calibration stream (disjoint from
//! the train/eval splits) and quantized. The benchmark reports:
//!
//! * **serve throughput** — batched `logits_batch` wall time, int8 vs f32,
//!   interleaved min-of-3 passes (both on the same SIMD backend);
//! * **accuracy delta** — held-out accuracy of the f32 model vs the int8
//!   model on the identical eval split, in points.
//!
//! Writes `BENCH_PR5.json` and exits non-zero when a gate fails.
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr5 -- [--smoke]
//!     [--min-speedup X]
//! ```
//!
//! Gates (enforced when a SIMD backend is active and `--min-speedup` > 0):
//! * int8 serve throughput at or above `--min-speedup` × the f32 path on
//!   every task (CI passes 1.0: int8 must never lose; the AVX2 target is
//!   ≥ 1.3x);
//! * the f32 → int8 accuracy drop stays within 1 point on every task.

use fab_lra::{LraTask, Sample, TaskConfig};
use fab_nn::{FrozenModel, Model, ModelConfig, ModelKind, TrainOptions};
use fab_quant::{quantize_frozen, CalibrationConfig, QuantModel};
use fab_tensor::simd;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Options {
    min_speedup: f64,
    smoke: bool,
}

impl Options {
    fn parse() -> Self {
        let mut opts = Self { min_speedup: 0.0, smoke: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--min-speedup" => {
                    opts.min_speedup = args
                        .next()
                        .unwrap_or_else(|| panic!("--min-speedup needs a value"))
                        .parse()
                        .unwrap_or_else(|e| panic!("invalid --min-speedup: {e}"));
                }
                other => panic!("unknown argument {other}"),
            }
        }
        opts
    }
}

/// One task's measurements.
struct TaskRow {
    name: &'static str,
    seq_len: usize,
    f32_acc: f64,
    int8_acc: f64,
    f32_ms: f64,
    int8_ms: f64,
    quantized_fraction: f64,
}

impl TaskRow {
    fn speedup(&self) -> f64 {
        self.f32_ms / self.int8_ms
    }

    /// f32 → int8 accuracy drop in points (positive = int8 lost accuracy).
    fn drop_points(&self) -> f64 {
        (self.f32_acc - self.int8_acc) * 100.0
    }
}

/// Interleaved best-of-3 timing of two closures (milliseconds per call):
/// each pass times `a` then `b`, so drift hits both sides equally.
fn time_pair(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            a();
        }
        best_a = best_a.min(t0.elapsed().as_secs_f64() * 1e3 / reps as f64);
        let t0 = Instant::now();
        for _ in 0..reps {
            b();
        }
        best_b = best_b.min(t0.elapsed().as_secs_f64() * 1e3 / reps as f64);
    }
    (best_a, best_b)
}

fn accuracy_f32(frozen: &FrozenModel, eval: &[Sample]) -> f64 {
    let correct =
        eval.iter().filter(|s| fab_nn::argmax(&frozen.logits(&s.tokens)) == s.label).count();
    correct as f64 / eval.len() as f64
}

fn accuracy_int8(quant: &QuantModel, eval: &[Sample]) -> f64 {
    let correct = eval.iter().filter(|s| quant.predict_class(&s.tokens) == s.label).count();
    correct as f64 / eval.len() as f64
}

#[allow(clippy::too_many_arguments)]
fn run_task(
    task: LraTask,
    seq_len: usize,
    train_n: usize,
    eval_n: usize,
    epochs: usize,
    calib_n: usize,
    batch: usize,
    reps: usize,
) -> TaskRow {
    let config = ModelConfig {
        hidden: 128,
        ffn_ratio: 4,
        num_layers: 2,
        num_abfly: 2,
        num_heads: 4,
        vocab_size: task.vocab_size(),
        max_seq: seq_len,
        num_classes: task.num_classes(),
    };
    let task_config = TaskConfig { seq_len };
    let mut rng = StdRng::seed_from_u64(20220705);
    let (train, eval) = task.generate_split(&task_config, train_n, eval_n, &mut rng);
    let model = Model::new(&config, ModelKind::Transformer, &mut rng);
    let to_examples = |samples: &[Sample]| {
        samples.iter().map(|s| fab_nn::Example::new(s.tokens.clone(), s.label)).collect::<Vec<_>>()
    };
    fab_nn::train_classifier(
        &model,
        &to_examples(&train),
        &[],
        &TrainOptions { epochs, learning_rate: 1e-3, batch_size: 1 },
    );

    // Freeze (f32 serving path) and post-training-quantize on the
    // deterministic calibration stream (disjoint from train/eval).
    let frozen = model.freeze().with_fast_math(true);
    let calib = task.calibration_batches(&task_config, 20220705, calib_n);
    let calib_tokens: Vec<&[usize]> = calib.iter().map(|s| s.tokens.as_slice()).collect();
    let quant = quantize_frozen(&frozen, &calib_tokens, &CalibrationConfig::default());

    // Accuracy on the identical eval split.
    let f32_acc = accuracy_f32(&frozen, &eval);
    let int8_acc = accuracy_int8(&quant, &eval);

    // Serve throughput: batched logits over eval traffic, interleaved.
    let refs: Vec<&[usize]> = eval.iter().take(batch).map(|s| s.tokens.as_slice()).collect();
    let (f32_ms, int8_ms) = time_pair(
        reps,
        || {
            std::hint::black_box(frozen.logits_batch(&refs, seq_len));
        },
        || {
            std::hint::black_box(quant.logits_batch(&refs, seq_len));
        },
    );

    TaskRow {
        name: task.name(),
        seq_len,
        f32_acc,
        int8_acc,
        f32_ms,
        int8_ms,
        quantized_fraction: quant.quantized_fraction(),
    }
}

fn main() {
    let opts = Options::parse();
    let backend = simd::backend();
    println!(
        "bench_pr5: int8 (fab-quant) vs f32 serving on backend `{}`  (cpu: {})",
        backend.name(),
        simd::cpu_features()
    );
    let (train_n, eval_n, epochs, calib_n, reps) =
        if opts.smoke { (80, 120, 2, 16, 2) } else { (240, 240, 6, 32, 6) };

    let rows = [
        run_task(LraTask::Text, 64, train_n, eval_n, epochs, calib_n, 16, reps),
        run_task(LraTask::ListOps, 32, train_n, eval_n, epochs, calib_n, 16, reps),
    ];

    println!(
        "\n{:<10} {:>8} {:>8} {:>7} {:>11} {:>11} {:>9} {:>7}",
        "task", "f32 acc", "int8", "Δpts", "f32 ms/b", "int8 ms/b", "speedup", "q-frac"
    );
    for r in &rows {
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>7.2} {:>11.3} {:>11.3} {:>8.2}x {:>7.2}",
            r.name,
            r.f32_acc,
            r.int8_acc,
            r.drop_points(),
            r.f32_ms,
            r.int8_ms,
            r.speedup(),
            r.quantized_fraction
        );
    }
    let min_serve = rows.iter().map(TaskRow::speedup).fold(f64::INFINITY, f64::min);
    let max_drop = rows.iter().map(TaskRow::drop_points).fold(f64::NEG_INFINITY, f64::max);
    println!("\nmin serve speedup {min_serve:.2}x   max accuracy drop {max_drop:.2} pts");

    let mut json = String::from("{\n  \"pr\": 5,\n");
    json.push_str(&format!("  \"smoke\": {},\n", opts.smoke));
    json.push_str(&format!("  {},\n", fab_bench::host_info_json()));
    json.push_str(&format!("  \"worker_threads\": {},\n", rayon::current_num_threads()));
    json.push_str("  \"tasks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"task\": \"{}\", \"seq_len\": {}, \"f32_accuracy\": {:.4}, \
             \"int8_accuracy\": {:.4}, \"accuracy_drop_points\": {:.3}, \"f32_ms_per_batch\": \
             {:.4}, \"int8_ms_per_batch\": {:.4}, \"serve_speedup\": {:.3}, \
             \"quantized_fraction\": {:.3}}}{}\n",
            r.name,
            r.seq_len,
            r.f32_acc,
            r.int8_acc,
            r.drop_points(),
            r.f32_ms,
            r.int8_ms,
            r.speedup(),
            r.quantized_fraction,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"min_serve_speedup\": {min_serve:.3},\n  \"max_accuracy_drop_points\": \
         {max_drop:.3},\n  \"min_speedup_required\": {}\n}}\n",
        opts.min_speedup
    ));
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!("wrote BENCH_PR5.json");

    if !backend.is_simd() {
        println!("scalar-only host: speedup gates skipped");
        return;
    }
    if opts.min_speedup > 0.0 {
        if min_serve < opts.min_speedup {
            eprintln!(
                "FAIL: int8 serve throughput regression: {min_serve:.2}x < required {:.2}x",
                opts.min_speedup
            );
            std::process::exit(1);
        }
        if max_drop > 1.0 {
            eprintln!("FAIL: int8 accuracy drop {max_drop:.2} pts exceeds the 1-point budget");
            std::process::exit(1);
        }
    }
}
