//! PR-1 kernel throughput harness: measures the seed's serial kernels against
//! the blocked/parallel compute core and writes `BENCH_PR1.json`.
//!
//! "Before" numbers re-implement the seed algorithms verbatim (naive
//! triple-loop matmul via `Tensor::matmul_reference`, per-row butterfly
//! forward with gather/scatter, per-call-twiddle FFT with strided column
//! walks); "after" numbers run the shipped kernels. Run with:
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr1
//! ```

use fab_butterfly::fft::fft2_real;
use fab_butterfly::{ButterflyMatrix, Complex};
use fab_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One before/after measurement.
struct Row {
    name: &'static str,
    before_ms: f64,
    after_ms: f64,
    check: f32,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(20220701);
    let rows = vec![
        bench_matmul(&mut rng, 512),
        bench_matmul(&mut rng, 1024),
        bench_butterfly_forward(&mut rng, 256, 512),
        bench_butterfly_backward(&mut rng, 256, 512),
        bench_fft2(&mut rng, 256, 256),
    ];

    let threads = rayon::current_num_threads();
    println!("\nPR-1 kernel throughput (worker threads: {threads})");
    println!("{:<34} {:>12} {:>12} {:>9}  max|Δ|", "kernel", "before(ms)", "after(ms)", "speedup");
    for r in &rows {
        println!(
            "{:<34} {:>12.3} {:>12.3} {:>8.2}x  {:.2e}",
            r.name,
            r.before_ms,
            r.after_ms,
            r.before_ms / r.after_ms,
            r.check
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"pr\": 1,\n");
    json.push_str(&format!("  \"worker_threads\": {threads},\n"));
    json.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"before_ms\": {:.4}, \"after_ms\": {:.4}, \"speedup\": {:.3}, \"max_abs_diff\": {:.3e}}}{}\n",
            r.name,
            r.before_ms,
            r.after_ms,
            r.before_ms / r.after_ms,
            r.check,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("\nwrote BENCH_PR1.json");
}

/// Best-of-3 wall time of `f` in milliseconds.
fn time_ms<O>(mut f: impl FnMut() -> O) -> (f64, O) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let o = std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(o);
    }
    (best, out.expect("at least one timed run"))
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

fn random_tensor(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let volume: usize = shape.iter().product();
    Tensor::from_vec((0..volume).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), shape)
        .expect("random tensor shape")
}

fn bench_matmul(rng: &mut StdRng, n: usize) -> Row {
    let a = random_tensor(rng, &[n, n]);
    let b = random_tensor(rng, &[n, n]);
    let (before_ms, reference) = time_ms(|| a.matmul_reference(&b));
    let (after_ms, blocked) = time_ms(|| a.matmul(&b));
    Row {
        name: if n == 512 { "matmul_512x512" } else { "matmul_1024x1024" },
        before_ms,
        after_ms,
        check: max_abs_diff(reference.as_slice(), blocked.as_slice()),
    }
}

/// The seed's `forward_rows`: per-row gather, per-row `forward` allocation,
/// per-element scatter.
fn seed_forward_rows(bfly: &ButterflyMatrix, x: &Tensor) -> Tensor {
    let (rows, n) = (x.rows(), x.cols());
    let mut out = Tensor::zeros(&[rows, n]);
    for r in 0..rows {
        let row: Vec<f32> = (0..n).map(|c| x.at(r, c)).collect();
        let y = bfly.forward(&row);
        for (c, v) in y.into_iter().enumerate() {
            out.set(r, c, v);
        }
    }
    out
}

fn bench_butterfly_forward(rng: &mut StdRng, rows: usize, n: usize) -> Row {
    let bfly = ButterflyMatrix::random(n, rng).expect("butterfly size");
    let x = random_tensor(rng, &[rows, n]);
    let (before_ms, before) = time_ms(|| seed_forward_rows(&bfly, &x));
    let (after_ms, after) = time_ms(|| bfly.forward_rows(&x));
    Row {
        name: "butterfly_forward_rows_256x512",
        before_ms,
        after_ms,
        check: max_abs_diff(before.as_slice(), after.as_slice()),
    }
}

fn bench_butterfly_backward(rng: &mut StdRng, rows: usize, n: usize) -> Row {
    let bfly = ButterflyMatrix::random(n, rng).expect("butterfly size");
    let x = random_tensor(rng, &[rows, n]);
    let g = random_tensor(rng, &[rows, n]);
    // The seed's path: per-row `backward` (which re-ran the forward with one
    // clone per stage) plus a full-tensor add per row for the weight grads.
    let (before_ms, before) = time_ms(|| {
        let mut grad_x = Tensor::zeros(&[rows, n]);
        let mut grad_w = Tensor::zeros(&[bfly.num_stages(), 2 * n]);
        for r in 0..rows {
            let row: Vec<f32> = (0..n).map(|c| x.at(r, c)).collect();
            let grow: Vec<f32> = (0..n).map(|c| g.at(r, c)).collect();
            let (gx, gw) = bfly.backward(&row, &grow);
            for (c, v) in gx.into_iter().enumerate() {
                grad_x.set(r, c, v);
            }
            grad_w = grad_w.add(&gw);
        }
        (grad_x, grad_w)
    });
    let (after_ms, after) = time_ms(|| bfly.backward_rows(&x, &g));
    let check = max_abs_diff(before.0.as_slice(), after.0.as_slice())
        .max(max_abs_diff(before.1.as_slice(), after.1.as_slice()));
    Row { name: "butterfly_backward_rows_256x512", before_ms, after_ms, check }
}

/// The seed's `fft2_real`: per-call bit-reverse + per-(block,k) `from_polar`
/// twiddles, and a strided gather/scatter column pass.
fn seed_fft2_real(x: &[f32], seq: usize, hidden: usize) -> Vec<f32> {
    fn seed_fft_in_place(data: &mut [Complex]) {
        let n = data.len();
        let perm = fab_butterfly::fft::bit_reverse_permutation(n);
        for (i, &j) in perm.iter().enumerate() {
            if j > i {
                data.swap(i, j);
            }
        }
        let mut half = 1usize;
        while half < n {
            let step = -std::f32::consts::PI / half as f32;
            for block in (0..n).step_by(2 * half) {
                for k in 0..half {
                    let w = Complex::from_polar(step * k as f32);
                    let a = data[block + k];
                    let b = data[block + k + half] * w;
                    data[block + k] = a + b;
                    data[block + k + half] = a - b;
                }
            }
            half *= 2;
        }
    }
    let mut grid: Vec<Complex> = x.iter().map(|&v| Complex::from(v)).collect();
    for r in 0..seq {
        seed_fft_in_place(&mut grid[r * hidden..(r + 1) * hidden]);
    }
    let mut col = vec![Complex::zero(); seq];
    for c in 0..hidden {
        for r in 0..seq {
            col[r] = grid[r * hidden + c];
        }
        seed_fft_in_place(&mut col);
        for r in 0..seq {
            grid[r * hidden + c] = col[r];
        }
    }
    grid.iter().map(|v| v.re).collect()
}

fn bench_fft2(rng: &mut StdRng, seq: usize, hidden: usize) -> Row {
    let x: Vec<f32> = (0..seq * hidden).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let (before_ms, before) = time_ms(|| seed_fft2_real(&x, seq, hidden));
    let (after_ms, after) = time_ms(|| fft2_real(&x, seq, hidden));
    Row { name: "fft2_real_256x256", before_ms, after_ms, check: max_abs_diff(&before, &after) }
}
