//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fab-bench --bin figures            # everything (quick training)
//! cargo run --release -p fab-bench --bin figures -- --full  # full-size proxy training
//! cargo run --release -p fab-bench --bin figures -- fig19 table5
//! ```

use fab_bench as bench;

fn print_rows(rows: Vec<String>) {
    for row in rows {
        println!("{row}");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|a| a.trim_start_matches('-')).collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    if want("fig1") {
        print_rows(bench::fig1_flops_percentage());
    }
    if want("fig3") {
        print_rows(bench::fig3_latency_breakdown());
    }
    if want("fig4") {
        print_rows(bench::fig4_sparsity_taxonomy());
    }
    if want("table3") || want("fig16") {
        print_rows(bench::table3_accuracy(!full));
    }
    if want("fig17") {
        print_rows(bench::fig17_compression());
    }
    if want("fig18") {
        print_rows(bench::fig18_codesign());
    }
    if want("fig19") {
        print_rows(bench::fig19_speedup_breakdown());
    }
    if want("fig20") {
        print_rows(bench::fig20_device_comparison());
    }
    if want("fig21") {
        print_rows(bench::fig21_bandwidth_sweep());
    }
    if want("table5") {
        print_rows(bench::table5_sota());
    }
    if want("table6") {
        print_rows(bench::table6_power());
    }
    if want("table7") {
        print_rows(bench::table7_resources());
    }
}
