//! PR-9 overload gauntlet: drives a real `fabd` daemon at 4x its measured
//! capacity with deterministic chaos armed, and checks that the adaptive
//! overload stack degrades gracefully instead of falling off a cliff —
//! precision degradation walks down the ladder monotonically and recovers,
//! circuit breakers fast-fail a panicking model and close again after a
//! probe, and every accepted request is answered.
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr9 -- [--smoke]
//!     [--requests N] [--threads N] [--max-p99-ms X]
//! ```
//!
//! Legs and gates:
//! - baseline (overload stack OFF) at 4x capacity: informational cliff
//!   recording, zero transport-dropped requests
//! - adaptive (AIMD + degrade ON, chaos `slow_forward` armed) at 4x:
//!   ≥ 99% of admitted requests answered `200`, p99 below `--max-p99-ms`,
//!   some requests served degraded, the degrade level moves monotonically
//!   (bounded direction changes) and returns to 0 after the load stops,
//!   zero requests unanswered
//! - circuit: chaos `panic_forward` trips the breaker to fast-fail `503`
//!   within the failure threshold, and a half-open probe closes it after
//!   the fault clears
//! - forced degrade: pinning a rung serves bit-identical logits to asking
//!   the rung directly, and releasing the pin restores the primary

use fab_serve::AimdConfig;
use fabd::{
    ClientError, Daemon, DaemonConfig, FabClient, Json, OverloadConfig, Precision, ProfileConfig,
    RetryPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const PRIMARY: &str = "gauntlet-f32";
const RUNGS: [&str; 2] = ["gauntlet-fast", "gauntlet-int8"];
const SEQ_LEN: usize = 32;

struct Options {
    requests: usize,
    threads: usize,
    max_p99_ms: f64,
    smoke: bool,
}

impl Options {
    fn parse() -> Self {
        let mut opts = Self { requests: 0, threads: 8, max_p99_ms: 10_000.0, smoke: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse::<f64>()
                    .unwrap_or_else(|e| panic!("invalid {name}: {e}"))
            };
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--requests" => opts.requests = value("--requests") as usize,
                "--threads" => opts.threads = value("--threads") as usize,
                "--max-p99-ms" => opts.max_p99_ms = value("--max-p99-ms"),
                other => panic!("unknown argument {other}"),
            }
        }
        if opts.requests == 0 {
            opts.requests = if opts.smoke { 120 } else { 600 };
        }
        opts.threads = opts.threads.max(2);
        opts
    }
}

/// Exact percentile of sorted microsecond samples.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One request's outcome: HTTP status (0 = transport failure), latency,
/// and whether a ladder rung served it.
#[derive(Clone, Copy)]
struct Outcome {
    status: u16,
    us: u64,
    degraded: bool,
}

fn no_retry_client(addr: &str, seed: u64) -> FabClient {
    let policy = RetryPolicy { max_retries: 0, base_ms: 1, max_ms: 1 };
    FabClient::with_policy(addr, policy, seed).with_timeout(Duration::from_secs(60))
}

fn random_tokens(rng: &mut StdRng, vocab_cap: usize) -> Vec<usize> {
    let len = rng.gen_range(4..=SEQ_LEN);
    (0..len).map(|_| rng.gen_range(1..vocab_cap)).collect()
}

fn outcome_of(result: &Result<Json, ClientError>, us: u64) -> Outcome {
    match result {
        Ok(body) => Outcome {
            status: 200,
            us,
            degraded: body.get("degraded").and_then(Json::as_bool) == Some(true),
        },
        Err(ClientError::Status { status, .. }) => Outcome { status: *status, us, degraded: false },
        Err(_) => Outcome { status: 0, us, degraded: false },
    }
}

/// Fires `schedule.len()` requests at the primary model open-loop (each
/// thread sleeps to its arrival times) and returns every outcome.
fn run_open_loop(addr: &str, threads: usize, schedule: &[(Vec<usize>, Duration)]) -> Vec<Outcome> {
    let shards: Vec<Vec<(Vec<usize>, Duration)>> =
        (0..threads).map(|t| schedule.iter().skip(t).step_by(threads).cloned().collect()).collect();
    let t0 = Instant::now();
    let handles: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(t, shard)| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = no_retry_client(&addr, t as u64 + 1);
                let mut outcomes = Vec::with_capacity(shard.len());
                for (tokens, at) in shard {
                    let mut now = t0.elapsed();
                    while now < at {
                        std::thread::sleep((at - now).min(Duration::from_micros(500)));
                        now = t0.elapsed();
                    }
                    let r0 = Instant::now();
                    let result = client.predict(Some(PRIMARY), &tokens, None);
                    outcomes.push(outcome_of(&result, r0.elapsed().as_micros() as u64));
                }
                outcomes
            })
        })
        .collect();
    handles.into_iter().flat_map(|h| h.join().expect("sender thread")).collect()
}

/// The primary model's current (adaptive or forced) degrade rung.
fn degrade_level(client: &mut FabClient) -> usize {
    client
        .circuits()
        .ok()
        .and_then(|c| {
            c.get("circuits").and_then(Json::as_arr).and_then(|rows| {
                rows.iter()
                    .find(|r| r.get("model").and_then(Json::as_str) == Some(PRIMARY))
                    .and_then(|r| r.get("degrade_level").and_then(Json::as_usize))
            })
        })
        .unwrap_or(0)
}

/// The primary model's breaker state as reported by `/v1/circuits`.
fn circuit_state(client: &mut FabClient) -> String {
    client
        .circuits()
        .ok()
        .and_then(|c| {
            c.get("circuits").and_then(Json::as_arr).and_then(|rows| {
                rows.iter()
                    .find(|r| r.get("model").and_then(Json::as_str) == Some(PRIMARY))
                    .and_then(|r| r.get("circuit").and_then(Json::as_str).map(str::to_string))
            })
        })
        .unwrap_or_default()
}

fn logits_of(result: &Json) -> Vec<f64> {
    result
        .get("logits")
        .and_then(Json::as_arr)
        .expect("logits")
        .iter()
        .map(|l| l.as_f64().expect("number"))
        .collect()
}

/// Three profiles of the same task at descending precision: the primary
/// and its two ladder rungs.
fn gauntlet_profiles() -> Vec<ProfileConfig> {
    [(PRIMARY, Precision::Exact), (RUNGS[0], Precision::FastMath), (RUNGS[1], Precision::Int8)]
        .into_iter()
        .map(|(name, precision)| {
            let mut p = ProfileConfig::tiny(name, precision, 42);
            p.seq_len = SEQ_LEN;
            p.hidden = 32;
            p
        })
        .collect()
}

fn gauntlet_config(threads: usize, overload: OverloadConfig) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        fault_injection: true,
        num_workers: 2,
        queue_capacity: 64,
        max_connections: threads * 4 + 16,
        read_timeout_ms: 30_000,
        write_timeout_ms: 30_000,
        drain_timeout_ms: 30_000,
        overload,
        profiles: gauntlet_profiles(),
        ..DaemonConfig::default()
    }
}

/// Counts direction changes in the level trace (up-run → down-run or
/// back). A hysteretic controller under one overload episode escalates,
/// plateaus, then recovers: very few flips.
fn direction_changes(levels: &[usize]) -> usize {
    let mut flips = 0usize;
    let mut dir = 0i8;
    for w in levels.windows(2) {
        let step = match w[1].cmp(&w[0]) {
            std::cmp::Ordering::Greater => 1i8,
            std::cmp::Ordering::Less => -1i8,
            std::cmp::Ordering::Equal => continue,
        };
        if dir != 0 && step != dir {
            flips += 1;
        }
        dir = step;
    }
    flips
}

fn main() {
    let opts = Options::parse();
    let mut rng = StdRng::seed_from_u64(20260808);
    let mut failures: Vec<String> = Vec::new();
    let vocab_cap = fab_lra::LraTask::Text.vocab_size() - 1;

    // --- Capacity estimate on a plain daemon (overload stack off). ---------
    let t_train = Instant::now();
    let baseline_daemon = Daemon::start(gauntlet_config(opts.threads, OverloadConfig::default()))
        .expect("baseline daemon starts");
    let baseline_addr = baseline_daemon.addr().to_string();
    println!(
        "bench_pr9: fabd on {baseline_addr} ({} requests, {} sender threads, trained in {:.2}s)",
        opts.requests,
        opts.threads,
        t_train.elapsed().as_secs_f64()
    );
    let mut warm = no_retry_client(&baseline_addr, 99);
    let w0 = Instant::now();
    let warmup = 20;
    for _ in 0..warmup {
        let tokens = random_tokens(&mut rng, vocab_cap);
        warm.predict(Some(PRIMARY), &tokens, None).expect("warmup request");
    }
    let base_rps = warmup as f64 / w0.elapsed().as_secs_f64();
    println!("capacity : {base_rps:8.1} req/s closed-loop (1 connection)");

    // 4x-capacity Poisson arrival schedule, reused for both overload legs
    // so the comparison is apples-to-apples.
    let lambda = 4.0 * base_rps;
    let mut at = 0.0f64;
    let schedule: Vec<(Vec<usize>, Duration)> = (0..opts.requests)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            at += -u.ln() / lambda;
            (random_tokens(&mut rng, vocab_cap), Duration::from_secs_f64(at))
        })
        .collect();

    // --- Leg 1: baseline cliff (overload stack off). ------------------------
    let baseline = run_open_loop(&baseline_addr, opts.threads, &schedule);
    let baseline_ok = baseline.iter().filter(|o| o.status == 200).count();
    let baseline_shed = baseline.iter().filter(|o| matches!(o.status, 429 | 503 | 504)).count();
    let baseline_lost = baseline.iter().filter(|o| o.status == 0).count();
    let mut baseline_us: Vec<u64> =
        baseline.iter().filter(|o| o.status == 200).map(|o| o.us).collect();
    baseline_us.sort_unstable();
    let baseline_p99 = exact_percentile(&baseline_us, 0.99);
    println!(
        "baseline : {baseline_ok}/{} answered 200, {baseline_shed} shed, p99 {baseline_p99}us (stack off)",
        baseline.len()
    );
    if baseline_lost > 0 {
        failures.push(format!("baseline leg: {baseline_lost} requests got no HTTP answer at all"));
    }
    baseline_daemon.shutdown();

    // --- Leg 2: adaptive overload with chaos slow_forward. ------------------
    // Tight AIMD limits so 4x overload actually exercises the ladder, a
    // short dwell/recovery so the run observes a full degrade+recover arc.
    let overload = OverloadConfig {
        adaptive: true,
        degrade: true,
        aimd: AimdConfig {
            initial_limit: 2,
            min_limit: 1,
            max_limit: 64,
            slo_us: 20_000,
            increase_every: 8,
            decrease_pct: 70,
            cooldown_ms: 50,
        },
        degrade_dwell_ms: 100,
        recover_after_ms: 400,
        breaker_failures: 5,
        breaker_open_ms: 500,
        breaker_probes: 2,
    };
    let daemon =
        Daemon::start(gauntlet_config(opts.threads, overload)).expect("adaptive daemon starts");
    let addr = daemon.addr().to_string();
    let mut admin = no_retry_client(&addr, 98);
    admin.chaos_configure("slow_forward", 4, 10).expect("arm slow_forward");

    // Sample the primary's degrade level through the overload episode and
    // the recovery window that follows.
    let sampling = Arc::new(AtomicBool::new(true));
    let levels: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let sampler = {
        let addr = addr.clone();
        let sampling = Arc::clone(&sampling);
        let levels = Arc::clone(&levels);
        std::thread::spawn(move || {
            let mut client = no_retry_client(&addr, 97);
            while sampling.load(Ordering::Acquire) {
                let level = degrade_level(&mut client);
                levels.lock().expect("sampler lock").push(level);
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let adaptive = run_open_loop(&addr, opts.threads, &schedule);
    admin.chaos_reset().expect("disarm chaos");

    // Recovery: with the load gone the controller must walk back to the
    // primary within the recovery window (plus generous slack).
    let r0 = Instant::now();
    let mut recovered = false;
    let mut probe = no_retry_client(&addr, 96);
    while r0.elapsed() < Duration::from_secs(10) {
        let _ = probe.predict(Some(PRIMARY), &[1, 2, 3], None);
        if degrade_level(&mut probe) == 0 {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    sampling.store(false, Ordering::Release);
    sampler.join().expect("sampler thread");
    let level_trace = levels.lock().expect("trace lock").clone();
    let max_level = level_trace.iter().copied().max().unwrap_or(0);
    let flips = direction_changes(&level_trace);

    let adaptive_ok = adaptive.iter().filter(|o| o.status == 200).count();
    let adaptive_shed = adaptive.iter().filter(|o| matches!(o.status, 429 | 503 | 504)).count();
    let adaptive_lost = adaptive.iter().filter(|o| o.status == 0).count();
    let adaptive_other = adaptive.len() - adaptive_ok - adaptive_shed - adaptive_lost;
    let degraded_served = adaptive.iter().filter(|o| o.degraded).count();
    let mut adaptive_us: Vec<u64> =
        adaptive.iter().filter(|o| o.status == 200).map(|o| o.us).collect();
    adaptive_us.sort_unstable();
    let (p50, p99) = (exact_percentile(&adaptive_us, 0.50), exact_percentile(&adaptive_us, 0.99));
    let admitted = adaptive.len() - adaptive_shed;
    let availability = if admitted == 0 { 0.0 } else { adaptive_ok as f64 / admitted as f64 };
    println!(
        "adaptive : {adaptive_ok}/{} answered 200 ({degraded_served} degraded), {adaptive_shed} shed, \
         availability {:.2}% of admitted, p50 {p50}us p99 {p99}us",
        adaptive.len(),
        availability * 100.0
    );
    println!(
        "degrade  : max level {max_level}, {flips} direction changes over {} samples, recovered to 0: {recovered}",
        level_trace.len()
    );
    if adaptive_lost > 0 {
        failures.push(format!("adaptive leg: {adaptive_lost} requests got no HTTP answer at all"));
    }
    if availability < 0.99 {
        failures.push(format!(
            "availability {:.2}% of admitted requests below the 99% gate \
             ({adaptive_other} answered an unexpected error status)",
            availability * 100.0
        ));
    }
    if p99 as f64 / 1000.0 > opts.max_p99_ms {
        failures.push(format!("adaptive p99 {p99}us above the {}ms bound", opts.max_p99_ms));
    }
    if degraded_served == 0 {
        failures.push("no request was served by a ladder rung under 4x overload".to_string());
    }
    if flips > 6 {
        failures
            .push(format!("degrade level flapped: {flips} direction changes in {level_trace:?}"));
    }
    if !recovered {
        failures.push("degrade level never recovered to 0 after the load stopped".to_string());
    }

    // --- Leg 3: circuit breaker under chaos panic_forward. ------------------
    // Every forward panics; within the failure threshold the breaker must
    // flip requests from slow 500s to instant 503s.
    println!("circuit  : arming panic_forward (panic backtraces below are injected)");
    admin.chaos_configure("panic_forward", 1, 0).expect("arm panic_forward");
    let mut tripped_after = None;
    let mut breaker_client = no_retry_client(&addr, 95);
    for i in 0..50 {
        match breaker_client.predict(Some(PRIMARY), &[1, 2, 3], None) {
            Err(ClientError::Status { status: 503, body }) if body.contains("circuit") => {
                tripped_after = Some(i);
                break;
            }
            _ => {}
        }
    }
    let open_state = circuit_state(&mut breaker_client);
    match tripped_after {
        Some(n) => println!("circuit  : open after {n} requests (state '{open_state}')"),
        None => failures.push("circuit never opened across 50 panicking requests".to_string()),
    }
    admin.chaos_reset().expect("disarm panic_forward");
    std::thread::sleep(Duration::from_millis(600));
    let mut closed_after = None;
    for i in 0..10 {
        if breaker_client.predict(Some(PRIMARY), &[1, 2, 3], None).is_ok() {
            closed_after = Some(i);
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let closed_state = circuit_state(&mut breaker_client);
    match closed_after {
        Some(n) => {
            println!("circuit  : serving again after {n} probe attempts (state '{closed_state}')")
        }
        None => failures.push("circuit never recovered after the fault cleared".to_string()),
    }
    if closed_after.is_some() && closed_state != "closed" {
        failures.push(format!("circuit served a probe but reports '{closed_state}', not closed"));
    }

    // --- Leg 4: forced degrade serves the rung's exact logits. --------------
    let tokens = [5, 4, 3, 2, 1];
    let mut pin = no_retry_client(&addr, 94);
    let direct =
        logits_of(&pin.predict(Some(RUNGS[0]), &tokens, None).expect("direct rung predict"));
    pin.degrade(PRIMARY, Some(1)).expect("pin rung 1");
    let forced = pin.predict(Some(PRIMARY), &tokens, None).expect("forced predict");
    let served_by = forced.get("served_by").and_then(Json::as_str).unwrap_or("").to_string();
    let forced_match = logits_of(&forced) == direct;
    pin.degrade(PRIMARY, None).expect("release pin");
    let released = pin.predict(Some(PRIMARY), &tokens, None).expect("released predict");
    let released_by = released.get("served_by").and_then(Json::as_str).unwrap_or("").to_string();
    println!(
        "forced   : pinned rung served by '{served_by}' (bit-match {forced_match}), released → '{released_by}'"
    );
    if served_by != RUNGS[0] || !forced_match {
        failures.push(format!(
            "forced degrade: served by '{served_by}' (want {}), bit-match {forced_match}",
            RUNGS[0]
        ));
    }
    if released_by != PRIMARY {
        failures.push(format!("released pin still serving via '{released_by}'"));
    }

    daemon.shutdown();

    let json = format!(
        "{{\n  \"pr\": 9,\n  \"smoke\": {},\n  {host},\n  \"requests\": {},\n  \
         \"sender_threads\": {},\n  \"capacity_closed_loop_rps\": {base_rps:.2},\n  \
         \"baseline\": {{\"answered_200\": {baseline_ok}, \"shed\": {baseline_shed}, \
         \"p99_us\": {baseline_p99}}},\n  \
         \"adaptive\": {{\"answered_200\": {adaptive_ok}, \"degraded\": {degraded_served}, \
         \"shed\": {adaptive_shed}, \"availability_of_admitted\": {availability:.4}, \
         \"p50_us\": {p50}, \"p99_us\": {p99}}},\n  \
         \"degrade_trace\": {{\"max_level\": {max_level}, \"direction_changes\": {flips}, \
         \"samples\": {}, \"recovered\": {recovered}}},\n  \
         \"circuit\": {{\"tripped_after\": {}, \"closed_after_probes\": {}, \
         \"final_state\": \"{closed_state}\"}},\n  \
         \"forced\": {{\"served_by\": \"{served_by}\", \"bit_match\": {forced_match}, \
         \"released_to\": \"{released_by}\"}},\n  \
         \"max_p99_ms_required\": {},\n  \"failures\": {:?}\n}}\n",
        opts.smoke,
        opts.requests,
        opts.threads,
        level_trace.len(),
        tripped_after.map_or(-1i64, |n| n as i64),
        closed_after.map_or(-1i64, |n| n as i64),
        opts.max_p99_ms,
        failures,
        host = fab_bench::host_info_json(),
    );
    std::fs::write("BENCH_PR9.json", &json).expect("write BENCH_PR9.json");
    println!("wrote BENCH_PR9.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all overload gates passed");
}
