//! PR-7 fleet/QoS load test: boots one `fabd` daemon serving the full
//! model fleet — every LRA-proxy task at every precision — then replays a
//! mixed multi-tenant workload against it, hot-reloads a model mid-load,
//! and sweeps the per-model worker count. Writes `BENCH_PR7.json` and
//! exits non-zero when a gate fails.
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr7 -- [--smoke]
//!     [--requests N] [--threads N] [--duration-ms N]
//!     [--max-p99-ms X] [--min-speedup X]
//! ```
//!
//! Gates:
//! - one process serves all 15 `<task>-<precision>` models; every model
//!   answers with the task's class count
//! - logits are bit-invariant to batch composition, scheduling order and
//!   the request's tenant/priority labels
//! - under background saturation, interactive requests all succeed with
//!   p99 below `--max-p99-ms`, and background traffic still completes
//!   (weighted-fair, not starved); quota overflow is shed with `429`,
//!   nothing is dropped
//! - a hot reload under load answers every in-flight request and the
//!   same-seed retrain reproduces the exact pre-reload logits
//! - worker counts 1/2/4 produce bit-identical logits, and the best
//!   multi-worker throughput is at least `--min-speedup` times the
//!   single-worker point

use fab_lra::LraTask;
use fabd::{
    ClientError, Daemon, DaemonConfig, FabClient, Json, Precision, ProfileConfig, RetryPolicy,
    TenantQuota,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    requests: usize,
    threads: usize,
    duration_ms: u64,
    max_p99_ms: f64,
    min_speedup: f64,
    smoke: bool,
}

impl Options {
    fn parse() -> Self {
        let mut opts = Self {
            requests: 0,
            threads: 4,
            duration_ms: 0,
            max_p99_ms: 10_000.0,
            min_speedup: 1.0,
            smoke: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse::<f64>()
                    .unwrap_or_else(|e| panic!("invalid {name}: {e}"))
            };
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--requests" => opts.requests = value("--requests") as usize,
                "--threads" => opts.threads = value("--threads") as usize,
                "--duration-ms" => opts.duration_ms = value("--duration-ms") as u64,
                "--max-p99-ms" => opts.max_p99_ms = value("--max-p99-ms"),
                "--min-speedup" => opts.min_speedup = value("--min-speedup"),
                other => panic!("unknown argument {other}"),
            }
        }
        if opts.requests == 0 {
            opts.requests = if opts.smoke { 80 } else { 400 };
        }
        if opts.duration_ms == 0 {
            opts.duration_ms = if opts.smoke { 2_000 } else { 8_000 };
        }
        opts.threads = opts.threads.max(1);
        opts
    }
}

/// Exact percentile of sorted microsecond samples.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One request's outcome: HTTP status (0 = transport failure) + latency.
#[derive(Clone, Copy)]
struct Outcome {
    status: u16,
    us: u64,
}

fn no_retry_client(addr: &str, seed: u64) -> FabClient {
    let policy = RetryPolicy { max_retries: 0, base_ms: 1, max_ms: 1 };
    FabClient::with_policy(addr, policy, seed).with_timeout(Duration::from_secs(60))
}

fn status_of(result: &Result<Json, ClientError>) -> u16 {
    match result {
        Ok(_) => 200,
        Err(ClientError::Status { status, .. }) => *status,
        Err(_) => 0,
    }
}

fn logits_of(v: &Json) -> Vec<f64> {
    v.get("logits")
        .and_then(Json::as_arr)
        .expect("prediction has logits")
        .iter()
        .map(|l| l.as_f64().expect("numeric logit"))
        .collect()
}

/// Deterministic probe tokens within `vocab`.
fn probe_tokens(vocab: usize, len: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 7 + 1) % vocab).collect()
}

fn count(outcomes: &[Outcome], status: u16) -> usize {
    outcomes.iter().filter(|o| o.status == status).count()
}

fn sorted_latencies(outcomes: &[Outcome]) -> Vec<u64> {
    let mut us: Vec<u64> = outcomes.iter().map(|o| o.us).collect();
    us.sort_unstable();
    us
}

/// Closed-loop: `threads` senders share `total` requests to one model,
/// returning every outcome plus the measured wall-clock throughput.
fn run_closed_loop(addr: &str, model: &str, threads: usize, total: usize) -> (Vec<Outcome>, f64) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.to_string();
            let model = model.to_string();
            let n = total / threads + usize::from(t < total % threads);
            std::thread::spawn(move || {
                let mut client = no_retry_client(&addr, 300 + t as u64);
                let vocab = LraTask::Text.vocab_size();
                (0..n)
                    .map(|i| {
                        let tokens = probe_tokens(vocab, 8 + (i + t) % 16);
                        let r0 = Instant::now();
                        let result = client.predict(Some(&model), &tokens, None);
                        Outcome { status: status_of(&result), us: r0.elapsed().as_micros() as u64 }
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let outcomes: Vec<Outcome> =
        handles.into_iter().flat_map(|h| h.join().expect("sender thread")).collect();
    let rps = outcomes.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    (outcomes, rps)
}

/// Loops QoS-labelled requests against one model until `stop` flips.
fn qos_sender(
    addr: String,
    model: String,
    tenant: String,
    priority: String,
    pause: Duration,
    seed: u64,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<Vec<Outcome>> {
    std::thread::spawn(move || {
        let mut client = no_retry_client(&addr, seed);
        let vocab = LraTask::Text.vocab_size();
        let mut outcomes = Vec::new();
        let mut i = 0usize;
        while !stop.load(Ordering::Acquire) {
            let tokens = probe_tokens(vocab, 8 + i % 16);
            let r0 = Instant::now();
            let result =
                client.predict_qos(Some(&model), &tokens, None, Some(&tenant), Some(&priority));
            outcomes
                .push(Outcome { status: status_of(&result), us: r0.elapsed().as_micros() as u64 });
            i += 1;
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        outcomes
    })
}

fn json_num(n: f64) -> Json {
    Json::Num(n)
}

fn main() {
    let opts = Options::parse();
    let mut failures: Vec<String> = Vec::new();

    // --- Phase 1: the full fleet in one process. ---------------------------
    // Every LRA-proxy task at every precision, plus three tenants with
    // quotas for the QoS phase: two unconstrained paying tenants and one
    // rate-limited background scavenger.
    let unlimited = TenantQuota { rate_per_s: 1_000_000.0, burst: 1_000_000.0, weight: 1.0 };
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        max_connections: opts.threads * 8 + 48,
        read_timeout_ms: 60_000,
        write_timeout_ms: 60_000,
        drain_timeout_ms: 60_000,
        tenants: vec![
            ("interactive-app".to_string(), TenantQuota { weight: 4.0, ..unlimited.clone() }),
            ("batchy".to_string(), TenantQuota { weight: 2.0, ..unlimited }),
            ("scavenger".to_string(), TenantQuota { rate_per_s: 200.0, burst: 50.0, weight: 1.0 }),
        ],
        ..DaemonConfig::full_fleet()
    };
    let fleet_size = config.profiles.len();
    let t_train = Instant::now();
    let daemon = Daemon::start(config).expect("fleet daemon starts");
    let addr = daemon.addr().to_string();
    let train_s = t_train.elapsed().as_secs_f64();
    println!("bench_pr7: fabd on {addr} ({fleet_size} models trained in {train_s:.2}s)");

    let mut client = no_retry_client(&addr, 1);
    let listing = client.models_list().expect("models listing");
    let ready: Vec<String> = listing
        .get("models")
        .and_then(Json::as_arr)
        .expect("models array")
        .iter()
        .filter(|m| m.get("state").and_then(Json::as_str) == Some("ready"))
        .filter_map(|m| m.get("name").and_then(Json::as_str).map(str::to_string))
        .collect();
    println!("coverage : {} models ready: {}", ready.len(), ready.join(" "));
    if ready.len() != fleet_size {
        failures.push(format!("expected {fleet_size} ready models, listed {}", ready.len()));
    }
    let mut covered = 0usize;
    for &task in &LraTask::ALL {
        for suffix in ["f32", "fast", "int8"] {
            let name = format!("{}-{suffix}", task.name().to_ascii_lowercase());
            let tokens = probe_tokens(task.vocab_size(), 12);
            match client.predict(Some(&name), &tokens, None) {
                Ok(v) if logits_of(&v).len() == task.num_classes() => covered += 1,
                Ok(v) => failures.push(format!(
                    "{name}: {} logits, task has {} classes",
                    logits_of(&v).len(),
                    task.num_classes()
                )),
                Err(e) => failures.push(format!("{name}: predict failed: {e}")),
            }
        }
    }
    println!("coverage : {covered}/{fleet_size} models answered with the right class count");

    // Bit-invariance: the probe's logits must not depend on what else is
    // in flight (batch composition), the dequeue order, or the request's
    // own tenant/priority labels.
    let probe_model = "text-fast";
    let probe = probe_tokens(LraTask::Text.vocab_size(), 12);
    let baseline = logits_of(&client.predict(Some(probe_model), &probe, None).expect("solo probe"));
    let stop = Arc::new(AtomicBool::new(false));
    let noise: Vec<_> = (0..4)
        .map(|t| {
            let models = ["listops-fast", "image-int8", "pathfinder-f32", "retrieval-fast"];
            qos_sender(
                addr.clone(),
                models[t % models.len()].to_string(),
                format!("noise-{t}"),
                ["interactive", "batch", "background"][t % 3].to_string(),
                Duration::ZERO,
                400 + t as u64,
                Arc::clone(&stop),
            )
        })
        .collect();
    let mut invariant_checks = 0usize;
    let mut invariant_breaks = 0usize;
    let rounds = if opts.smoke { 6 } else { 18 };
    for i in 0..rounds {
        let priority = ["interactive", "batch", "background"][i % 3];
        let result = client
            .predict_qos(Some(probe_model), &probe, None, Some("interactive-app"), Some(priority))
            .expect("probe under load");
        invariant_checks += 1;
        if logits_of(&result) != baseline {
            invariant_breaks += 1;
        }
    }
    stop.store(true, Ordering::Release);
    for h in noise {
        h.join().expect("noise sender");
    }
    println!(
        "bitinv   : {invariant_checks} probes under mixed load, {invariant_breaks} diverged from the solo logits"
    );
    if invariant_breaks > 0 {
        failures.push(format!(
            "{invariant_breaks} of {invariant_checks} probes changed logits under load"
        ));
    }

    // --- Phase 2: mixed multi-tenant workload on one model. ----------------
    // All three tenants contend for `text-fast`: interactive trickles,
    // batch runs closed-loop, background floods past its quota.
    let stop = Arc::new(AtomicBool::new(false));
    let mix_model = "text-fast";
    let spawn_class = |tenant: &str, priority: &str, threads: usize, pause: Duration, seed: u64| {
        (0..threads)
            .map(|t| {
                qos_sender(
                    addr.clone(),
                    mix_model.to_string(),
                    tenant.to_string(),
                    priority.to_string(),
                    pause,
                    seed + t as u64,
                    Arc::clone(&stop),
                )
            })
            .collect::<Vec<_>>()
    };
    let interactive_senders =
        spawn_class("interactive-app", "interactive", 2, Duration::from_millis(3), 500);
    let batch_senders = spawn_class("batchy", "batch", 2, Duration::ZERO, 520);
    let background_senders = spawn_class("scavenger", "background", 4, Duration::ZERO, 540);
    std::thread::sleep(Duration::from_millis(opts.duration_ms));
    stop.store(true, Ordering::Release);
    let collect = |senders: Vec<std::thread::JoinHandle<Vec<Outcome>>>| -> Vec<Outcome> {
        senders.into_iter().flat_map(|h| h.join().expect("class sender")).collect()
    };
    let interactive = collect(interactive_senders);
    let batch = collect(batch_senders);
    let background = collect(background_senders);

    let int_us = sorted_latencies(&interactive);
    let (int_p50, int_p99) = (exact_percentile(&int_us, 0.50), exact_percentile(&int_us, 0.99));
    let bg_us = sorted_latencies(&background);
    let bg_p99 = exact_percentile(&bg_us, 0.99);
    let int_ok = count(&interactive, 200);
    let batch_ok = count(&batch, 200);
    let bg_ok = count(&background, 200);
    let bg_shed = count(&background, 429);
    let dropped = [&interactive, &batch, &background].iter().map(|o| count(o, 0)).sum::<usize>();
    println!(
        "mixed    : interactive {int_ok}/{} 200 p50 {int_p50}us p99 {int_p99}us | batch {batch_ok}/{} 200 | background {bg_ok} 200 + {bg_shed} shed-429 of {} p99 {bg_p99}us",
        interactive.len(),
        batch.len(),
        background.len()
    );
    if int_ok != interactive.len() {
        failures.push(format!(
            "interactive: {} of {} requests not answered 200 under background saturation",
            interactive.len() - int_ok,
            interactive.len()
        ));
    }
    if int_p99 as f64 / 1000.0 > opts.max_p99_ms {
        failures.push(format!("interactive p99 {int_p99}us above the {}ms bound", opts.max_p99_ms));
    }
    if batch_ok != batch.len() {
        failures.push(format!("batch: {} requests not answered 200", batch.len() - batch_ok));
    }
    if bg_ok == 0 {
        failures.push("background starved: zero requests completed".to_string());
    }
    if bg_ok + bg_shed != background.len() {
        failures.push(format!(
            "background: {} requests neither served nor shed with 429",
            background.len() - bg_ok - bg_shed
        ));
    }
    if dropped > 0 {
        failures.push(format!("{dropped} requests got no HTTP answer at all"));
    }

    // Server-side accounting must agree: the scavenger's rejections are
    // quota rejections, and every class shows completions.
    let stats = client.stats().expect("stats");
    let tenant_row = |name: &str| -> Option<Json> {
        stats
            .get("tenants")
            .and_then(Json::as_arr)?
            .iter()
            .find(|t| t.get("tenant").and_then(Json::as_str) == Some(name))
            .cloned()
    };
    let scavenger_rejected = tenant_row("scavenger")
        .and_then(|t| t.get("quota_rejected").and_then(Json::as_u64))
        .unwrap_or(0);
    if bg_shed > 0 && scavenger_rejected == 0 {
        failures.push("scavenger got 429s but its quota_rejected counter never moved".to_string());
    }
    let class_completed: Vec<(String, u64)> = stats
        .get("classes")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .map(|c| {
                    (
                        c.get("class").and_then(Json::as_str).unwrap_or("?").to_string(),
                        c.get("completed").and_then(Json::as_u64).unwrap_or(0),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    println!(
        "mixed    : scavenger quota_rejected {scavenger_rejected}; per-class completed {class_completed:?}"
    );
    if class_completed.iter().filter(|(_, n)| *n > 0).count() < 3 {
        failures.push("not every priority class recorded completions".to_string());
    }

    // --- Phase 3: hot reload under load. -----------------------------------
    // The same-seed retrain must reproduce the exact logits, the version
    // must bump, and no request may be dropped while the swap happens.
    let reload_model = "retrieval-fast";
    let reload_probe = probe_tokens(LraTask::Retrieval.vocab_size(), 12);
    let before =
        logits_of(&client.predict(Some(reload_model), &reload_probe, None).expect("pre-reload"));
    let stop = Arc::new(AtomicBool::new(false));
    let reload_senders: Vec<_> = (0..3)
        .map(|t| {
            qos_sender(
                addr.clone(),
                reload_model.to_string(),
                "interactive-app".to_string(),
                "interactive".to_string(),
                Duration::ZERO,
                600 + t as u64,
                Arc::clone(&stop),
            )
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    let r0 = Instant::now();
    let reloaded = client.models_reload(reload_model).expect("reload succeeds");
    let reload_s = r0.elapsed().as_secs_f64();
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Release);
    let during: Vec<Outcome> =
        reload_senders.into_iter().flat_map(|h| h.join().expect("reload sender")).collect();
    let during_ok = count(&during, 200);
    let new_version = reloaded.get("version").and_then(Json::as_u64).unwrap_or(0);
    let after =
        logits_of(&client.predict(Some(reload_model), &reload_probe, None).expect("post-reload"));
    println!(
        "reload   : {reload_model} v{new_version} swapped in {reload_s:.2}s; {during_ok}/{} in-flight 200; logits bit-equal: {}",
        during.len(),
        before == after
    );
    if during_ok != during.len() {
        failures.push(format!(
            "reload dropped {} of {} in-flight requests",
            during.len() - during_ok,
            during.len()
        ));
    }
    if new_version < 2 {
        failures.push(format!("reload did not bump the version (got {new_version})"));
    }
    if before != after {
        failures.push("same-seed reload changed the served logits".to_string());
    }
    daemon.shutdown();

    // --- Phase 4: worker-count sweep. --------------------------------------
    // Same profile at 1/2/4 workers: logits must be bit-identical, and
    // adding workers must not lose throughput below the gate.
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    let mut sweep_logits: Vec<Vec<f64>> = Vec::new();
    let sweep_probe = probe_tokens(LraTask::Text.vocab_size(), 12);
    for workers in [1usize, 2, 4] {
        let mut profile = ProfileConfig::tiny("sweep", Precision::FastMath, 42);
        profile.hidden = 32;
        let config = DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            num_workers: workers,
            max_connections: opts.threads * 4 + 16,
            read_timeout_ms: 60_000,
            write_timeout_ms: 60_000,
            drain_timeout_ms: 60_000,
            profiles: vec![profile],
            ..DaemonConfig::default()
        };
        let d = Daemon::start(config).expect("sweep daemon starts");
        let sweep_addr = d.addr().to_string();
        let mut c = no_retry_client(&sweep_addr, 7);
        sweep_logits.push(logits_of(&c.predict(Some("sweep"), &sweep_probe, None).expect("probe")));
        let (outcomes, rps) = run_closed_loop(&sweep_addr, "sweep", opts.threads, opts.requests);
        let ok = count(&outcomes, 200);
        println!(
            "workers  : {workers} worker(s): {rps:8.1} req/s ({ok}/{} answered 200)",
            outcomes.len()
        );
        if ok != outcomes.len() {
            failures.push(format!(
                "worker sweep at {workers}: {} requests failed",
                outcomes.len() - ok
            ));
        }
        sweep.push((workers, rps));
        d.shutdown();
    }
    if sweep_logits.iter().any(|l| *l != sweep_logits[0]) {
        failures.push("logits differ across worker counts".to_string());
    }
    let single = sweep[0].1;
    let best = sweep.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
    println!(
        "workers  : best {best:8.1} req/s vs single-worker {single:8.1} ({:.2}x, gate {:.2}x)",
        best / single.max(1e-9),
        opts.min_speedup
    );
    if best < opts.min_speedup * single {
        failures.push(format!(
            "best multi-worker throughput {best:.1} req/s below {:.2}x the single-worker {single:.1}",
            opts.min_speedup
        ));
    }

    // --- Report. -----------------------------------------------------------
    let obj = |pairs: Vec<(&str, Json)>| {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let report = obj(vec![
        ("pr", json_num(7.0)),
        ("smoke", Json::Bool(opts.smoke)),
        (
            "host",
            Json::parse(&format!("{{{}}}", fab_bench::host_info_json()))
                .expect("host info")
                .get("host")
                .cloned()
                .unwrap_or(Json::Null),
        ),
        (
            "fleet",
            obj(vec![
                ("models", json_num(fleet_size as f64)),
                ("train_s", json_num(train_s)),
                ("covered", json_num(covered as f64)),
                ("bit_invariance_checks", json_num(invariant_checks as f64)),
                ("bit_invariance_breaks", json_num(invariant_breaks as f64)),
            ]),
        ),
        (
            "mixed_workload",
            obj(vec![
                ("duration_ms", json_num(opts.duration_ms as f64)),
                ("interactive_total", json_num(interactive.len() as f64)),
                ("interactive_200", json_num(int_ok as f64)),
                ("interactive_p50_us", json_num(int_p50 as f64)),
                ("interactive_p99_us", json_num(int_p99 as f64)),
                ("batch_total", json_num(batch.len() as f64)),
                ("batch_200", json_num(batch_ok as f64)),
                ("background_total", json_num(background.len() as f64)),
                ("background_200", json_num(bg_ok as f64)),
                ("background_shed_429", json_num(bg_shed as f64)),
                ("background_p99_us", json_num(bg_p99 as f64)),
                ("scavenger_quota_rejected", json_num(scavenger_rejected as f64)),
                ("dropped", json_num(dropped as f64)),
            ]),
        ),
        (
            "reload_under_load",
            obj(vec![
                ("model", Json::Str(reload_model.to_string())),
                ("version", json_num(new_version as f64)),
                ("swap_s", json_num(reload_s)),
                ("in_flight_total", json_num(during.len() as f64)),
                ("in_flight_200", json_num(during_ok as f64)),
                ("logits_bit_equal", Json::Bool(before == after)),
            ]),
        ),
        (
            "worker_sweep",
            Json::Arr(
                sweep
                    .iter()
                    .map(|&(w, r)| {
                        obj(vec![
                            ("workers", json_num(w as f64)),
                            ("rps", json_num((r * 100.0).round() / 100.0)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("min_speedup_required", json_num(opts.min_speedup)),
        ("max_p99_ms_required", json_num(opts.max_p99_ms)),
        ("failures", Json::Arr(failures.iter().map(|f| Json::Str(f.clone())).collect())),
    ]);
    std::fs::write("BENCH_PR7.json", format!("{report}\n")).expect("write BENCH_PR7.json");
    println!("wrote BENCH_PR7.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all fleet/QoS gates passed");
}
