//! PR-8 snapshot/warm-start bench: measures cold-train vs warm-start boot
//! for a whole `fabd` fleet, crash-recovers a SIGKILLed daemon from its
//! snapshots, and proves that injected corruption costs a fallback, never
//! a bad model or a dead daemon. Writes `BENCH_PR8.json` and exits
//! non-zero when a gate fails.
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr8 -- [--smoke]
//!     [--min-speedup X]
//! ```
//!
//! Gates:
//! - a warm-start boot of the fleet is at least `--min-speedup` times
//!   faster than the cold train-everything boot, and every profile's
//!   logits are bit-identical to the cold-trained daemon's
//! - a daemon killed with SIGKILL mid-training loses nothing that was
//!   snapshotted: the restart warm-starts every model with a snapshot on
//!   disk and retrains only the rest
//! - with the newest snapshot of one model bit-flipped and every snapshot
//!   of another deleted, the daemon still becomes ready: the first model
//!   falls back to the previous good version (bit-identical logits), the
//!   second retrains
//!
//! The hidden `--child-daemon <config.json>` mode runs a daemon for the
//! crash phase; the parent re-execs this binary and SIGKILLs it.

use fabd::{Daemon, DaemonConfig, FabClient, Json, RetryPolicy};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};

struct Options {
    min_speedup: f64,
    smoke: bool,
}

impl Options {
    fn parse() -> Self {
        let mut smoke = false;
        let mut min_speedup: Option<f64> = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--min-speedup" => {
                    min_speedup = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--min-speedup needs a number"),
                    );
                }
                "--child-daemon" => {
                    let path = args.next().expect("--child-daemon needs a config file");
                    run_child_daemon(&path);
                }
                other => panic!("unknown argument {other}"),
            }
        }
        // Smoke trains 3 tiny profiles where absolute training time is
        // small, so the default gate is looser than the full fleet's.
        Self { min_speedup: min_speedup.unwrap_or(if smoke { 2.0 } else { 5.0 }), smoke }
    }
}

/// The crash-phase child: start the daemon described by `path` and idle
/// until the parent SIGKILLs us (training happens inside `Daemon::start`,
/// so the kill usually lands mid-training).
fn run_child_daemon(path: &str) -> ! {
    let text = std::fs::read_to_string(path).expect("read child config");
    let config = DaemonConfig::from_json_str(&text).expect("parse child config");
    let daemon = Daemon::start(config).expect("child daemon starts");
    println!("child daemon ready on {}", daemon.addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn client_for(addr: &str) -> FabClient {
    let policy = RetryPolicy { max_retries: 0, base_ms: 1, max_ms: 1 };
    FabClient::with_policy(addr, policy, 8).with_timeout(Duration::from_secs(60))
}

fn logits_of(v: &Json) -> Vec<f64> {
    v.get("logits")
        .and_then(Json::as_arr)
        .expect("prediction has logits")
        .iter()
        .map(|l| l.as_f64().expect("numeric logit"))
        .collect()
}

fn probe_tokens(vocab: usize, len: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 3 + 1) % vocab).collect()
}

/// `(name, source)` for every ready model, sorted by name.
fn sources_of(client: &mut FabClient) -> Vec<(String, String)> {
    let listed = client.models_list().expect("models listing");
    let mut out: Vec<(String, String)> = listed
        .get("models")
        .and_then(Json::as_arr)
        .expect("models array")
        .iter()
        .filter(|m| m.get("state").and_then(Json::as_str) == Some("ready"))
        .map(|m| {
            (
                m.get("name").and_then(Json::as_str).expect("name").to_string(),
                m.get("source").and_then(Json::as_str).expect("source").to_string(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Model names with at least one complete snapshot under `root`. A
/// `v*.fsnap` only appears via atomic rename after fsync, so presence
/// means complete even after SIGKILL; in-flight `.tmp` files don't count.
fn snapshotted_models(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else { return out };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let has_snapshot = std::fs::read_dir(&path).ok().is_some_and(|d| {
            d.flatten().any(|f| {
                let name = f.file_name().to_string_lossy().into_owned();
                !name.starts_with('.') && name.ends_with(".fsnap")
            })
        });
        if has_snapshot {
            out.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    out.sort();
    out
}

fn fleet_config(smoke: bool, snapshot_dir: &Path) -> DaemonConfig {
    let base = if smoke { DaemonConfig::default() } else { DaemonConfig::full_fleet() };
    DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout_ms: 60_000,
        write_timeout_ms: 60_000,
        drain_timeout_ms: 10_000,
        snapshot_dir: Some(snapshot_dir.to_string_lossy().into_owned()),
        ..base
    }
}

fn json_num(n: f64) -> Json {
    Json::Num(n)
}

fn main() {
    let opts = Options::parse();
    let mut failures: Vec<String> = Vec::new();
    let scratch = std::env::temp_dir().join(format!("bench-pr8-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    // --- Phase 1: cold train vs warm start, bit-identical logits. ----------
    let warm_dir = scratch.join("warm");
    let config = fleet_config(opts.smoke, &warm_dir);
    let fleet_size = config.profiles.len();
    let model_names: Vec<String> = config.profiles.iter().map(|p| p.name.clone()).collect();
    let probes: BTreeMap<String, Vec<usize>> = config
        .profiles
        .iter()
        .map(|p| (p.name.clone(), probe_tokens(p.task.vocab_size(), 12)))
        .collect();

    let t0 = Instant::now();
    let daemon = Daemon::start(config.clone()).expect("cold boot");
    let cold_s = t0.elapsed().as_secs_f64();
    let mut client = client_for(&daemon.addr().to_string());
    let mut cold_logits: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for name in &model_names {
        let v = client.predict(Some(name), &probes[name], None).expect("cold predict");
        cold_logits.insert(name.clone(), logits_of(&v));
    }
    let cold_sources = sources_of(&mut client);
    if !cold_sources.iter().all(|(_, s)| s == "trained") {
        failures.push(format!("cold boot sources not all 'trained': {cold_sources:?}"));
    }
    // A second snapshot version per model, so the corruption phase has a
    // previous-good version to fall back to.
    let ack = client.snapshot_trigger().expect("snapshot trigger");
    let saved = ack.get("saved").and_then(Json::as_arr).map_or(0, <[Json]>::len);
    if saved != fleet_size {
        failures.push(format!("snapshot trigger saved {saved} of {fleet_size} models"));
    }
    daemon.shutdown();

    let t0 = Instant::now();
    let daemon = Daemon::start(config.clone()).expect("warm boot");
    let warm_s = t0.elapsed().as_secs_f64();
    let mut client = client_for(&daemon.addr().to_string());
    let warm_sources = sources_of(&mut client);
    let warm_count = warm_sources.iter().filter(|(_, s)| s == "warm").count();
    if warm_count != fleet_size {
        failures.push(format!(
            "warm boot: {warm_count} of {fleet_size} models warm-started: {warm_sources:?}"
        ));
    }
    let mut drifted = 0usize;
    for name in &model_names {
        let v = client.predict(Some(name), &probes[name], None).expect("warm predict");
        if logits_of(&v) != cold_logits[name] {
            drifted += 1;
            failures.push(format!("{name}: warm-start logits differ from cold-trained"));
        }
    }
    daemon.shutdown();
    let speedup = cold_s / warm_s.max(1e-9);
    println!(
        "warmstart: cold {cold_s:.2}s vs warm {warm_s:.3}s for {fleet_size} models \
         ({speedup:.1}x, gate {:.1}x); {drifted} drifted",
        opts.min_speedup
    );
    if speedup < opts.min_speedup {
        failures.push(format!(
            "warm start {speedup:.1}x faster than cold, below the {:.1}x gate",
            opts.min_speedup
        ));
    }

    // --- Phase 2: SIGKILL mid-training, restart recovers snapshots. --------
    let crash_dir = scratch.join("crash");
    let crash_config = fleet_config(opts.smoke, &crash_dir);
    let config_path = scratch.join("crash-config.json");
    std::fs::write(&config_path, format!("{}\n", crash_config.to_json()))
        .expect("write crash config");
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(&exe)
        .arg("--child-daemon")
        .arg(&config_path)
        .spawn()
        .expect("spawn child daemon");
    // Wait until some (not all) models are snapshotted, then SIGKILL the
    // child — usually mid-training of the next profile.
    let threshold = if opts.smoke { 1 } else { 5 };
    let poll_deadline = Instant::now() + Duration::from_secs(300);
    let killed_with = loop {
        let have = snapshotted_models(&crash_dir).len();
        if have >= threshold {
            break have;
        }
        if Instant::now() > poll_deadline {
            break have;
        }
        if child.try_wait().expect("child poll").is_some() {
            break snapshotted_models(&crash_dir).len();
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    child.kill().expect("SIGKILL child");
    let _ = child.wait();
    let survivors = snapshotted_models(&crash_dir);
    println!(
        "crash    : SIGKILL with {killed_with}+ snapshots on disk; {} of {fleet_size} models \
         survived the crash",
        survivors.len()
    );
    if survivors.is_empty() {
        failures.push("no snapshots survived the SIGKILL".to_string());
    }

    let daemon =
        Daemon::start(fleet_config(opts.smoke, &crash_dir)).expect("restart after SIGKILL");
    let mut client = client_for(&daemon.addr().to_string());
    let sources = sources_of(&mut client);
    if sources.len() != fleet_size {
        failures.push(format!("restart: {} of {fleet_size} models ready", sources.len()));
    }
    let mut recovered = 0usize;
    for name in &survivors {
        match sources.iter().find(|(n, _)| n == name).map(|(_, s)| s.as_str()) {
            Some("warm") => recovered += 1,
            other => failures.push(format!(
                "{name}: snapshotted before the crash but restarted as {other:?}, not warm"
            )),
        }
    }
    let retrained =
        sources.iter().filter(|(n, s)| s == "trained" && !survivors.contains(n)).count();
    println!(
        "crash    : restart recovered {recovered}/{} snapshotted models warm, retrained \
         {retrained} unsnapshotted",
        survivors.len()
    );
    for name in &model_names {
        client.predict(Some(name), &probes[name], None).expect("post-crash predict");
    }
    daemon.shutdown();

    // --- Phase 3: corruption costs a fallback, never readiness. ------------
    // Bit-flip the newest snapshot of the first model (an older good
    // version exists from the trigger above) and delete every snapshot of
    // the second; the daemon must come up with fallback + trained.
    let victim_fallback = &model_names[0];
    let victim_retrain = &model_names[1];
    let newest = std::fs::read_dir(warm_dir.join(victim_fallback))
        .expect("victim dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fsnap"))
        .max()
        .expect("a snapshot to corrupt");
    let mut bytes = std::fs::read(&newest).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).expect("write corrupted snapshot");
    std::fs::remove_dir_all(warm_dir.join(victim_retrain)).expect("delete snapshots");

    let daemon = Daemon::start(config).expect("boot despite corruption");
    let mut client = client_for(&daemon.addr().to_string());
    let sources = sources_of(&mut client);
    let source_of = |name: &str| {
        sources.iter().find(|(n, _)| n == name).map(|(_, s)| s.clone()).unwrap_or_default()
    };
    let fallback_count = sources.iter().filter(|(_, s)| s == "fallback").count();
    println!(
        "corrupt  : {victim_fallback} source {}, {victim_retrain} source {}, {} of {fleet_size} \
         ready",
        source_of(victim_fallback),
        source_of(victim_retrain),
        sources.len()
    );
    if source_of(victim_fallback) != "fallback" {
        failures.push(format!(
            "{victim_fallback}: corrupt newest should fall back, got '{}'",
            source_of(victim_fallback)
        ));
    }
    if source_of(victim_retrain) != "trained" {
        failures.push(format!(
            "{victim_retrain}: all snapshots gone should retrain, got '{}'",
            source_of(victim_retrain)
        ));
    }
    if sources.len() != fleet_size {
        failures
            .push(format!("corruption took models down: {} of {fleet_size} ready", sources.len()));
    }
    let v =
        client.predict(Some(victim_fallback), &probes[victim_fallback], None).expect("fallback");
    if logits_of(&v) != cold_logits[victim_fallback] {
        failures.push(format!("{victim_fallback}: fallback logits differ from cold-trained"));
    }
    let metrics = client.metrics().expect("metrics");
    if !metrics.contains(&format!(
        "fabd_model_source{{model=\"{victim_fallback}\",source=\"fallback\"}} 1"
    )) {
        failures.push("fabd_model_source fallback row missing from /metrics".to_string());
    }
    daemon.shutdown();

    // --- Report. -----------------------------------------------------------
    let obj = |pairs: Vec<(&str, Json)>| {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let report = obj(vec![
        ("pr", json_num(8.0)),
        ("smoke", Json::Bool(opts.smoke)),
        (
            "host",
            Json::parse(&format!("{{{}}}", fab_bench::host_info_json()))
                .expect("host info")
                .get("host")
                .cloned()
                .unwrap_or(Json::Null),
        ),
        (
            "warm_start",
            obj(vec![
                ("models", json_num(fleet_size as f64)),
                ("cold_s", json_num(cold_s)),
                ("warm_s", json_num(warm_s)),
                ("speedup", json_num((speedup * 100.0).round() / 100.0)),
                ("min_speedup_required", json_num(opts.min_speedup)),
                ("logits_drifted", json_num(drifted as f64)),
            ]),
        ),
        (
            "crash_recovery",
            obj(vec![
                ("snapshots_at_kill", json_num(killed_with as f64)),
                ("survivors", json_num(survivors.len() as f64)),
                ("recovered_warm", json_num(recovered as f64)),
                ("retrained", json_num(retrained as f64)),
            ]),
        ),
        (
            "corruption",
            obj(vec![
                ("fallback_model", Json::Str(victim_fallback.clone())),
                ("retrain_model", Json::Str(victim_retrain.clone())),
                ("fallback_count", json_num(fallback_count as f64)),
            ]),
        ),
        ("failures", Json::Arr(failures.iter().map(|f| Json::Str(f.clone())).collect())),
    ]);
    std::fs::write("BENCH_PR8.json", format!("{report}\n")).expect("write BENCH_PR8.json");
    println!("wrote BENCH_PR8.json");
    let _ = std::fs::remove_dir_all(&scratch);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all snapshot/warm-start gates passed");
}
