//! PR-6 robustness load test: drives a real `fabd` daemon over loopback
//! HTTP with open-loop arrivals, then walks it through a fault-injection
//! gauntlet — killed workers, a poison (panicking) input, an overload
//! burst, expired deadlines — and finishes with a graceful drain carrying
//! stranded in-flight requests. Writes `BENCH_PR6.json` and exits non-zero
//! when a robustness gate fails.
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr6 -- [--smoke]
//!     [--requests N] [--threads N] [--max-p99-ms X]
//! ```
//!
//! Gates:
//! - every healthy-phase request is answered `200`, p99 below `--max-p99-ms`
//! - requests keep succeeding across injected worker kills, and the
//!   supervisor's restart counter moves
//! - a poison input gets an explicit `500` while its batchmates get `200`
//! - an overload burst is shed with explicit per-sequence errors, never
//!   hangs
//! - expired deadlines are shed (504 / inline errors), not served late
//! - the drain answers every stranded in-flight request: zero loss

use fab_lra::LraTask;
use fabd::{
    ClientError, Daemon, DaemonConfig, FabClient, Json, Precision, ProfileConfig, RetryPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    requests: usize,
    threads: usize,
    max_p99_ms: f64,
    smoke: bool,
}

impl Options {
    fn parse() -> Self {
        let mut opts = Self { requests: 0, threads: 4, max_p99_ms: 10_000.0, smoke: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse::<f64>()
                    .unwrap_or_else(|e| panic!("invalid {name}: {e}"))
            };
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--requests" => opts.requests = value("--requests") as usize,
                "--threads" => opts.threads = value("--threads") as usize,
                "--max-p99-ms" => opts.max_p99_ms = value("--max-p99-ms"),
                other => panic!("unknown argument {other}"),
            }
        }
        if opts.requests == 0 {
            opts.requests = if opts.smoke { 80 } else { 400 };
        }
        opts.threads = opts.threads.max(1);
        opts
    }
}

/// Exact percentile of sorted microsecond samples.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One request's outcome: HTTP status (0 = transport failure) + latency.
#[derive(Clone, Copy)]
struct Outcome {
    status: u16,
    us: u64,
}

fn no_retry_client(addr: &str, seed: u64) -> FabClient {
    let policy = RetryPolicy { max_retries: 0, base_ms: 1, max_ms: 1 };
    FabClient::with_policy(addr, policy, seed).with_timeout(Duration::from_secs(60))
}

fn random_tokens(rng: &mut StdRng, vocab_cap: usize, max_len: usize) -> Vec<usize> {
    let len = rng.gen_range(4..=max_len);
    (0..len).map(|_| rng.gen_range(1..vocab_cap)).collect()
}

fn status_of(result: &Result<Json, ClientError>) -> u16 {
    match result {
        Ok(_) => 200,
        Err(ClientError::Status { status, .. }) => *status,
        Err(_) => 0,
    }
}

/// Fires `schedule.len()` requests open-loop (each thread sleeps to its
/// arrival times) and returns every outcome.
fn run_open_loop(
    addr: &str,
    threads: usize,
    schedule: &[(Vec<usize>, Duration)],
    deadline_ms: Option<u64>,
) -> Vec<Outcome> {
    let shards: Vec<Vec<(Vec<usize>, Duration)>> =
        (0..threads).map(|t| schedule.iter().skip(t).step_by(threads).cloned().collect()).collect();
    let t0 = Instant::now();
    let handles: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(t, shard)| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = no_retry_client(&addr, t as u64 + 1);
                let mut outcomes = Vec::with_capacity(shard.len());
                for (tokens, at) in shard {
                    let mut now = t0.elapsed();
                    while now < at {
                        std::thread::sleep((at - now).min(Duration::from_micros(500)));
                        now = t0.elapsed();
                    }
                    let r0 = Instant::now();
                    let result = client.predict(None, &tokens, deadline_ms);
                    outcomes.push(Outcome {
                        status: status_of(&result),
                        us: r0.elapsed().as_micros() as u64,
                    });
                }
                outcomes
            })
        })
        .collect();
    handles.into_iter().flat_map(|h| h.join().expect("sender thread")).collect()
}

fn count(outcomes: &[Outcome], status: u16) -> usize {
    outcomes.iter().filter(|o| o.status == status).count()
}

fn sorted_latencies(outcomes: &[Outcome]) -> Vec<u64> {
    let mut us: Vec<u64> = outcomes.iter().map(|o| o.us).collect();
    us.sort_unstable();
    us
}

fn main() {
    let opts = Options::parse();
    let mut rng = StdRng::seed_from_u64(20260806);
    let mut failures: Vec<String> = Vec::new();

    // One fast-math profile with an armed poison token (the gauntlet needs
    // it); fault injection stays daemon-gated.
    let task = LraTask::Text;
    let vocab = task.vocab_size();
    let marker = vocab - 1;
    let seq_len = 32;
    let mut profile = ProfileConfig::tiny("bench", Precision::FastMath, 42);
    profile.seq_len = seq_len;
    profile.hidden = 32;
    profile.panic_token = Some(marker);
    let queue_capacity = 256;
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        fault_injection: true,
        num_workers: 2,
        queue_capacity,
        max_connections: opts.threads * 4 + 16,
        read_timeout_ms: 30_000,
        write_timeout_ms: 30_000,
        drain_timeout_ms: 30_000,
        profiles: vec![profile],
        ..DaemonConfig::default()
    };
    let t_train = Instant::now();
    let daemon = Daemon::start(config).expect("daemon starts");
    let addr = daemon.addr().to_string();
    println!(
        "bench_pr6: fabd on {addr} ({} requests, {} sender threads, trained in {:.2}s)",
        opts.requests,
        opts.threads,
        t_train.elapsed().as_secs_f64()
    );

    // Closed-loop warmup to estimate the service rate, sizing the open-loop
    // arrival schedule relative to this host.
    let mut warm = no_retry_client(&addr, 99);
    let w0 = Instant::now();
    let warmup = 20;
    for _ in 0..warmup {
        let tokens = random_tokens(&mut rng, marker, seq_len);
        warm.predict(None, &tokens, None).expect("warmup request");
    }
    let base_rps = warmup as f64 / w0.elapsed().as_secs_f64();
    println!("warmup   : {base_rps:8.1} req/s closed-loop (1 connection)");

    // --- Phase 1: healthy open-loop load. ----------------------------------
    // Poisson arrivals at 2x the single-connection rate: enough pressure to
    // exercise batching without saturating the bounded queue.
    let lambda = 2.0 * base_rps;
    let mut at = 0.0f64;
    let schedule: Vec<(Vec<usize>, Duration)> = (0..opts.requests)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            at += -u.ln() / lambda;
            (random_tokens(&mut rng, marker, seq_len), Duration::from_secs_f64(at))
        })
        .collect();
    let healthy = run_open_loop(&addr, opts.threads, &schedule, None);
    let healthy_us = sorted_latencies(&healthy);
    let healthy_ok = count(&healthy, 200);
    let healthy_s = schedule.last().expect("nonempty").1.as_secs_f64();
    let (p50, p95, p99) = (
        exact_percentile(&healthy_us, 0.50),
        exact_percentile(&healthy_us, 0.95),
        exact_percentile(&healthy_us, 0.99),
    );
    println!(
        "healthy  : {healthy_ok}/{} answered 200  p50 {p50}us  p95 {p95}us  p99 {p99}us",
        healthy.len()
    );
    if healthy_ok != healthy.len() {
        failures.push(format!(
            "healthy phase: {} of {} requests not answered 200",
            healthy.len() - healthy_ok,
            healthy.len()
        ));
    }
    if p99 as f64 / 1000.0 > opts.max_p99_ms {
        failures.push(format!("healthy p99 {p99}us above the {}ms bound", opts.max_p99_ms));
    }

    // --- Phase 2a: killed workers under load. ------------------------------
    // Kill a worker every quarter of the phase; the supervisor respawns it
    // while the load keeps flowing.
    let kill_phase_requests = opts.requests / 2;
    let kills = 4;
    let killer_addr = addr.clone();
    let fired = Arc::new(AtomicUsize::new(0));
    let fired_killer = Arc::clone(&fired);
    let killer = std::thread::spawn(move || {
        let mut client = no_retry_client(&killer_addr, 7);
        for k in 1..=kills {
            while fired_killer.load(Ordering::Acquire) < kill_phase_requests * k / (kills + 1) {
                std::thread::sleep(Duration::from_millis(1));
            }
            client
                .request_json("POST", "/admin/inject_worker_exit", b"")
                .expect("fault injection enabled");
        }
    });
    let mut kill_outcomes = Vec::with_capacity(kill_phase_requests);
    {
        let mut client = no_retry_client(&addr, 8);
        for _ in 0..kill_phase_requests {
            let tokens = random_tokens(&mut rng, marker, seq_len);
            let r0 = Instant::now();
            let result = client.predict(None, &tokens, None);
            kill_outcomes
                .push(Outcome { status: status_of(&result), us: r0.elapsed().as_micros() as u64 });
            fired.fetch_add(1, Ordering::AcqRel);
        }
    }
    killer.join().expect("killer thread");
    let kill_ok = count(&kill_outcomes, 200);
    println!("faults   : {kill_ok}/{kill_phase_requests} answered 200 across {kills} injected worker kills");
    if kill_ok != kill_phase_requests {
        failures.push(format!(
            "kill phase: {} of {kill_phase_requests} requests lost",
            kill_phase_requests - kill_ok
        ));
    }

    // --- Phase 2b: poison input (panicking forward pass). ------------------
    // The marker token panics the model hook; the daemon must answer it 500
    // and keep answering its batchmates 200. Panic backtraces on stderr are
    // expected here.
    println!(
        "poison   : sending 1 marker request + 8 clean batchmates (panics below are injected)"
    );
    let poison_addr = addr.clone();
    let poison = std::thread::spawn(move || {
        let mut client = no_retry_client(&poison_addr, 9);
        let result = client.predict(None, &[1, 2, marker], None);
        status_of(&result)
    });
    let mates_schedule: Vec<(Vec<usize>, Duration)> =
        (0..8).map(|_| (random_tokens(&mut rng, marker, seq_len), Duration::ZERO)).collect();
    let mates = run_open_loop(&addr, 2, &mates_schedule, None);
    let poison_status = poison.join().expect("poison thread");
    let mates_ok = count(&mates, 200);
    println!("poison   : marker answered {poison_status}, batchmates {mates_ok}/8 answered 200");
    if poison_status != 500 {
        failures.push(format!("poison input answered {poison_status}, expected explicit 500"));
    }
    if mates_ok != mates.len() {
        failures.push("batchmates of the poison input were not all answered 200".to_string());
    }

    // --- Phase 2c: overload burst. ----------------------------------------
    // One predict_batch with 4x the queue capacity: admission control must
    // shed the excess with explicit inline errors, instantly.
    let burst = queue_capacity * 4;
    let sequences: Vec<Json> = (0..burst)
        .map(|_| {
            Json::Arr(
                random_tokens(&mut rng, marker, seq_len)
                    .iter()
                    .map(|&t| Json::Num(t as f64))
                    .collect(),
            )
        })
        .collect();
    let body = Json::Obj(vec![("sequences".to_string(), Json::Arr(sequences))]).to_string();
    let mut burst_client = no_retry_client(&addr, 10);
    let b0 = Instant::now();
    let burst_result = burst_client
        .request_json("POST", "/v1/predict_batch", body.as_bytes())
        .expect("burst answered");
    let burst_s = b0.elapsed().as_secs_f64();
    let results = burst_result.get("results").and_then(Json::as_arr).expect("results");
    let burst_served = results.iter().filter(|r| r.get("logits").is_some()).count();
    let burst_shed = results.iter().filter(|r| r.get("error").is_some()).count();
    println!(
        "overload : burst of {burst}: {burst_served} served, {burst_shed} shed with explicit errors in {burst_s:.2}s"
    );
    if burst_served + burst_shed != burst {
        failures.push("overload burst: some sequences got neither result nor error".to_string());
    }
    if burst_shed == 0 {
        failures
            .push(format!("overload burst of {burst} over capacity {queue_capacity} shed nothing"));
    }

    // --- Phase 2d: expired deadlines. --------------------------------------
    // An explicit 0 deadline is shed deterministically with 504; a 1 ms
    // deadline on a queued burst sheds whatever misses it.
    let zero = no_retry_client(&addr, 11).predict(None, &[1, 2, 3], Some(0));
    let zero_status = status_of(&zero);
    let tight_schedule: Vec<(Vec<usize>, Duration)> = (0..opts.requests / 4)
        .map(|_| (random_tokens(&mut rng, marker, seq_len), Duration::ZERO))
        .collect();
    let tight = run_open_loop(&addr, opts.threads, &tight_schedule, Some(1));
    let tight_ok = count(&tight, 200);
    let tight_shed = count(&tight, 504);
    println!(
        "deadline : explicit-0 answered {zero_status}; 1ms-deadline burst: {tight_ok} served, {tight_shed} shed 504 of {}",
        tight.len()
    );
    if zero_status != 504 {
        failures.push(format!("explicit 0 deadline answered {zero_status}, expected 504"));
    }
    if tight_ok + tight_shed != tight.len() {
        failures.push("deadline burst: some requests neither served nor shed".to_string());
    }

    // Snapshot server-side counters before the daemon goes away.
    let stats = no_retry_client(&addr, 12).stats().expect("stats");
    let model_stats = stats.get("models").and_then(Json::as_arr).expect("models")[0].clone();
    let counter = |key: &str| model_stats.get(key).and_then(Json::as_u64).unwrap_or(0);
    let (restarts, panics, rejected, shed_expired) = (
        counter("worker_restarts"),
        counter("batch_panics"),
        counter("rejected"),
        counter("shed_expired"),
    );
    println!(
        "counters : {restarts} worker restarts, {panics} batch panics, {rejected} rejected, {shed_expired} shed expired"
    );
    if restarts == 0 {
        failures.push("supervisor restart counter never moved despite injected kills".to_string());
    }
    if panics == 0 {
        failures.push("batch panic counter never moved despite the poison input".to_string());
    }
    if rejected == 0 || shed_expired == 0 {
        failures.push("shedding counters did not move".to_string());
    }

    // --- Phase 2e: worker-count throughput points. -------------------------
    // Closed-loop points at 2 and 4 workers on a fresh healthy daemon each
    // (the main daemon has frozen supervisors and panic scars by now), so
    // BENCH_PR6.json records how the worker pool scales on this host.
    let mut worker_sweep: Vec<(usize, f64)> = Vec::new();
    for workers in [2usize, 4] {
        let mut sweep_profile = ProfileConfig::tiny("sweep", Precision::FastMath, 42);
        sweep_profile.seq_len = seq_len;
        sweep_profile.hidden = 32;
        let sweep_config = DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            num_workers: workers,
            max_connections: opts.threads * 4 + 16,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            drain_timeout_ms: 30_000,
            profiles: vec![sweep_profile],
            ..DaemonConfig::default()
        };
        let sweep_daemon = Daemon::start(sweep_config).expect("sweep daemon starts");
        let sweep_addr = sweep_daemon.addr().to_string();
        let n = (opts.requests / 2).max(40);
        let s0 = Instant::now();
        let sweep_handles: Vec<_> = (0..opts.threads)
            .map(|t| {
                let addr = sweep_addr.clone();
                let per = n / opts.threads + usize::from(t < n % opts.threads);
                let mut thread_rng = StdRng::seed_from_u64(7_000 + t as u64);
                let tokens: Vec<Vec<usize>> =
                    (0..per).map(|_| random_tokens(&mut thread_rng, marker, seq_len)).collect();
                std::thread::spawn(move || {
                    let mut client = no_retry_client(&addr, 200 + t as u64);
                    tokens.iter().filter(|t| client.predict(None, t, None).is_ok()).count()
                })
            })
            .collect();
        let served: usize =
            sweep_handles.into_iter().map(|h| h.join().expect("sweep sender")).sum();
        let rps = served as f64 / s0.elapsed().as_secs_f64().max(1e-9);
        println!(
            "workers  : {workers} worker(s): {rps:8.1} req/s closed-loop ({served}/{n} served)"
        );
        worker_sweep.push((workers, rps));
        sweep_daemon.shutdown();
    }

    // --- Phase 3: graceful drain with stranded in-flight requests. ---------
    // Senders park requests in flight, then the daemon drains: every one
    // must come back answered (a result or an explicit error), zero lost.
    let stranded_n = opts.threads * 2;
    let stranded: Vec<_> = (0..stranded_n)
        .map(|i| {
            let addr = addr.clone();
            let tokens = random_tokens(&mut rng, marker, seq_len);
            std::thread::spawn(move || {
                let mut client = no_retry_client(&addr, 100 + i as u64);
                status_of(&client.predict(None, &tokens, None))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    let d0 = Instant::now();
    daemon.shutdown();
    let drain_s = d0.elapsed().as_secs_f64();
    let stranded_statuses: Vec<u16> =
        stranded.into_iter().map(|h| h.join().expect("stranded sender")).collect();
    let drain_answered = stranded_statuses.iter().filter(|&&s| s == 200).count();
    println!(
        "drain    : {drain_answered}/{stranded_n} stranded requests answered in {drain_s:.2}s ({stranded_statuses:?})"
    );
    if drain_answered != stranded_n {
        failures.push(format!(
            "drain dropped {} of {stranded_n} in-flight requests",
            stranded_n - drain_answered
        ));
    }

    let worker_sweep_json = worker_sweep
        .iter()
        .map(|&(w, r)| format!("{{\"workers\": {w}, \"rps\": {r:.2}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"pr\": 6,\n  \"smoke\": {},\n  {host},\n  \"requests\": {},\n  \
         \"sender_threads\": {},\n  \"queue_capacity\": {queue_capacity},\n  \
         \"warmup_closed_loop_rps\": {base_rps:.2},\n  \
         \"healthy\": {{\"answered_200\": {healthy_ok}, \"total\": {}, \"duration_s\": {healthy_s:.3}, \
         \"throughput_rps\": {:.2}, \"p50_us\": {p50}, \"p95_us\": {p95}, \"p99_us\": {p99}}},\n  \
         \"worker_kills\": {{\"injected\": {kills}, \"requests\": {kill_phase_requests}, \
         \"answered_200\": {kill_ok}, \"worker_restarts\": {restarts}}},\n  \
         \"poison\": {{\"marker_status\": {poison_status}, \"batchmates_200\": {mates_ok}, \
         \"batch_panics\": {panics}}},\n  \
         \"overload\": {{\"burst\": {burst}, \"served\": {burst_served}, \"shed\": {burst_shed}, \
         \"rejected_total\": {rejected}}},\n  \
         \"deadlines\": {{\"explicit_zero_status\": {zero_status}, \"tight_total\": {}, \
         \"tight_served\": {tight_ok}, \"tight_shed_504\": {tight_shed}, \
         \"shed_expired_total\": {shed_expired}}},\n  \
         \"drain\": {{\"stranded\": {stranded_n}, \"answered\": {drain_answered}, \
         \"duration_s\": {drain_s:.3}}},\n  \
         \"worker_sweep\": [{worker_sweep_json}],\n  \
         \"max_p99_ms_required\": {},\n  \"failures\": {:?}\n}}\n",
        opts.smoke,
        opts.requests,
        opts.threads,
        healthy.len(),
        healthy.len() as f64 / healthy_s.max(1e-9),
        tight.len(),
        opts.max_p99_ms,
        failures,
        host = fab_bench::host_info_json(),
    );
    std::fs::write("BENCH_PR6.json", &json).expect("write BENCH_PR6.json");
    println!("wrote BENCH_PR6.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all robustness gates passed");
}
