//! PR-3 training-throughput benchmark: end-to-end LRA training steps per
//! second on the allocation-free path (reused arena [`fab_tensor::Tape`],
//! specialized butterfly backward, fused AdamW) against the pre-PR loop
//! (fresh tape per step, seed reference backward, reference Adam), plus a
//! gradient-equivalence gate between the two paths. Writes `BENCH_PR3.json`
//! and exits non-zero when throughput or gradient gates fail.
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr3 -- [--smoke]
//!     [--steps N] [--min-speedup X]
//! ```
//!
//! `--smoke` runs a small step count for CI; `--min-speedup 1.0` makes CI
//! fail on any training-throughput regression vs. the reference loop.

use fab_lra::{LraTask, TaskConfig};
use fab_nn::{Adam, FusedAdamW, Model, ModelConfig, ModelKind, Optimizer, TrainStep};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// CLI options (hand-parsed; the container has no argument-parsing crate).
struct Options {
    steps: usize,
    min_speedup: f64,
    smoke: bool,
}

impl Options {
    fn parse() -> Self {
        let mut opts = Self { steps: 0, min_speedup: 0.0, smoke: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse::<f64>()
                    .unwrap_or_else(|e| panic!("invalid {name}: {e}"))
            };
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--steps" => opts.steps = value("--steps") as usize,
                "--min-speedup" => opts.min_speedup = value("--min-speedup"),
                other => panic!("unknown argument {other}"),
            }
        }
        if opts.steps == 0 {
            opts.steps = if opts.smoke { 48 } else { 240 };
        }
        opts
    }
}

fn main() {
    let opts = Options::parse();
    let mut rng = StdRng::seed_from_u64(20220703);

    // The representative LRA configuration of the serving bench: a FABNet
    // big enough that the gradient path dominates, small enough for CI.
    let task = LraTask::Text;
    let seq_len = 64usize;
    let config = ModelConfig {
        hidden: 64,
        ffn_ratio: 4,
        num_layers: 2,
        num_abfly: 1,
        num_heads: 4,
        vocab_size: task.vocab_size(),
        max_seq: 128,
        num_classes: task.num_classes(),
    };
    let samples = task.generate(&TaskConfig { seq_len }, opts.steps.max(64), &mut rng);
    println!(
        "bench_pr3: {} training steps, {}@{seq_len}, FABNet hidden {} x {} layers ({} params)",
        opts.steps,
        task.name(),
        config.hidden,
        config.num_layers,
        Model::new(&config, ModelKind::FabNet, &mut StdRng::seed_from_u64(1)).num_params(),
    );

    // --- Gradient-equivalence gate: fused vs reference backward. ----------
    let model = Model::new(&config, ModelKind::FabNet, &mut StdRng::seed_from_u64(42));
    let probe = &samples[0];
    let (tape, loss, bindings) = model.loss(&probe.tokens, probe.label);
    tape.backward(loss);
    let fused_grads: Vec<_> = bindings.iter().map(|(id, _)| tape.grad(*id)).collect();
    tape.backward_reference(loss);
    let mut max_grad_diff = 0.0f32;
    for (f, (id, _)) in fused_grads.iter().zip(bindings.iter()) {
        let r = tape.grad(*id);
        for (a, b) in f.as_slice().iter().zip(r.as_slice()) {
            max_grad_diff = max_grad_diff.max((a - b).abs());
        }
    }
    println!("gradients: max |fused - reference| = {max_grad_diff:.3e}");

    // --- Timed loops. ------------------------------------------------------
    // The two loops run as interleaved blocks (ref, fused, ref, fused, …)
    // and each path reports its *minimum* block time: on this single shared
    // core, background contention hits both paths in the same windows, and
    // per-path minima give each loop its clean-window throughput. Each pass
    // uses a fresh model from the same seed so the work is identical and
    // optimiser state does not leak across passes.
    const PASSES: usize = 3;
    let run_reference = || {
        let model = Model::new(&config, ModelKind::FabNet, &mut StdRng::seed_from_u64(7));
        let mut opt = Adam::new(1e-3);
        for s in samples.iter().take(4) {
            // Warmup (page faults, lazy init).
            let (tape, loss, bindings) = model.loss(&s.tokens, s.label);
            tape.backward_reference(loss);
            opt.step(&tape, &bindings);
        }
        let t0 = Instant::now();
        let mut total = 0.0f32;
        for s in samples.iter().take(opts.steps) {
            let (tape, loss, bindings) = model.loss(&s.tokens, s.label);
            tape.backward_reference(loss);
            opt.step(&tape, &bindings);
            total += tape.value_scalar(loss);
        }
        (t0.elapsed().as_secs_f64(), total)
    };
    let mut node_capacity = 0usize;
    let mut buffer_capacity = 0usize;
    let mut run_fused = || {
        let model = Model::new(&config, ModelKind::FabNet, &mut StdRng::seed_from_u64(7));
        let mut step = TrainStep::new(FusedAdamW::new(1e-3));
        for s in samples.iter().take(4) {
            step.step(&model, &s.tokens, s.label);
        }
        let caps = (step.tape().node_capacity(), step.tape().buffer_capacity());
        let t0 = Instant::now();
        let mut total = 0.0f32;
        for s in samples.iter().take(opts.steps) {
            total += step.step(&model, &s.tokens, s.label);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            (step.tape().node_capacity(), step.tape().buffer_capacity()),
            caps,
            "tape storage must not grow across steady-state steps"
        );
        (node_capacity, buffer_capacity) = caps;
        (elapsed, total)
    };
    let mut reference_s = f64::INFINITY;
    let mut reference_loss = 0.0f32;
    let mut fused_s = f64::INFINITY;
    let mut fused_loss = 0.0f32;
    for _ in 0..PASSES {
        let (s, l) = run_reference();
        if s < reference_s {
            reference_s = s;
            reference_loss = l;
        }
        let (s, l) = run_fused();
        if s < fused_s {
            fused_s = s;
            fused_loss = l;
        }
    }
    let reference_sps = opts.steps as f64 / reference_s;
    let fused_sps = opts.steps as f64 / fused_s;
    println!("reference: {reference_sps:8.1} steps/s  ({reference_s:.3}s)");
    let speedup = fused_sps / reference_sps;
    let loss_diff = (fused_loss - reference_loss).abs() / opts.steps as f32;
    println!("fused    : {fused_sps:8.1} steps/s  ({fused_s:.3}s)");
    println!(
        "speedup  : {speedup:.2}x   mean |loss diff| {loss_diff:.3e}   tape: {node_capacity} \
         nodes, {buffer_capacity} f32 buffer capacity (flat across steps)"
    );

    let json = format!(
        "{{\n  \"pr\": 3,\n  \"smoke\": {},\n  {host},\n  \"steps\": {},\n  \
         \"worker_threads\": {},\n  \
         \"model\": {{\"kind\": \"FABNet\", \"hidden\": {}, \"layers\": {}, \"max_seq\": {}}},\n  \
         \"task\": \"{}@{}\",\n  \
         \"reference\": {{\"steps_per_s\": {:.2}, \"seconds\": {:.4}}},\n  \
         \"fused\": {{\"steps_per_s\": {:.2}, \"seconds\": {:.4}, \"tape_nodes\": {}, \
         \"tape_buffer_f32\": {}}},\n  \
         \"speedup\": {:.3},\n  \"max_grad_diff\": {:.4e},\n  \"mean_abs_loss_diff\": {:.4e},\n  \
         \"min_speedup_required\": {}\n}}\n",
        opts.smoke,
        opts.steps,
        rayon::current_num_threads(),
        config.hidden,
        config.num_layers,
        config.max_seq,
        task.name(),
        seq_len,
        reference_sps,
        reference_s,
        fused_sps,
        fused_s,
        node_capacity,
        buffer_capacity,
        speedup,
        max_grad_diff,
        loss_diff,
        opts.min_speedup,
        host = fab_bench::host_info_json(),
    );
    std::fs::write("BENCH_PR3.json", &json).expect("write BENCH_PR3.json");
    println!("wrote BENCH_PR3.json");

    if max_grad_diff > 1e-6 {
        eprintln!("FAIL: fused gradients diverged from the reference tape by {max_grad_diff}");
        std::process::exit(1);
    }
    if speedup < opts.min_speedup {
        eprintln!(
            "FAIL: training-step throughput regression: {speedup:.2}x < required {:.2}x",
            opts.min_speedup
        );
        std::process::exit(1);
    }
}
