//! PR-2 serving load test: replays synthetic LRA traffic (open-loop
//! Poisson-ish arrivals, mixed sequence lengths across Text / ListOps /
//! Retrieval) against the dynamic-batching `fab-serve` runtime and compares
//! it with the serial one-request-at-a-time `Model::predict` baseline.
//! Writes `BENCH_PR2.json` and exits non-zero when the server fails the
//! throughput or correctness gate.
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr2 -- [--smoke]
//!     [--requests N] [--min-speedup X] [--arrival-mult X]
//! ```
//!
//! `--smoke` runs a small request count for CI; `--min-speedup 1.0` makes CI
//! fail on any throughput regression vs. the serial baseline.

use fab_lra::{LraTask, TaskConfig};
use fab_nn::{Model, ModelConfig, ModelKind};
use fab_serve::{InferenceSession, PendingPrediction, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// CLI options (hand-parsed; the container has no argument-parsing crate).
struct Options {
    requests: usize,
    min_speedup: f64,
    arrival_mult: f64,
    smoke: bool,
}

impl Options {
    fn parse() -> Self {
        // The default arrival rate sits well past the server's saturation
        // point: the load test measures the batcher's sustained throughput,
        // not the generator's pacing.
        let mut opts = Self { requests: 0, min_speedup: 0.0, arrival_mult: 16.0, smoke: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse::<f64>()
                    .unwrap_or_else(|e| panic!("invalid {name}: {e}"))
            };
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--requests" => opts.requests = value("--requests") as usize,
                "--min-speedup" => opts.min_speedup = value("--min-speedup"),
                "--arrival-mult" => opts.arrival_mult = value("--arrival-mult"),
                other => panic!("unknown argument {other}"),
            }
        }
        if opts.requests == 0 {
            opts.requests = if opts.smoke { 96 } else { 480 };
        }
        opts
    }
}

/// The synthetic traffic mix: `(task, sequence length)` per stream, chosen
/// to spread requests across the 16 / 32 / 64 length buckets (power-of-two
/// lengths, as the paper's LRA configurations use).
const TRAFFIC: [(LraTask, usize); 3] =
    [(LraTask::Text, 64), (LraTask::ListOps, 32), (LraTask::Retrieval, 16)];

fn main() {
    let opts = Options::parse();
    let mut rng = StdRng::seed_from_u64(20220702);

    // A FABNet big enough that batching matters, small enough for CI.
    let vocab = TRAFFIC.iter().map(|(t, _)| t.vocab_size()).max().expect("traffic");
    let config = ModelConfig {
        hidden: 64,
        ffn_ratio: 4,
        num_layers: 2,
        num_abfly: 1,
        num_heads: 4,
        vocab_size: vocab,
        max_seq: 128,
        num_classes: 10,
    };
    let model = Model::new(&config, ModelKind::FabNet, &mut rng);

    // Interleave the three traffic streams into one arrival order.
    let requests = build_traffic(opts.requests, &mut rng);
    println!(
        "bench_pr2: {} requests ({} streams: {:?}), FABNet hidden {} x {} layers",
        requests.len(),
        TRAFFIC.len(),
        TRAFFIC.map(|(t, l)| format!("{}@{l}", t.name())),
        config.hidden,
        config.num_layers
    );

    // Warm both paths (first-call page faults, lazy allocations).
    let session = InferenceSession::new(&model);
    for tokens in requests.iter().take(3) {
        let _ = model.predict(tokens);
        let _ = session.logits(tokens);
    }

    // --- Serial baseline: one tape-based predict per request. -------------
    // Best-of-2 passes, like bench_pr1: the single shared core of this host
    // is noisy, and both phases deserve their best run.
    let mut serial_logits = Vec::new();
    let mut serial_lat_us: Vec<u64> = Vec::new();
    let mut serial_s = f64::INFINITY;
    for _ in 0..2 {
        let mut logits = Vec::with_capacity(requests.len());
        let mut lat = Vec::with_capacity(requests.len());
        let t0 = Instant::now();
        for tokens in &requests {
            let r0 = Instant::now();
            logits.push(model.predict(tokens));
            lat.push(r0.elapsed().as_micros() as u64);
        }
        let s = t0.elapsed().as_secs_f64();
        if s < serial_s {
            serial_s = s;
            serial_logits = logits;
            serial_lat_us = lat;
        }
    }
    let serial_rps = requests.len() as f64 / serial_s;
    serial_lat_us.sort_unstable();
    println!(
        "serial   : {serial_rps:8.1} req/s  p50 {}us  p99 {}us",
        exact_percentile(&serial_lat_us, 0.50),
        exact_percentile(&serial_lat_us, 0.99)
    );

    // --- Session-serial baseline: tape-free frozen forward, one at a time. -
    // Separates the serving runtime's queueing/batching overhead from the
    // model compute: `server / session_serial` is the batcher's efficiency,
    // `server / serial` its end-to-end advantage over the tape path. Since
    // PR 3 made the tape path nearly as fast as the frozen one, a
    // single-core host shows the server near breakeven — its wins (worker
    // parallelism, amortising per-request overhead) need multiple cores.
    let mut session_s = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        for tokens in &requests {
            let _ = session.logits(tokens);
        }
        session_s = session_s.min(t0.elapsed().as_secs_f64());
    }
    let session_rps = requests.len() as f64 / session_s;
    println!("session  : {session_rps:8.1} req/s  (tape-free serial floor)");

    // --- Dynamic-batching server under open-loop Poisson arrivals. --------
    // Exponential inter-arrival times at `arrival_mult` x the serial rate,
    // so the queue saturates and batching has material to work with.
    // Best-of-2 runs against a fresh server each time.
    let lambda_rps = opts.arrival_mult * serial_rps;
    let arrivals = poisson_arrivals(requests.len(), lambda_rps, &mut rng);
    let mut served: Vec<Vec<f32>> = Vec::new();
    let mut server_s = f64::INFINITY;
    let mut stats = None;
    for _ in 0..2 {
        let serve_config = ServeConfig {
            max_batch: 16,
            max_wait_us: 300,
            queue_capacity: requests.len().max(64),
            ..ServeConfig::default()
        };
        let server = Server::start(InferenceSession::new(&model), serve_config);
        let handle = server.handle();
        let t0 = Instant::now();
        let mut pending: Vec<PendingPrediction> = Vec::with_capacity(requests.len());
        for (tokens, &at) in requests.iter().zip(arrivals.iter()) {
            let mut now = t0.elapsed();
            while now < at {
                std::thread::sleep((at - now).min(Duration::from_micros(200)));
                now = t0.elapsed();
            }
            pending.push(handle.submit(tokens.clone()).expect("queue sized for the full load"));
        }
        let logits: Vec<Vec<f32>> =
            pending.into_iter().map(|p| p.wait().expect("request served").logits).collect();
        let s = t0.elapsed().as_secs_f64();
        if s < server_s {
            server_s = s;
            served = logits;
            stats = Some(server.stats());
        }
        server.shutdown();
    }
    let stats = stats.expect("at least one server run");
    let server_rps = requests.len() as f64 / server_s;
    println!(
        "server   : {server_rps:8.1} req/s  p50 {}us  p99 {}us  (occupancy {:.2}, {} workers)",
        stats.latency.p50_us, stats.latency.p99_us, stats.mean_batch_occupancy, stats.workers
    );

    // --- Correctness and throughput gates. ---------------------------------
    let max_diff = serial_logits
        .iter()
        .zip(served.iter())
        .flat_map(|(a, b)| a.iter().zip(b.iter()))
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    let speedup = server_rps / serial_rps;
    println!("speedup  : {speedup:.2}x   max |serial - served| logit diff: {max_diff:.3e}");

    let json = format!(
        "{{\n  \"pr\": 2,\n  \"smoke\": {},\n  {host},\n  \"requests\": {},\n  \
         \"worker_threads\": {},\n  \
         \"model\": {{\"kind\": \"FABNet\", \"hidden\": {}, \"layers\": {}, \"max_seq\": {}}},\n  \
         \"traffic\": {:?},\n  \"arrival_mult\": {},\n  \
         \"serial\": {{\"throughput_rps\": {:.2}, \"p50_us\": {}, \"p99_us\": {}}},\n  \
         \"session_serial\": {{\"throughput_rps\": {:.2}}},\n  \
         \"server\": {{\"throughput_rps\": {:.2}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
         \"max_batch\": 16, \"max_wait_us\": 300, \"mean_batch_occupancy\": {:.3}, \
         \"max_batch_observed\": {}, \"batches\": {}, \"workers\": {}, \"rejected\": {}}},\n  \
         \"speedup\": {:.3},\n  \"speedup_vs_session\": {:.3},\n  \
         \"max_abs_logit_diff\": {:.4e},\n  \"min_speedup_required\": {}\n}}\n",
        opts.smoke,
        requests.len(),
        rayon::current_num_threads(),
        config.hidden,
        config.num_layers,
        config.max_seq,
        TRAFFIC.map(|(t, l)| format!("{}@{l}", t.name())),
        opts.arrival_mult,
        serial_rps,
        exact_percentile(&serial_lat_us, 0.50),
        exact_percentile(&serial_lat_us, 0.99),
        session_rps,
        server_rps,
        stats.latency.p50_us,
        stats.latency.p95_us,
        stats.latency.p99_us,
        stats.mean_batch_occupancy,
        stats.max_batch_observed,
        stats.batches,
        stats.workers,
        stats.rejected,
        speedup,
        server_rps / session_rps,
        max_diff,
        opts.min_speedup,
        host = fab_bench::host_info_json(),
    );
    std::fs::write("BENCH_PR2.json", &json).expect("write BENCH_PR2.json");
    println!("wrote BENCH_PR2.json");

    if max_diff > 1e-5 {
        eprintln!("FAIL: served logits diverged from the serial baseline by {max_diff}");
        std::process::exit(1);
    }
    if speedup < opts.min_speedup {
        eprintln!(
            "FAIL: server throughput regression: {speedup:.2}x < required {:.2}x",
            opts.min_speedup
        );
        std::process::exit(1);
    }
}

/// Interleaves `n` requests round-robin across the three traffic streams,
/// each generated by the seeded LRA proxy for its task.
fn build_traffic(n: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let per_stream = n.div_ceil(TRAFFIC.len());
    let streams: Vec<Vec<Vec<usize>>> = TRAFFIC
        .iter()
        .map(|&(task, seq_len)| {
            task.generate(&TaskConfig { seq_len }, per_stream, rng)
                .into_iter()
                .map(|s| s.tokens)
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    'outer: for i in 0..per_stream {
        for stream in &streams {
            if out.len() == n {
                break 'outer;
            }
            out.push(stream[i].clone());
        }
    }
    out
}

/// Open-loop arrival offsets with exponential inter-arrival times at
/// `lambda_rps` requests/second (the seeded-rand shim stands in for a
/// Poisson process).
fn poisson_arrivals(n: usize, lambda_rps: f64, rng: &mut StdRng) -> Vec<Duration> {
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-9f32..1.0f32) as f64;
            t += -u.ln() / lambda_rps;
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// Exact percentile of a sorted latency list (nearest-rank).
fn exact_percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}
