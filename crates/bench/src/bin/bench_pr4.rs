//! PR-4 SIMD-dispatch benchmark: every kernel class ported onto the
//! `fab_tensor::simd` layer — the FMA-tiled matmul, the butterfly stage
//! forward/backward, the fastmath transcendental rows and the row-wise
//! softmax/layer-norm — measured against the scalar backend (the pre-PR
//! kernels), plus end-to-end training-step and serving-batch deltas. Writes
//! `BENCH_PR4.json` and exits non-zero when a gate fails.
//!
//! ```text
//! cargo run --release -p fab-bench --bin bench_pr4 -- [--smoke]
//!     [--min-speedup X]
//! ```
//!
//! Gates (enforced when a SIMD backend is active):
//! * every kernel agrees with the scalar oracle within 1e-5, normalised by
//!   the output magnitude;
//! * end-to-end train-step and serve throughput at or above `--min-speedup`
//!   (CI passes 1.0: SIMD must never lose to scalar end to end);
//! * at least two kernel classes (matmul / butterfly / fastmath rows) reach
//!   1.25x.
//!
//! The JSON records the host's detected CPU features and the chosen backend
//! so cross-host numbers stay interpretable.

use fab_lra::{LraTask, TaskConfig};
use fab_nn::{FusedAdamW, Model, ModelConfig, ModelKind, TrainStep};
use fab_tensor::simd::{self, Backend};
use fab_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Options {
    min_speedup: f64,
    smoke: bool,
}

impl Options {
    fn parse() -> Self {
        let mut opts = Self { min_speedup: 0.0, smoke: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--min-speedup" => {
                    opts.min_speedup = args
                        .next()
                        .unwrap_or_else(|| panic!("--min-speedup needs a value"))
                        .parse()
                        .unwrap_or_else(|e| panic!("invalid --min-speedup: {e}"));
                }
                other => panic!("unknown argument {other}"),
            }
        }
        opts
    }
}

/// One scalar-vs-SIMD measurement.
struct Row {
    name: String,
    class: &'static str,
    scalar_ms: f64,
    simd_ms: f64,
    check: f32,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_ms / self.simd_ms
    }
}

/// Interleaved best-of-N timing of `f` under `backend`, in milliseconds.
fn time_backend<O>(backend: Backend, reps: usize, mut f: impl FnMut() -> O) -> (f64, O) {
    simd::force_backend(backend);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut o = None;
        for _ in 0..reps {
            o = Some(std::hint::black_box(f()));
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3 / reps as f64);
        out = o;
    }
    simd::force_backend(simd::default_backend());
    (best, out.expect("at least one timed run"))
}

/// Max |a−b| normalised by the scalar result's magnitude — the PR-4
/// tolerance metric (`≤ 1e-5`).
fn normalized_max_diff(simd_out: &[f32], scalar_out: &[f32]) -> f32 {
    let scale = scalar_out.iter().fold(1.0f32, |m, &v| m.max(v.abs()));
    simd_out
        .iter()
        .zip(scalar_out.iter())
        .map(|(x, y)| (x - y).abs() / scale)
        .fold(0.0f32, f32::max)
}

fn random_tensor(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let volume: usize = shape.iter().product();
    Tensor::from_vec((0..volume).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), shape)
        .expect("random tensor shape")
}

fn bench_pair<O: AsRef<[f32]>>(
    name: String,
    class: &'static str,
    simd_backend: Backend,
    reps: usize,
    mut f: impl FnMut() -> O,
) -> Row {
    let (scalar_ms, scalar_out) = time_backend(Backend::Scalar, reps, &mut f);
    let (simd_ms, simd_out) = time_backend(simd_backend, reps, &mut f);
    let check = normalized_max_diff(simd_out.as_ref(), scalar_out.as_ref());
    Row { name, class, scalar_ms, simd_ms, check }
}

fn main() {
    let opts = Options::parse();
    let simd_backend = simd::default_backend();
    let features = simd::cpu_features();
    println!(
        "bench_pr4: SIMD backend `{}` vs scalar oracle  (cpu: {features})",
        simd_backend.name()
    );
    if !simd_backend.is_simd() {
        println!("no SIMD backend available on this host; recording a no-op run");
    }
    let mut rng = StdRng::seed_from_u64(20220704);
    let reps = |full: usize| if opts.smoke { (full / 4).max(1) } else { full };

    let mut rows: Vec<Row> = Vec::new();

    // --- matmul microkernel, 256..1024. -----------------------------------
    for n in [256usize, 512, 1024] {
        let a = random_tensor(&mut rng, &[n, n]);
        let b = random_tensor(&mut rng, &[n, n]);
        let mut out = Tensor::zeros(&[n, n]);
        let r = reps(if n >= 1024 { 2 } else { 8 });
        rows.push(bench_pair(format!("matmul_{n}x{n}"), "matmul", simd_backend, r, || {
            a.matmul_into(&b, &mut out);
            out.as_slice().to_vec()
        }));
    }

    // --- butterfly stage forward/backward rows. ----------------------------
    {
        let (rows_n, n) = (256usize, 512usize);
        let bfly = fab_butterfly::ButterflyMatrix::random(n, &mut rng).expect("butterfly size");
        let x = random_tensor(&mut rng, &[rows_n, n]);
        let g = random_tensor(&mut rng, &[rows_n, n]);
        rows.push(bench_pair(
            format!("butterfly_forward_rows_{rows_n}x{n}"),
            "butterfly",
            simd_backend,
            reps(8),
            || bfly.forward_rows(&x).into_vec(),
        ));
        rows.push(bench_pair(
            format!("butterfly_backward_rows_{rows_n}x{n}"),
            "butterfly",
            simd_backend,
            reps(4),
            || {
                let (gx, gw) = bfly.backward_rows(&x, &g);
                let mut v = gx.into_vec();
                v.extend_from_slice(gw.as_slice());
                v
            },
        ));
    }

    // --- fastmath transcendental rows. -------------------------------------
    {
        let n = 16384usize;
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
        let mut out = vec![0.0f32; n];
        for (name, f) in [
            ("exp", fab_tensor::fastmath::exp_fast_slice as fn(&[f32], &mut [f32])),
            ("tanh", fab_tensor::fastmath::tanh_fast_slice),
            ("gelu", fab_tensor::fastmath::gelu_fast_slice),
        ] {
            rows.push(bench_pair(
                format!("fastmath_{name}_{n}"),
                "fastmath",
                simd_backend,
                reps(64),
                || {
                    f(&x, &mut out);
                    out.clone()
                },
            ));
        }
    }

    // --- row-wise softmax / layer norm. -------------------------------------
    {
        let x = random_tensor(&mut rng, &[256, 256]);
        let mut out = Tensor::zeros(&[256, 256]);
        rows.push(bench_pair(
            "softmax_rows_256x256".into(),
            "rowwise",
            simd_backend,
            reps(32),
            || {
                x.softmax_rows_into(&mut out);
                out.as_slice().to_vec()
            },
        ));
        let gamma = random_tensor(&mut rng, &[256]);
        let beta = random_tensor(&mut rng, &[256]);
        rows.push(bench_pair(
            "layer_norm_rows_256x256".into(),
            "rowwise",
            simd_backend,
            reps(32),
            || {
                x.layer_norm_rows_into(&gamma, &beta, 1e-5, &mut out);
                out.as_slice().to_vec()
            },
        ));
    }

    // --- end-to-end train step (LRA Text @ 64, as in bench_pr3). -----------
    let train = {
        let task = LraTask::Text;
        let config = ModelConfig {
            hidden: 64,
            ffn_ratio: 4,
            num_layers: 2,
            num_abfly: 1,
            num_heads: 4,
            vocab_size: task.vocab_size(),
            max_seq: 128,
            num_classes: task.num_classes(),
        };
        let steps = if opts.smoke { 12 } else { 48 };
        let samples = task.generate(&TaskConfig { seq_len: 64 }, steps, &mut rng);
        bench_pair("train_step_text64".into(), "train", simd_backend, 1, || {
            let model = Model::new(&config, ModelKind::FabNet, &mut StdRng::seed_from_u64(7));
            let mut step = TrainStep::new(FusedAdamW::new(1e-3));
            let mut losses = Vec::with_capacity(steps);
            for s in &samples {
                losses.push(step.step(&model, &s.tokens, s.label));
            }
            losses
        })
    };

    // --- end-to-end serve batch (frozen batched forward). -------------------
    let serve = {
        let task = LraTask::Text;
        let config = ModelConfig {
            hidden: 64,
            ffn_ratio: 4,
            num_layers: 2,
            num_abfly: 1,
            num_heads: 4,
            vocab_size: task.vocab_size(),
            max_seq: 128,
            num_classes: task.num_classes(),
        };
        let model = Model::new(&config, ModelKind::FabNet, &mut StdRng::seed_from_u64(11));
        let frozen = model.freeze().with_fast_math(true);
        let samples = task.generate(&TaskConfig { seq_len: 64 }, 16, &mut rng);
        let batch: Vec<&[usize]> = samples.iter().map(|s| s.tokens.as_slice()).collect();
        bench_pair("serve_logits_batch16_text64".into(), "serve", simd_backend, reps(8), || {
            frozen.logits_batch(&batch, 64).into_iter().flatten().collect::<Vec<f32>>()
        })
    };
    rows.push(train);
    rows.push(serve);

    // --- report. ------------------------------------------------------------
    println!(
        "\n{:<34} {:>12} {:>12} {:>9}  norm|Δ|",
        "kernel", "scalar(ms)", "simd(ms)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<34} {:>12.3} {:>12.3} {:>8.2}x  {:.2e}",
            r.name,
            r.scalar_ms,
            r.simd_ms,
            r.speedup(),
            r.check
        );
    }
    let class_best = |class: &str| {
        rows.iter().filter(|r| r.class == class).map(Row::speedup).fold(0.0f64, f64::max)
    };
    let classes = [
        ("matmul", class_best("matmul")),
        ("butterfly", class_best("butterfly")),
        ("fastmath", class_best("fastmath")),
    ];
    let classes_above = classes.iter().filter(|(_, s)| *s >= 1.25).count();
    let train_speedup = rows.iter().find(|r| r.class == "train").expect("train row").speedup();
    let serve_speedup = rows.iter().find(|r| r.class == "serve").expect("serve row").speedup();
    let max_check = rows.iter().map(|r| r.check).fold(0.0f32, f32::max);
    println!(
        "\nclasses ≥ 1.25x: {classes_above}/3   train {train_speedup:.2}x   serve \
         {serve_speedup:.2}x   max norm|Δ| {max_check:.2e}"
    );

    let mut json = String::from("{\n  \"pr\": 4,\n");
    json.push_str(&format!("  \"smoke\": {},\n", opts.smoke));
    json.push_str(&format!("  {},\n", fab_bench::host_info_json()));
    json.push_str(&format!("  \"worker_threads\": {},\n", rayon::current_num_threads()));
    json.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"class\": \"{}\", \"scalar_ms\": {:.4}, \"simd_ms\": \
             {:.4}, \"speedup\": {:.3}, \"normalized_max_diff\": {:.3e}}}{}\n",
            r.name,
            r.class,
            r.scalar_ms,
            r.simd_ms,
            r.speedup(),
            r.check,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"class_speedups\": {{\"matmul\": {:.3}, \"butterfly\": {:.3}, \"fastmath\": {:.3}}},\n",
        classes[0].1, classes[1].1, classes[2].1
    ));
    json.push_str(&format!(
        "  \"train_step_speedup\": {train_speedup:.3},\n  \"serve_speedup\": \
         {serve_speedup:.3},\n  \"max_normalized_diff\": {max_check:.3e},\n  \
         \"min_speedup_required\": {}\n}}\n",
        opts.min_speedup
    ));
    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    println!("wrote BENCH_PR4.json");

    if !simd_backend.is_simd() {
        println!("scalar-only host: speedup gates skipped");
        return;
    }
    if max_check > 1e-5 {
        eprintln!("FAIL: SIMD kernels drifted {max_check:.3e} from the scalar oracle (> 1e-5)");
        std::process::exit(1);
    }
    if train_speedup < opts.min_speedup || serve_speedup < opts.min_speedup {
        eprintln!(
            "FAIL: end-to-end regression: train {train_speedup:.2}x / serve {serve_speedup:.2}x \
             < required {:.2}x",
            opts.min_speedup
        );
        std::process::exit(1);
    }
    if opts.min_speedup > 0.0 && classes_above < 2 {
        eprintln!(
            "FAIL: only {classes_above}/3 kernel classes reached 1.25x (matmul {:.2}x, \
             butterfly {:.2}x, fastmath {:.2}x)",
            classes[0].1, classes[1].1, classes[2].1
        );
        std::process::exit(1);
    }
}
