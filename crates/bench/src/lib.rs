//! # fab-bench
//!
//! The reproduction harness for every quantitative table and figure in the
//! paper's evaluation (Section VI). Each `fig_*` / `table_*` function
//! regenerates the corresponding result as formatted text rows (paper value
//! vs. reproduced value where applicable); the `figures` binary prints them
//! and the Criterion benches under `benches/` measure the underlying kernels
//! and simulations.

#![warn(missing_docs)]

use fabnet::baselines::{latency_breakdown, sota};
use fabnet::codesign::run_codesign;
use fabnet::nn::flops;
use fabnet::prelude::*;

/// JSON fragment (`"host": {...}`) recording the architecture, the detected
/// CPU features and the chosen `fab_tensor::simd` backend, embedded in every
/// bench JSON so cross-host numbers stay interpretable.
pub fn host_info_json() -> String {
    format!(
        "\"host\": {{\"arch\": \"{}\", \"cpu_features\": \"{}\", \"simd_backend\": \"{}\"}}",
        std::env::consts::ARCH,
        fab_tensor::simd::cpu_features(),
        fab_tensor::simd::backend().name()
    )
}

/// Fig. 1: FLOPs percentage of attention vs. linear layers across sequence
/// lengths for BERT-Base/Large-shaped Transformers.
pub fn fig1_flops_percentage() -> Vec<String> {
    let mut rows =
        vec!["Fig.1  FLOPs share of attention vs linear layers (vanilla Transformer)".to_string()];
    for (name, config) in
        [("BERT-Base", ModelConfig::bert_base()), ("BERT-Large", ModelConfig::bert_large())]
    {
        for seq in [128usize, 256, 512, 1024, 2048, 4096] {
            let b = flops::flops_breakdown(&config, ModelKind::Transformer, seq);
            rows.push(format!(
                "  {name:<10} seq {seq:>4}: attention {:5.1}%  linear {:5.1}%",
                100.0 * b.attention_fraction(),
                100.0 * b.linear_fraction()
            ));
        }
    }
    rows
}

/// Fig. 3: execution-time breakdown of BERT-Large on the V100 GPU and Xeon
/// CPU roofline models.
pub fn fig3_latency_breakdown() -> Vec<String> {
    let mut rows =
        vec!["Fig.3  Execution-time breakdown of BERT-Large (attention / linear / other)"
            .to_string()];
    let config = ModelConfig::bert_large();
    for kind in [DeviceKind::V100, DeviceKind::XeonGold6154] {
        let device = DeviceModel::new(kind);
        for seq in [256usize, 1024, 2048] {
            let b = latency_breakdown(&device, &config, seq);
            rows.push(format!(
                "  {:<22} seq {seq:>4}: attention {:5.1}%  linear {:5.1}%  other {:5.1}%",
                device.name,
                b.attention_pct(),
                b.linear_pct(),
                100.0 - b.attention_pct() - b.linear_pct()
            ));
        }
    }
    rows.push(
        "  paper: linear dominates (68-79%) at seq 256; attention dominates at seq 2048"
            .to_string(),
    );
    rows
}

/// Fig. 16 / Table III at proxy scale: accuracy of the three architectures on
/// the LRA-proxy tasks, via small-scale training.
///
/// `quick` shrinks the dataset and epochs so the whole sweep finishes in
/// seconds; the full setting takes a few minutes on a laptop CPU.
pub fn table3_accuracy(quick: bool) -> Vec<String> {
    let mut rows = vec![format!(
        "Table III / Fig.16  LRA-proxy accuracy (small-scale training, quick={quick})"
    )];
    let (train_n, test_n, epochs, seq) = if quick { (30, 20, 3, 32) } else { (120, 60, 6, 64) };
    let paper: &[(&str, f64, f64, f64)] = &[
        ("ListOps", 0.373, 0.365, 0.374),
        ("Text", 0.637, 0.630, 0.626),
        ("Retrieval", 0.783, 0.779, 0.801),
        ("Image", 0.379, 0.288, 0.398),
        ("Pathfinder", 0.709, 0.660, 0.679),
    ];
    for task in LraTask::ALL {
        let config = ModelConfig {
            hidden: 32,
            ffn_ratio: 2,
            num_layers: 2,
            num_abfly: 0,
            num_heads: 2,
            vocab_size: task.vocab_size(),
            max_seq: seq,
            num_classes: task.num_classes(),
        };
        let pipeline = TrainingPipeline::new(task, seq, 17)
            .with_examples(train_n, test_n)
            .with_epochs(epochs)
            .with_learning_rate(3e-3);
        let mut line = format!("  {:<11}", task.name());
        for kind in [ModelKind::Transformer, ModelKind::FNet, ModelKind::FabNet] {
            let trained = pipeline.run(&config, kind);
            line.push_str(&format!(" {}={:.2}", kind.name(), trained.report.test_accuracy));
        }
        let p = paper.iter().find(|(name, ..)| *name == task.name()).expect("paper row");
        line.push_str(&format!(
            "   (paper: Transformer={:.3} FNet={:.3} FABNet={:.3})",
            p.1, p.2, p.3
        ));
        rows.push(line);
    }
    rows
}

/// Fig. 17: FLOP and model-size reduction of FABNet over the vanilla
/// Transformer and FNet on each LRA task.
pub fn fig17_compression() -> Vec<String> {
    let mut rows =
        vec!["Fig.17  Reduction in FLOPs and model size of FABNet (paper: 10-66x / 2-22x over Transformer)".to_string()];
    let fabnet = ModelConfig::fabnet_base();
    let transformer = ModelConfig::bert_base();
    let fnet = ModelConfig::fabnet_base();
    for task in LraTask::ALL {
        let seq = task.paper_seq_len();
        rows.push(format!(
            "  {:<11} (seq {:>4}): FLOPs {:5.1}x over Transformer, {:4.1}x over FNet; params {:5.1}x / {:4.1}x",
            task.name(),
            seq,
            flops::flops_reduction(&fabnet, &transformer, ModelKind::Transformer, seq),
            flops::flops_reduction(&fabnet, &fnet, ModelKind::FNet, seq),
            flops::param_reduction(&fabnet, &transformer, ModelKind::Transformer),
            flops::param_reduction(&fabnet, &fnet, ModelKind::FNet),
        ));
    }
    rows
}

/// Fig. 18: the co-design design-space exploration on LRA-Text.
pub fn fig18_codesign() -> Vec<String> {
    let space = DesignSpace::lra_vcu128();
    let estimator = HeuristicAccuracy::lra_text();
    let options = CodesignOptions { seq_len: 1024, max_accuracy_loss: 0.01, num_threads: 2 };
    let result = run_codesign(&space, &estimator, &options);
    let mut rows = vec![format!(
        "Fig.18  Co-design DSE on LRA-Text: {} feasible points ({} infeasible)",
        result.points.len(),
        result.infeasible
    )];
    for p in result.pareto_front() {
        rows.push(format!(
            "  pareto: Dhid={:4} Rffn={} Ntotal={} NABfly={} Pbe={:3} Pqk={:3} Psv={:3}  acc={:.3} lat={:9.3}ms",
            p.point.model.hidden,
            p.point.model.ffn_ratio,
            p.point.model.num_layers,
            p.point.model.num_abfly,
            p.point.hardware.num_be,
            p.point.hardware.pqk,
            p.point.hardware.psv,
            p.accuracy,
            p.latency_ms
        ));
    }
    if let Some(chosen) = result.chosen_point() {
        rows.push(format!(
            "  chosen: Pbe={} Pbu={} Pqk={} Psv={}  lat={:.3}ms  (paper selects <64,4,0,0>)",
            chosen.point.hardware.num_be,
            chosen.point.hardware.num_bu,
            chosen.point.hardware.pqk,
            chosen.point.hardware.psv,
            chosen.latency_ms
        ));
    }
    if let Some(speedup) = result.max_speedup_in_accuracy_band(0.02) {
        rows.push(format!(
            "  up to {speedup:.0}x faster than same-accuracy designs (paper: up to 130x)"
        ));
    }
    rows
}

/// Fig. 19: speedup breakdown of algorithm (FABNet vs BERT on the MAC
/// baseline) and hardware (butterfly accelerator vs MAC baseline).
pub fn fig19_speedup_breakdown() -> Vec<String> {
    let mut rows = vec![
        "Fig.19  Speedup breakdown (paper: algorithm 1.6-2.3x, hardware 19.5-53.3x, combined 30.8-87.3x)"
            .to_string(),
    ];
    let baseline = MacBaseline::vcu128_2048();
    let butterfly = Simulator::new(AcceleratorConfig::vcu128_be120());
    for (name, fab, bert) in [
        ("Base", ModelConfig::fabnet_base(), ModelConfig::bert_base()),
        ("Large", ModelConfig::fabnet_large(), ModelConfig::bert_large()),
    ] {
        for seq in [128usize, 256, 512, 1024] {
            let bert_sched = LayerSchedule::from_model(&bert, ModelKind::Transformer, seq);
            let fab_sched = LayerSchedule::from_model(&fab, ModelKind::FabNet, seq);
            let t_bert = baseline.simulate(&bert_sched).total_seconds();
            let t_fab_base = baseline.simulate(&fab_sched).total_seconds();
            let t_fab_bfly = butterfly.simulate(&fab_sched).total_seconds();
            rows.push(format!(
                "  {name:<5} seq {seq:>4}: algorithm {:4.1}x  hardware {:5.1}x  combined {:6.1}x",
                t_bert / t_fab_base,
                t_fab_base / t_fab_bfly,
                t_bert / t_fab_bfly
            ));
        }
    }
    rows
}

/// Fig. 20: speedup and energy efficiency against GPUs (server) and the edge
/// GPU/CPU (edge).
pub fn fig20_device_comparison() -> Vec<String> {
    let mut rows = vec![
        "Fig.20  Speedup / energy-efficiency vs CPU & GPU (paper: up to 8-9x vs V100/TITAN Xp, 3.5-8x vs Jetson, 36-342x vs RPi4)"
            .to_string(),
    ];
    let server = Simulator::new(AcceleratorConfig::vcu128_be120());
    let server_power = fabnet::accel::power::estimate(server.config()).total();
    let edge = Simulator::new(AcceleratorConfig::zynq7045_edge());
    let edge_power = fabnet::accel::power::estimate(edge.config()).total();
    for (name, config) in
        [("Base", ModelConfig::fabnet_base()), ("Large", ModelConfig::fabnet_large())]
    {
        for seq in [128usize, 256, 512, 1024] {
            let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, seq);
            let f_server = server.simulate(&schedule);
            let f_edge = edge.simulate(&schedule);
            let mut line = format!("  {name:<5} seq {seq:>4}:");
            for kind in [DeviceKind::V100, DeviceKind::TitanXp] {
                let d = DeviceModel::new(kind);
                let lat = d.simulate(&schedule, 2);
                let eff = (f_server.achieved_gops() / server_power)
                    / d.gops_per_watt(schedule.total_flops(), lat);
                line.push_str(&format!(
                    " vs {:<10} {:4.1}x/{:4.1}xE",
                    format!("{kind:?}"),
                    lat / f_server.total_seconds(),
                    eff
                ));
            }
            for kind in [DeviceKind::JetsonNano, DeviceKind::RaspberryPi4] {
                let d = DeviceModel::new(kind);
                let lat = d.simulate(&schedule, 2);
                let eff = (f_edge.achieved_gops() / edge_power)
                    / d.gops_per_watt(schedule.total_flops(), lat);
                line.push_str(&format!(
                    " vs {:<12} {:5.1}x/{:5.1}xE",
                    format!("{kind:?}"),
                    lat / f_edge.total_seconds(),
                    eff
                ));
            }
            rows.push(line);
        }
    }
    rows
}

/// Fig. 21: latency vs. off-chip bandwidth for different numbers of BEs.
pub fn fig21_bandwidth_sweep() -> Vec<String> {
    let mut rows = vec![
        "Fig.21  Latency vs off-chip bandwidth, FABNet-Large (paper: 16 BEs saturate at 50 GB/s, 128 BEs at 100 GB/s)"
            .to_string(),
    ];
    let model = ModelConfig::fabnet_large();
    for seq in [128usize, 1024, 4096] {
        rows.push(format!("  sequence length {seq}:"));
        let schedule = LayerSchedule::from_model(&model, ModelKind::FabNet, seq);
        for bes in [16usize, 32, 64, 96, 128] {
            let mut line = format!("    {bes:>3} BEs:");
            for bw in [6.0f64, 12.0, 25.0, 50.0, 100.0, 200.0] {
                let hw = AcceleratorConfig::vcu128_be120().with_bes(bes).with_bandwidth(bw);
                let report = Simulator::new(hw).simulate(&schedule);
                line.push_str(&format!(" {:9.2}", report.total_ms()));
            }
            line.push_str("  ms @ 6/12/25/50/100/200 GB/s");
            rows.push(line);
        }
    }
    rows
}

/// Table V: comparison with the published SOTA attention accelerators under
/// the 128-multiplier / 1 GHz normalisation.
pub fn table5_sota() -> Vec<String> {
    let be40 = Simulator::new(AcceleratorConfig::vcu128_be40());
    // One-layer workload on the LRA-Image sequence length, with the co-designed
    // FABNet configuration for that task.
    let model = ModelConfig {
        hidden: 64,
        ffn_ratio: 4,
        num_layers: 1,
        num_abfly: 0,
        num_heads: 1,
        vocab_size: 256,
        max_seq: 1024,
        num_classes: 10,
    };
    let schedule = LayerSchedule::from_model(&model, ModelKind::FabNet, 1024);
    let ours = be40.simulate(&schedule);
    let power = fabnet::accel::power::estimate(be40.config()).total();
    let mut rows = vec![format!(
        "Table V  SOTA comparison (ours reproduced: {:.2} ms, {:.2} W; paper: {:.1} ms, {:.2} W)",
        ours.total_ms(),
        power,
        sota::paper_this_work().latency_ms,
        sota::paper_this_work().power_w
    )];
    for row in sota::comparison_table(ours.total_ms(), power) {
        rows.push(format!(
            "  {:<28} {:7.2} ms  {:8.2} pred/s  {:6.2} W  {:7.2} pred/J  speedup {:6.1}x",
            row.name,
            row.latency_ms,
            row.throughput,
            row.power_w,
            row.energy_eff,
            row.speedup_of_this_work
        ));
    }
    rows
}

/// Table VI: power breakdown of the BE-40 and BE-120 designs.
pub fn table6_power() -> Vec<String> {
    let mut rows =
        vec!["Table VI  Power breakdown on VCU128 (paper values in parentheses)".to_string()];
    let paper = [
        ("BE-40", AcceleratorConfig::vcu128_be40(), [2.668, 2.381, 0.338, 5.325, 3.368]),
        ("BE-120", AcceleratorConfig::vcu128_be120(), [6.882, 7.732, 1.437, 6.142, 3.665]),
    ];
    for (name, config, expected) in paper {
        let p = fabnet::accel::power::estimate(&config);
        rows.push(format!(
            "  {name:<7} clocking {:.3} ({:.3})  logic&signal {:.3} ({:.3})  DSP {:.3} ({:.3})  memory {:.3} ({:.3})  static {:.3} ({:.3})  total {:.2} W",
            p.clocking, expected[0], p.logic_signal, expected[1], p.dsp, expected[2], p.memory, expected[3], p.static_power, expected[4], p.total()
        ));
    }
    rows
}

/// Table VII: resource usage of the BE-40 and BE-120 designs.
pub fn table7_resources() -> Vec<String> {
    let mut rows =
        vec!["Table VII  Resource usage on VCU128 (paper values in parentheses)".to_string()];
    let paper = [
        ("BE-40", AcceleratorConfig::vcu128_be40(), [358_609u64, 536_810, 640, 338]),
        ("BE-120", AcceleratorConfig::vcu128_be120(), [1_034_610, 1_648_695, 2_880, 978]),
    ];
    for (name, config, expected) in paper {
        let u = fabnet::accel::resources::estimate(&config);
        rows.push(format!(
            "  {name:<7} LUTs {:>9} ({:>9})  registers {:>9} ({:>9})  DSPs {:>5} ({:>5})  BRAMs {:>4} ({:>4})  HBM {}",
            u.luts, expected[0], u.registers, expected[1], u.dsps, expected[2], u.brams, expected[3], u.hbm_stacks
        ));
    }
    rows
}

/// Fig. 4 / Tables I-II: the sparsity-pattern taxonomy, rendered as rows.
pub fn fig4_sparsity_taxonomy() -> Vec<String> {
    use fabnet::butterfly::sparsity::{variant_catalogue, SparsityPattern};
    let mut rows = vec!["Fig.4 / Table II  Sparsity-pattern taxonomy".to_string()];
    for p in SparsityPattern::ALL {
        rows.push(format!(
            "  {:<14} access {:?}, hardware-efficient: {}, information: {:?}, mask density(n=64): {:.3}",
            format!("{p:?}"),
            p.data_access(),
            p.hardware_efficient(),
            p.info_range(),
            p.mask_density(64, 0.25)
        ));
    }
    for v in variant_catalogue() {
        rows.push(format!(
            "  {:<22} patterns {:?} attention={} ffn={} unified={} codesign={}",
            v.name,
            v.patterns,
            v.sparsifies_attention,
            v.sparsifies_ffn,
            v.unified_sparsity,
            v.hardware_codesign
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_training_figures_produce_rows() {
        assert!(fig1_flops_percentage().len() > 10);
        assert!(fig3_latency_breakdown().len() >= 7);
        assert!(fig17_compression().len() == 6);
        assert!(fig19_speedup_breakdown().len() == 9);
        assert!(fig21_bandwidth_sweep().len() > 15);
        assert!(table5_sota().len() == 9);
        assert!(table6_power().len() == 3);
        assert!(table7_resources().len() == 3);
        assert!(fig4_sparsity_taxonomy().len() > 10);
    }

    #[test]
    fn fig19_reports_speedups_greater_than_one() {
        for row in fig19_speedup_breakdown().iter().skip(1) {
            // Every speedup column should be > 1x.
            assert!(!row.contains(" 0."), "unexpected sub-1x speedup in: {row}");
        }
    }
}
