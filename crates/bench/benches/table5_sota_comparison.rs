//! Table V: comparison with the published SOTA attention accelerators under
//! the 128-multiplier / 1 GHz normalisation. Prints the reproduced table,
//! then benchmarks the normalised one-layer simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fab_accel::workload::LayerSchedule;
use fab_accel::{AcceleratorConfig, Simulator};
use fab_nn::{ModelConfig, ModelKind};

fn bench(c: &mut Criterion) {
    for row in fab_bench::table5_sota() {
        println!("{row}");
    }
    for row in fab_bench::table6_power() {
        println!("{row}");
    }
    for row in fab_bench::table7_resources() {
        println!("{row}");
    }
    let model = ModelConfig {
        hidden: 64,
        ffn_ratio: 4,
        num_layers: 1,
        num_abfly: 0,
        num_heads: 1,
        vocab_size: 256,
        max_seq: 1024,
        num_classes: 10,
    };
    let schedule = LayerSchedule::from_model(&model, ModelKind::FabNet, 1024);
    let sim = Simulator::new(AcceleratorConfig::vcu128_be40());
    let mut group = c.benchmark_group("table5_sota_comparison");
    group.sample_size(20);
    group.bench_function("be40_one_layer_lra_image", |b| {
        b.iter(|| sim.simulate(black_box(&schedule)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
