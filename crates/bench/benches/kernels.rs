//! Micro-benchmarks of the core computational kernels: FFT, butterfly linear
//! transform (factorised vs dense), Fourier token mixing, and the butterfly
//! memory-access analysis. These quantify the O(n log n) vs O(n^2) gap that
//! underlies the paper's algorithmic savings.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fab_accel::memory::{Layout, TransformAccessReport};
use fab_butterfly::fft::fft_real;
use fab_butterfly::{fourier_mix, ButterflyMatrix};
use fab_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);

    // FFT of a 1024-point signal (the padded hidden size of FABNet-Base).
    let signal: Vec<f32> = (0..1024).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    group.bench_function("fft_1024", |b| b.iter(|| fft_real(black_box(&signal))));

    // Butterfly linear transform vs dense mat-vec at n = 1024.
    let n = 1024;
    let butterfly = ButterflyMatrix::random(n, &mut rng).unwrap();
    let dense = butterfly.to_dense();
    let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let x_row = Tensor::from_vec(x.clone(), &[1, n]).unwrap();
    group.bench_function("butterfly_forward_1024", |b| b.iter(|| butterfly.forward(black_box(&x))));
    group.bench_function("dense_matvec_1024", |b| {
        b.iter(|| black_box(&x_row).matmul(black_box(&dense)))
    });

    // FNet-style Fourier mixing of a [256, 256] tile.
    let tile = Tensor::from_vec(
        (0..256 * 256).map(|i| ((i * 37 % 101) as f32) * 0.01).collect(),
        &[256, 256],
    )
    .unwrap();
    group.bench_function("fourier_mix_256x256", |b| b.iter(|| fourier_mix(black_box(&tile))));

    // Bank-conflict analysis of the butterfly memory layout.
    group.bench_function("memory_analysis_1024x16banks", |b| {
        b.iter(|| TransformAccessReport::analyze(Layout::Butterfly, 1024, 16))
    });

    group.finish();

    bench_matmul_serial_vs_parallel(c, &mut rng);
    bench_butterfly_rows_serial_vs_parallel(c, &mut rng);
    bench_dense_vs_butterfly(c, &mut rng);
    bench_backward_kernels(c, &mut rng);
    bench_train_step(c, &mut rng);
    bench_simd_kernels(c, &mut rng);
}

/// PR-4: the dispatched SIMD kernels against the scalar backend — fastmath
/// exp/tanh/gelu slices and softmax/layer-norm rows, from cache-resident to
/// streaming sizes. Toggles the process-global backend per measurement
/// (criterion runs benches sequentially, so this is race-free).
fn bench_simd_kernels(c: &mut Criterion, rng: &mut StdRng) {
    use fab_tensor::simd::{self, Backend};
    let mut group = c.benchmark_group("simd_vs_scalar");
    group.sample_size(20);
    let native = simd::default_backend();
    let mut backends = vec![("scalar", Backend::Scalar)];
    if native.is_simd() {
        backends.push((native.name(), native));
    }
    for n in [64usize, 256, 1024, 4096] {
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
        let mut out = vec![0.0f32; n];
        for &(bname, backend) in &backends {
            for (kname, f) in [
                ("exp", fab_tensor::fastmath::exp_fast_slice as fn(&[f32], &mut [f32])),
                ("tanh", fab_tensor::fastmath::tanh_fast_slice),
                ("gelu", fab_tensor::fastmath::gelu_fast_slice),
            ] {
                simd::force_backend(backend);
                group.bench_function(format!("fastmath_{kname}_{n}_{bname}"), |b| {
                    b.iter(|| f(black_box(&x), black_box(&mut out)))
                });
            }
        }
    }
    for n in [64usize, 256, 1024, 4096] {
        let rows = (1 << 18) / n; // constant element count across sizes
        let t = random_tensor(rng, &[rows, n]);
        let gamma = random_tensor(rng, &[n]);
        let beta = random_tensor(rng, &[n]);
        let mut out = Tensor::zeros(&[rows, n]);
        for &(bname, backend) in &backends {
            simd::force_backend(backend);
            group.bench_function(format!("softmax_rows_{rows}x{n}_{bname}"), |b| {
                b.iter(|| black_box(&t).softmax_rows_into(black_box(&mut out)))
            });
            group.bench_function(format!("layer_norm_rows_{rows}x{n}_{bname}"), |b| {
                b.iter(|| {
                    black_box(&t).layer_norm_rows_into(
                        black_box(&gamma),
                        black_box(&beta),
                        1e-5,
                        black_box(&mut out),
                    )
                })
            });
        }
    }
    simd::force_backend(simd::default_backend());
    group.finish();
}

/// PR-3: the backward kernels of the training path — the specialized
/// small-half butterfly backward against the seed's generic loop, and the
/// dense matmul-gradient pair at the same sizes for contrast — from
/// cache-resident to memory-bound transforms.
fn bench_backward_kernels(c: &mut Criterion, rng: &mut StdRng) {
    let mut group = c.benchmark_group("backward_kernels");
    group.sample_size(10);
    let rows = 128usize;
    for n in [64usize, 256, 1024] {
        let bfly = ButterflyMatrix::random(n, rng).unwrap();
        let x = random_tensor(rng, &[rows, n]);
        let g = random_tensor(rng, &[rows, n]);
        group.bench_function(format!("butterfly_backward_reference_{rows}x{n}"), |bch| {
            bch.iter(|| bfly.backward_rows_reference(black_box(&x), black_box(&g)))
        });
        group.bench_function(format!("butterfly_backward_specialized_{rows}x{n}"), |bch| {
            bch.iter(|| bfly.backward_rows(black_box(&x), black_box(&g)))
        });
        // Dense gradients (dX = g Wᵀ, dW = xᵀ g) at the same size.
        let w = random_tensor(rng, &[n, n]);
        group.bench_function(format!("dense_backward_{rows}x{n}"), |bch| {
            bch.iter(|| {
                let dx = black_box(&g).matmul(&black_box(&w).transpose());
                let dw = black_box(&x).transpose().matmul(black_box(&g));
                (dx, dw)
            })
        });
    }
    group.finish();
}

/// PR-3: full training steps — reused arena tape + fused AdamW against the
/// seed loop (fresh tape, reference backward, reference Adam) — for a dense
/// Transformer and a butterfly FABNet.
fn bench_train_step(c: &mut Criterion, rng: &mut StdRng) {
    use fab_nn::{Adam, FusedAdamW, Model, ModelConfig, ModelKind, Optimizer, TrainStep};
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    let config = ModelConfig {
        hidden: 64,
        ffn_ratio: 4,
        num_layers: 2,
        num_abfly: 1,
        num_heads: 4,
        vocab_size: 64,
        max_seq: 64,
        num_classes: 10,
    };
    let tokens: Vec<usize> = (0..64).map(|i| (i * 7 + 1) % 64).collect();
    for kind in [ModelKind::Transformer, ModelKind::FabNet] {
        let model = Model::new(&config, kind, rng);
        let mut reference_opt = Adam::new(1e-3);
        group.bench_function(format!("{}_reference_step", kind.name()), |bch| {
            bch.iter(|| {
                let (tape, loss, bindings) = model.loss(black_box(&tokens), 3);
                tape.backward_reference(loss);
                reference_opt.step(&tape, &bindings);
                tape.value_scalar(loss)
            })
        });
        let mut step = TrainStep::new(FusedAdamW::new(1e-3));
        group.bench_function(format!("{}_fused_step", kind.name()), |bch| {
            bch.iter(|| step.step(&model, black_box(&tokens), 3))
        });
    }
    group.finish();
}

/// PR-1: the blocked+parallel matmul against the naive serial seed kernel,
/// across sizes from cache-resident to memory-bound.
fn bench_matmul_serial_vs_parallel(c: &mut Criterion, rng: &mut StdRng) {
    let mut group = c.benchmark_group("matmul_serial_vs_parallel");
    group.sample_size(10);
    for n in [64usize, 128, 256, 512, 1024] {
        let a = random_tensor(rng, &[n, n]);
        let b = random_tensor(rng, &[n, n]);
        group.bench_function(format!("reference_{n}x{n}"), |bch| {
            bch.iter(|| black_box(&a).matmul_reference(black_box(&b)))
        });
        group.bench_function(format!("blocked_parallel_{n}x{n}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    group.finish();
}

/// PR-1: row-batched butterfly forward/backward against the per-row path.
fn bench_butterfly_rows_serial_vs_parallel(c: &mut Criterion, rng: &mut StdRng) {
    let mut group = c.benchmark_group("butterfly_rows");
    group.sample_size(10);
    for (rows, n) in [(64usize, 256usize), (256, 512), (256, 1024)] {
        let bfly = ButterflyMatrix::random(n, rng).unwrap();
        let x = random_tensor(rng, &[rows, n]);
        let g = random_tensor(rng, &[rows, n]);
        group.bench_function(format!("forward_per_row_{rows}x{n}"), |bch| {
            bch.iter(|| {
                // The seed's per-row path: gather, transform, scatter.
                let mut out = Tensor::zeros(&[rows, n]);
                for r in 0..rows {
                    let row: Vec<f32> = (0..n).map(|c| x.at(r, c)).collect();
                    let y = bfly.forward(black_box(&row));
                    for (cc, v) in y.into_iter().enumerate() {
                        out.set(r, cc, v);
                    }
                }
                out
            })
        });
        group.bench_function(format!("forward_rows_batched_{rows}x{n}"), |bch| {
            bch.iter(|| bfly.forward_rows(black_box(&x)))
        });
        group.bench_function(format!("backward_rows_batched_{rows}x{n}"), |bch| {
            bch.iter(|| bfly.backward_rows(black_box(&x), black_box(&g)))
        });
    }
    group.finish();
}

/// The paper's core claim at kernel level: O(n log n) butterfly vs O(n^2)
/// dense linear maps over a whole activation batch, up to n = 4096.
fn bench_dense_vs_butterfly(c: &mut Criterion, rng: &mut StdRng) {
    let mut group = c.benchmark_group("dense_vs_butterfly");
    group.sample_size(10);
    let rows = 64usize;
    for n in [256usize, 1024, 4096] {
        let bfly = ButterflyMatrix::random(n, rng).unwrap();
        let x = random_tensor(rng, &[rows, n]);
        group.bench_function(format!("butterfly_rows_{rows}x{n}"), |bch| {
            bch.iter(|| bfly.forward_rows(black_box(&x)))
        });
        // Dense weights at n = 4096 are 64 MB; sample the matmul only up to
        // 1024 to keep the bench runtime sane, the asymptotics are visible
        // well before that.
        if n <= 1024 {
            let dense = random_tensor(rng, &[n, n]);
            group.bench_function(format!("dense_rows_{rows}x{n}"), |bch| {
                bch.iter(|| black_box(&x).matmul(black_box(&dense)))
            });
        }
    }
    group.finish();
}

fn random_tensor(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let volume: usize = shape.iter().product();
    Tensor::from_vec((0..volume).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), shape)
        .expect("random tensor shape")
}

criterion_group!(benches, bench);
criterion_main!(benches);
