//! Micro-benchmarks of the core computational kernels: FFT, butterfly linear
//! transform (factorised vs dense), Fourier token mixing, and the butterfly
//! memory-access analysis. These quantify the O(n log n) vs O(n^2) gap that
//! underlies the paper's algorithmic savings.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fab_accel::memory::{Layout, TransformAccessReport};
use fab_butterfly::fft::fft_real;
use fab_butterfly::{fourier_mix, ButterflyMatrix};
use fab_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);

    // FFT of a 1024-point signal (the padded hidden size of FABNet-Base).
    let signal: Vec<f32> = (0..1024).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    group.bench_function("fft_1024", |b| b.iter(|| fft_real(black_box(&signal))));

    // Butterfly linear transform vs dense mat-vec at n = 1024.
    let n = 1024;
    let butterfly = ButterflyMatrix::random(n, &mut rng).unwrap();
    let dense = butterfly.to_dense();
    let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let x_row = Tensor::from_vec(x.clone(), &[1, n]).unwrap();
    group.bench_function("butterfly_forward_1024", |b| b.iter(|| butterfly.forward(black_box(&x))));
    group.bench_function("dense_matvec_1024", |b| {
        b.iter(|| black_box(&x_row).matmul(black_box(&dense)))
    });

    // FNet-style Fourier mixing of a [256, 256] tile.
    let tile = Tensor::from_vec(
        (0..256 * 256).map(|i| ((i * 37 % 101) as f32) * 0.01).collect(),
        &[256, 256],
    )
    .unwrap();
    group.bench_function("fourier_mix_256x256", |b| b.iter(|| fourier_mix(black_box(&tile))));

    // Bank-conflict analysis of the butterfly memory layout.
    group.bench_function("memory_analysis_1024x16banks", |b| {
        b.iter(|| TransformAccessReport::analyze(Layout::Butterfly, 1024, 16))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
