//! Fig. 21: latency sensitivity to off-chip memory bandwidth for designs with
//! 16-128 Butterfly Engines. Prints the reproduced sweep, then benchmarks the
//! simulator across bandwidth settings.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fab_accel::workload::LayerSchedule;
use fab_accel::{AcceleratorConfig, Simulator};
use fab_nn::{ModelConfig, ModelKind};

fn bench(c: &mut Criterion) {
    for row in fab_bench::fig21_bandwidth_sweep() {
        println!("{row}");
    }
    let model = ModelConfig::fabnet_large();
    let schedule = LayerSchedule::from_model(&model, ModelKind::FabNet, 1024);
    let mut group = c.benchmark_group("fig21_bandwidth_sweep");
    group.sample_size(20);
    for bw in [12.0f64, 50.0, 200.0] {
        let hw = AcceleratorConfig::vcu128_be120().with_bes(64).with_bandwidth(bw);
        let sim = Simulator::new(hw);
        group.bench_function(format!("be64_bw{bw}"), |b| {
            b.iter(|| sim.simulate(black_box(&schedule)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
