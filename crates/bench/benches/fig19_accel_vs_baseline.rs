//! Fig. 19: speedup breakdown of the algorithm (FABNet vs BERT on the MAC
//! baseline) and the hardware (butterfly accelerator vs MAC baseline).
//! Prints the reproduced breakdown, then benchmarks both simulators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fab_accel::workload::LayerSchedule;
use fab_accel::{AcceleratorConfig, Simulator};
use fab_baselines::MacBaseline;
use fab_nn::{ModelConfig, ModelKind};

fn bench(c: &mut Criterion) {
    for row in fab_bench::fig19_speedup_breakdown() {
        println!("{row}");
    }
    let fab = ModelConfig::fabnet_base();
    let bert = ModelConfig::bert_base();
    let butterfly = Simulator::new(AcceleratorConfig::vcu128_be120());
    let baseline = MacBaseline::vcu128_2048();
    let mut group = c.benchmark_group("fig19_accel_vs_baseline");
    group.sample_size(20);
    for seq in [128usize, 512, 1024] {
        let fab_sched = LayerSchedule::from_model(&fab, ModelKind::FabNet, seq);
        let bert_sched = LayerSchedule::from_model(&bert, ModelKind::Transformer, seq);
        group.bench_function(format!("butterfly_sim_fabnet_seq{seq}"), |b| {
            b.iter(|| butterfly.simulate(black_box(&fab_sched)))
        });
        group.bench_function(format!("baseline_sim_bert_seq{seq}"), |b| {
            b.iter(|| baseline.simulate(black_box(&bert_sched)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
