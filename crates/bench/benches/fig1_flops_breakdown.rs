//! Fig. 1: operation-count breakdown of attention vs. linear layers.
//!
//! Prints the reproduced figure rows, then benchmarks the analytic FLOPs
//! model across sequence lengths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fab_nn::{flops, ModelConfig, ModelKind};

fn bench(c: &mut Criterion) {
    for row in fab_bench::fig1_flops_percentage() {
        println!("{row}");
    }
    let config = ModelConfig::bert_base();
    let mut group = c.benchmark_group("fig1_flops_breakdown");
    group.sample_size(20);
    for seq in [128usize, 1024, 4096] {
        group.bench_function(format!("bert_base_seq{seq}"), |b| {
            b.iter(|| {
                flops::flops_breakdown(black_box(&config), ModelKind::Transformer, black_box(seq))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
