//! Fig. 17: FLOP and model-size reduction of FABNet over the Transformer and
//! FNet. Prints the reproduced reduction factors, then benchmarks the
//! reduction computation per LRA task.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fab_lra::LraTask;
use fab_nn::{flops, ModelConfig, ModelKind};

fn bench(c: &mut Criterion) {
    for row in fab_bench::fig17_compression() {
        println!("{row}");
    }
    let fabnet = ModelConfig::fabnet_base();
    let transformer = ModelConfig::bert_base();
    let mut group = c.benchmark_group("fig17_compression");
    group.sample_size(20);
    for task in LraTask::ALL {
        group.bench_function(format!("reduction_{}", task.name()), |b| {
            b.iter(|| {
                flops::flops_reduction(
                    black_box(&fabnet),
                    black_box(&transformer),
                    ModelKind::Transformer,
                    task.paper_seq_len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
