//! Fig. 20: comparison of the FPGA designs against server GPUs and edge
//! devices. Prints the reproduced speedups and energy-efficiency ratios, then
//! benchmarks the device roofline evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fab_accel::workload::LayerSchedule;
use fab_baselines::{DeviceKind, DeviceModel};
use fab_nn::{ModelConfig, ModelKind};

fn bench(c: &mut Criterion) {
    for row in fab_bench::fig20_device_comparison() {
        println!("{row}");
    }
    let config = ModelConfig::fabnet_base();
    let schedule = LayerSchedule::from_model(&config, ModelKind::FabNet, 1024);
    let mut group = c.benchmark_group("fig20_device_comparison");
    group.sample_size(20);
    for kind in [DeviceKind::V100, DeviceKind::JetsonNano, DeviceKind::RaspberryPi4] {
        let device = DeviceModel::new(kind);
        group.bench_function(format!("{kind:?}_roofline_seq1024"), |b| {
            b.iter(|| device.simulate(black_box(&schedule), 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
