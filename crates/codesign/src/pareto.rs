//! Pareto-front extraction over (accuracy, latency) objective pairs.

/// Returns the indices of the Pareto-optimal points when *maximising*
/// `accuracy` and *minimising* `latency`.
///
/// A point is dominated when another point is at least as accurate and at
/// least as fast, and strictly better in one of the two. Indices are returned
/// sorted by ascending latency.
///
/// # Panics
///
/// Panics when the two slices have different lengths.
pub fn pareto_front_indices(accuracy: &[f64], latency: &[f64]) -> Vec<usize> {
    assert_eq!(accuracy.len(), latency.len(), "objective vectors must have equal length");
    let n = accuracy.len();
    let mut front: Vec<usize> = (0..n)
        .filter(|&i| {
            !(0..n).any(|j| {
                j != i
                    && accuracy[j] >= accuracy[i]
                    && latency[j] <= latency[i]
                    && (accuracy[j] > accuracy[i] || latency[j] < latency[i])
            })
        })
        .collect();
    front.sort_by(|&a, &b| latency[a].partial_cmp(&latency[b]).expect("finite latencies"));
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_are_excluded() {
        let accuracy = [0.9, 0.8, 0.95, 0.7];
        let latency = [10.0, 12.0, 20.0, 5.0];
        // Point 1 (0.8, 12) is dominated by point 0 (0.9, 10).
        let front = pareto_front_indices(&accuracy, &latency);
        assert_eq!(front, vec![3, 0, 2]);
    }

    #[test]
    fn identical_points_all_survive() {
        let accuracy = [0.5, 0.5];
        let latency = [1.0, 1.0];
        assert_eq!(pareto_front_indices(&accuracy, &latency).len(), 2);
    }

    #[test]
    fn single_point_is_its_own_front() {
        assert_eq!(pareto_front_indices(&[0.3], &[2.0]), vec![0]);
    }

    #[test]
    fn empty_input_gives_empty_front() {
        assert!(pareto_front_indices(&[], &[]).is_empty());
    }
}
