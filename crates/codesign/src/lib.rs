//! # fab-codesign
//!
//! The algorithm–hardware co-design flow of Section V-C (Fig. 15): an
//! exhaustive grid search over FABNet's hyper-parameters (`D_hid`, `R_ffn`,
//! `N_total`, `N_ABfly`) jointly with the accelerator's parallelism
//! parameters (`P_be`, `P_bu`, `P_qk`, `P_sv`), filtered by FPGA resource
//! feasibility, evaluated for accuracy and latency, and reduced to a Pareto
//! front from which the best design under an accuracy constraint is chosen
//! (Fig. 18).
//!
//! Accuracy evaluation is pluggable: the paper trains every candidate (≈10
//! GPU-hours); this crate accepts any [`AccuracyEstimator`] so callers can
//! plug in real (small-scale) training via `fab-nn`/`fab-lra`, or use the
//! built-in [`HeuristicAccuracy`] model for fast sweeps.
//!
//! # Example
//!
//! ```rust
//! use fab_codesign::{CodesignOptions, DesignSpace, HeuristicAccuracy, run_codesign};
//!
//! let space = DesignSpace::tiny_for_tests();
//! let options = CodesignOptions { seq_len: 128, ..CodesignOptions::default() };
//! let result = run_codesign(&space, &HeuristicAccuracy::lra_text(), &options);
//! assert!(!result.pareto_front().is_empty());
//! ```

#![warn(missing_docs)]

mod accuracy;
mod pareto;
mod space;
mod sweep;

pub use accuracy::{
    AccuracyEstimator, HeuristicAccuracy, MeasuredQuantAccuracy, QuantAccuracyReport,
    TrainedAccuracy,
};
pub use pareto::pareto_front_indices;
pub use space::{DesignPoint, DesignSpace};
pub use sweep::{run_codesign, CodesignOptions, CodesignResult, EvaluatedPoint};
