//! The co-design sweep: enumerate, filter by resources, evaluate accuracy and
//! latency in parallel, extract the Pareto front and pick the best design
//! under an accuracy constraint (Fig. 15 and Fig. 18).

use crate::accuracy::AccuracyEstimator;
use crate::pareto::pareto_front_indices;
use crate::space::{DesignPoint, DesignSpace};
use fab_accel::workload::LayerSchedule;
use fab_accel::{resources, Simulator};
use fab_nn::ModelKind;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Options controlling a co-design run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodesignOptions {
    /// Sequence length of the target task.
    pub seq_len: usize,
    /// Maximum tolerated accuracy loss relative to the estimator's reference
    /// (the paper constrains this to 1% on LRA-Text, 0.5% elsewhere).
    pub max_accuracy_loss: f64,
    /// Number of worker threads for the sweep.
    pub num_threads: usize,
}

impl Default for CodesignOptions {
    fn default() -> Self {
        Self { seq_len: 1024, max_accuracy_loss: 0.01, num_threads: 2 }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedPoint {
    /// The candidate configuration.
    pub point: DesignPoint,
    /// Estimated task accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Simulated end-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// DSPs required by the design.
    pub dsps: u64,
    /// BRAMs required by the design.
    pub brams: u64,
}

/// The outcome of a co-design run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodesignResult {
    /// Every feasible, evaluated design point.
    pub points: Vec<EvaluatedPoint>,
    /// Indices (into `points`) of the Pareto-optimal designs, sorted by latency.
    pub pareto: Vec<usize>,
    /// Index of the chosen design: the fastest Pareto point whose accuracy
    /// loss is within the constraint, if any.
    pub chosen: Option<usize>,
    /// Number of raw grid points that were skipped for resource overflow.
    pub infeasible: usize,
    /// The reference accuracy the loss constraint is measured against.
    pub reference_accuracy: f64,
}

impl CodesignResult {
    /// The Pareto-optimal evaluated points, sorted by latency.
    pub fn pareto_front(&self) -> Vec<&EvaluatedPoint> {
        self.pareto.iter().map(|&i| &self.points[i]).collect()
    }

    /// The chosen design, if any satisfies the accuracy constraint.
    pub fn chosen_point(&self) -> Option<&EvaluatedPoint> {
        self.chosen.map(|i| &self.points[i])
    }

    /// The largest latency ratio between a design in the same accuracy band
    /// as the chosen point and the chosen point itself — the paper's "up to
    /// 130x faster than points in the same accuracy range" metric.
    pub fn max_speedup_in_accuracy_band(&self, band: f64) -> Option<f64> {
        let chosen = self.chosen_point()?;
        self.points
            .iter()
            .filter(|p| (p.accuracy - chosen.accuracy).abs() <= band)
            .map(|p| p.latency_ms / chosen.latency_ms)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Runs the co-design grid search.
///
/// Resource-infeasible designs are discarded; the remaining points are
/// evaluated with `estimator` (accuracy) and the `fab-accel` simulator
/// (latency) across `options.num_threads` worker threads.
pub fn run_codesign<E: AccuracyEstimator + Sync>(
    space: &DesignSpace,
    estimator: &E,
    options: &CodesignOptions,
) -> CodesignResult {
    let candidates = space.enumerate();
    let feasible: Vec<DesignPoint> =
        candidates.iter().filter(|p| resources::check_fits(&p.hardware).is_ok()).cloned().collect();
    let infeasible = candidates.len() - feasible.len();

    let results: Mutex<Vec<EvaluatedPoint>> = Mutex::new(Vec::with_capacity(feasible.len()));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let threads = options.num_threads.max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= feasible.len() {
                    break;
                }
                let point = &feasible[idx];
                let usage = resources::estimate(&point.hardware);
                let accuracy = estimator.estimate(&point.model);
                let schedule =
                    LayerSchedule::from_model(&point.model, ModelKind::FabNet, options.seq_len);
                let latency_ms =
                    Simulator::new(point.hardware.clone()).simulate(&schedule).total_ms();
                results.lock().expect("results mutex poisoned").push(EvaluatedPoint {
                    point: point.clone(),
                    accuracy,
                    latency_ms,
                    dsps: usage.dsps,
                    brams: usage.brams,
                });
            });
        }
    });

    let mut points = results.into_inner().expect("results mutex poisoned");
    // Deterministic order regardless of thread interleaving.
    points.sort_by(|a, b| {
        a.latency_ms
            .partial_cmp(&b.latency_ms)
            .expect("finite latency")
            .then(a.accuracy.partial_cmp(&b.accuracy).expect("finite accuracy"))
            .then(a.dsps.cmp(&b.dsps))
    });

    let accuracy: Vec<f64> = points.iter().map(|p| p.accuracy).collect();
    let latency: Vec<f64> = points.iter().map(|p| p.latency_ms).collect();
    let pareto = pareto_front_indices(&accuracy, &latency);
    let reference = estimator.reference_accuracy();
    let chosen = pareto
        .iter()
        .copied()
        .find(|&i| points[i].accuracy >= reference - options.max_accuracy_loss);
    CodesignResult { points, pareto, chosen, infeasible, reference_accuracy: reference }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::HeuristicAccuracy;

    #[test]
    fn codesign_produces_a_pareto_front_and_a_choice() {
        let space = DesignSpace::tiny_for_tests();
        let options = CodesignOptions { seq_len: 256, max_accuracy_loss: 0.05, num_threads: 2 };
        let result = run_codesign(&space, &HeuristicAccuracy::lra_text(), &options);
        assert!(!result.points.is_empty());
        assert!(!result.pareto.is_empty());
        let front = result.pareto_front();
        // The front must be sorted by latency and non-decreasing in accuracy.
        for pair in front.windows(2) {
            assert!(pair[0].latency_ms <= pair[1].latency_ms);
            assert!(pair[0].accuracy <= pair[1].accuracy + 1e-9);
        }
        let chosen = result.chosen_point().expect("a design should satisfy a 5% loss budget");
        assert!(chosen.accuracy >= result.reference_accuracy - 0.05);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let space = DesignSpace::tiny_for_tests();
        let est = HeuristicAccuracy::lra_text();
        let a = run_codesign(
            &space,
            &est,
            &CodesignOptions { seq_len: 128, max_accuracy_loss: 0.05, num_threads: 1 },
        );
        let b = run_codesign(
            &space,
            &est,
            &CodesignOptions { seq_len: 128, max_accuracy_loss: 0.05, num_threads: 4 },
        );
        assert_eq!(a.points.len(), b.points.len());
        assert_eq!(a.pareto, b.pareto);
        assert_eq!(a.chosen, b.chosen);
    }

    #[test]
    fn tighter_accuracy_constraints_never_pick_faster_designs() {
        let space = DesignSpace::tiny_for_tests();
        let est = HeuristicAccuracy::lra_text();
        let loose = run_codesign(
            &space,
            &est,
            &CodesignOptions { seq_len: 256, max_accuracy_loss: 0.10, num_threads: 2 },
        );
        let tight = run_codesign(
            &space,
            &est,
            &CodesignOptions { seq_len: 256, max_accuracy_loss: 0.01, num_threads: 2 },
        );
        if let (Some(l), Some(t)) = (loose.chosen_point(), tight.chosen_point()) {
            assert!(t.latency_ms >= l.latency_ms);
        }
    }

    #[test]
    fn speedup_within_accuracy_band_is_reported() {
        let space = DesignSpace::tiny_for_tests();
        let est = HeuristicAccuracy::lra_text();
        let result = run_codesign(
            &space,
            &est,
            &CodesignOptions { seq_len: 512, max_accuracy_loss: 0.05, num_threads: 2 },
        );
        let speedup = result.max_speedup_in_accuracy_band(0.02);
        assert!(speedup.unwrap_or(0.0) >= 1.0);
    }
}
