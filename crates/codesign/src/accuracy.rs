//! Accuracy evaluation of candidate FABNet configurations.

use fab_lra::{LraTask, TaskConfig};
use fab_nn::{train_classifier, Model, ModelConfig, ModelKind, TrainOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Estimates the task accuracy of a candidate FABNet configuration.
///
/// The paper trains every candidate on the target LRA task; implementors can
/// either do the same at reduced scale ([`TrainedAccuracy`]) or use a fast
/// analytic surrogate ([`HeuristicAccuracy`]).
pub trait AccuracyEstimator {
    /// Returns the estimated accuracy in `[0, 1]` for `config`.
    fn estimate(&self, config: &ModelConfig) -> f64;

    /// Reference accuracy of the uncompressed vanilla Transformer on the same
    /// task, used to express accuracy-loss constraints.
    fn reference_accuracy(&self) -> f64;
}

/// A capacity-based surrogate accuracy model.
///
/// Accuracy rises with model capacity (hidden size, depth, FFN width) and
/// saturates at the task's reference accuracy; ABfly blocks contribute a
/// small bonus over pure-Fourier mixing, mirroring the trends of the paper's
/// Fig. 16 and Table III (FABNet matches the Transformer once it is large
/// enough, and attention helps slightly on some tasks).
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicAccuracy {
    reference: f64,
    chance: f64,
    /// Capacity (in units of `hidden * sqrt(layers)`) at which the model
    /// reaches ~63% of the gap between chance and the reference accuracy.
    capacity_scale: f64,
    /// Additive bonus per ABfly block, saturating at the reference accuracy.
    abfly_bonus: f64,
}

impl HeuristicAccuracy {
    /// Surrogate calibrated to LRA-Text (Table III: Transformer 0.637).
    pub fn lra_text() -> Self {
        Self { reference: 0.637, chance: 0.5, capacity_scale: 120.0, abfly_bonus: 0.004 }
    }

    /// Surrogate calibrated to LRA-Image (Table III: Transformer 0.379).
    pub fn lra_image() -> Self {
        Self { reference: 0.379, chance: 0.1, capacity_scale: 220.0, abfly_bonus: 0.01 }
    }

    /// Surrogate for an arbitrary task with a given reference and chance accuracy.
    pub fn with_reference(reference: f64, chance: f64) -> Self {
        Self { reference, chance, capacity_scale: 150.0, abfly_bonus: 0.005 }
    }
}

impl AccuracyEstimator for HeuristicAccuracy {
    fn estimate(&self, config: &ModelConfig) -> f64 {
        let capacity = config.hidden as f64
            * (config.num_layers as f64).sqrt()
            * (config.ffn_ratio as f64 / 4.0).sqrt();
        let saturation = 1.0 - (-capacity / self.capacity_scale).exp();
        let base = self.chance + (self.reference - self.chance) * saturation;
        (base + self.abfly_bonus * config.num_abfly as f64).min(self.reference + 0.01)
    }

    fn reference_accuracy(&self) -> f64 {
        self.reference
    }
}

/// Accuracy evaluation by actually training the candidate on an LRA-proxy
/// task at reduced scale (the faithful but slow path).
#[derive(Debug, Clone)]
pub struct TrainedAccuracy {
    /// The proxy task to train on.
    pub task: LraTask,
    /// Sequence length used for the proxy.
    pub seq_len: usize,
    /// Number of training examples.
    pub train_examples: usize,
    /// Number of held-out examples.
    pub test_examples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Random seed for data generation and model initialisation.
    pub seed: u64,
    /// Reference accuracy measured for the dense Transformer at the same scale.
    pub reference: f64,
}

impl TrainedAccuracy {
    /// A configuration small enough for tests: short sequences, few examples.
    pub fn tiny(task: LraTask, seed: u64) -> Self {
        Self {
            task,
            seq_len: 32,
            train_examples: 24,
            test_examples: 16,
            epochs: 2,
            seed,
            reference: 0.8,
        }
    }

    /// Trains one candidate at reduced scale with the given architecture,
    /// returning the trained model, the held-out examples and the f32 test
    /// accuracy — the building block shared by [`TrainedAccuracy`] and
    /// [`MeasuredQuantAccuracy`].
    pub fn train_candidate(
        &self,
        config: &ModelConfig,
        kind: ModelKind,
    ) -> (Model, Vec<fab_nn::Example>, f64) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let task_config = TaskConfig { seq_len: self.seq_len };
        let (train, test) = self.task.generate_split(
            &task_config,
            self.train_examples,
            self.test_examples,
            &mut rng,
        );
        let mut model_config = config.clone();
        model_config.vocab_size = self.task.vocab_size();
        model_config.num_classes = self.task.num_classes();
        model_config.max_seq = self.seq_len.max(model_config.max_seq.min(self.seq_len));
        let model = Model::new(&model_config, kind, &mut rng);
        let to_examples = |samples: &[fab_lra::Sample]| {
            samples
                .iter()
                .map(|s| fab_nn::Example::new(s.tokens.clone(), s.label))
                .collect::<Vec<_>>()
        };
        let test_examples = to_examples(&test);
        let report = train_classifier(
            &model,
            &to_examples(&train),
            &test_examples,
            &TrainOptions { epochs: self.epochs, learning_rate: 2e-3, batch_size: 1 },
        );
        (model, test_examples, report.test_accuracy as f64)
    }

    /// Trains and evaluates one candidate, returning its held-out accuracy.
    pub fn train_and_evaluate(&self, config: &ModelConfig) -> f64 {
        self.train_candidate(config, ModelKind::FabNet).2
    }
}

impl AccuracyEstimator for TrainedAccuracy {
    fn estimate(&self, config: &ModelConfig) -> f64 {
        self.train_and_evaluate(config)
    }

    fn reference_accuracy(&self) -> f64 {
        self.reference
    }
}

/// The f32 and int8 accuracies of one candidate, measured on the same
/// held-out split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantAccuracyReport {
    /// Held-out accuracy of the trained f32 model.
    pub f32_accuracy: f64,
    /// Held-out accuracy after post-training int8 quantization.
    pub int8_accuracy: f64,
}

impl QuantAccuracyReport {
    /// The f32 → int8 accuracy drop in points (positive = int8 lost
    /// accuracy).
    pub fn delta_points(&self) -> f64 {
        (self.f32_accuracy - self.int8_accuracy) * 100.0
    }
}

/// Accuracy evaluation through the **measured** int8 path: trains the
/// candidate like [`TrainedAccuracy`], then calibrates and quantizes it
/// with `fab-quant` and evaluates the quantized model on the same held-out
/// split — replacing the analytic low-precision accuracy surrogate with a
/// number the software stack actually produces.
///
/// Dense architectures ([`ModelKind::Transformer`] / [`ModelKind::FNet`])
/// exercise the int8 GEMMs end to end; FabNet candidates quantize only
/// their dense layers (embeddings + head), since butterfly mixing stays f32.
#[derive(Debug, Clone)]
pub struct MeasuredQuantAccuracy {
    /// The reduced-scale training recipe (task, sizes, seed, reference).
    pub base: TrainedAccuracy,
    /// Architecture to instantiate (dense kinds exercise the int8 GEMMs).
    pub kind: ModelKind,
    /// Number of calibration sequences drawn from
    /// `LraTask::calibration_batches` (deterministic, disjoint from the
    /// train/eval streams).
    pub calibration_samples: usize,
    /// Observer statistic for the activation scales.
    pub observer: fab_quant::ObserverKind,
}

impl MeasuredQuantAccuracy {
    /// A configuration small enough for tests, on a dense architecture.
    pub fn tiny(task: LraTask, seed: u64) -> Self {
        Self {
            base: TrainedAccuracy::tiny(task, seed),
            kind: ModelKind::Transformer,
            calibration_samples: 8,
            observer: fab_quant::ObserverKind::default(),
        }
    }

    /// Trains, quantizes and evaluates one candidate, returning both
    /// accuracies.
    pub fn measure(&self, config: &ModelConfig) -> QuantAccuracyReport {
        let (model, test, f32_accuracy) = self.base.train_candidate(config, self.kind);
        let frozen = model.freeze().with_fast_math(true);
        let task_config = TaskConfig { seq_len: self.base.seq_len };
        let calib = self.base.task.calibration_batches(
            &task_config,
            self.base.seed,
            self.calibration_samples,
        );
        let calib_tokens: Vec<&[usize]> = calib.iter().map(|s| s.tokens.as_slice()).collect();
        let quant = fab_quant::quantize_frozen(
            &frozen,
            &calib_tokens,
            &fab_quant::CalibrationConfig { observer: self.observer },
        );
        let correct = test.iter().filter(|ex| quant.predict_class(&ex.tokens) == ex.label).count();
        QuantAccuracyReport { f32_accuracy, int8_accuracy: correct as f64 / test.len() as f64 }
    }
}

impl AccuracyEstimator for MeasuredQuantAccuracy {
    /// The estimate is the **quantized** accuracy: co-design decisions made
    /// with this estimator price in the int8 deployment the accelerator
    /// models.
    fn estimate(&self, config: &ModelConfig) -> f64 {
        self.measure(config).int8_accuracy
    }

    fn reference_accuracy(&self) -> f64 {
        self.base.reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_accuracy_increases_with_capacity() {
        let est = HeuristicAccuracy::lra_text();
        let small = ModelConfig { hidden: 64, num_layers: 1, ..ModelConfig::fabnet_base() };
        let large = ModelConfig { hidden: 512, num_layers: 2, ..ModelConfig::fabnet_base() };
        assert!(est.estimate(&large) > est.estimate(&small));
        assert!(est.estimate(&large) <= est.reference_accuracy() + 0.02);
    }

    #[test]
    fn heuristic_accuracy_stays_above_chance() {
        let est = HeuristicAccuracy::lra_image();
        let tiny = ModelConfig { hidden: 16, num_layers: 1, ..ModelConfig::tiny_for_tests() };
        assert!(est.estimate(&tiny) >= 0.1);
    }

    #[test]
    fn abfly_blocks_give_a_small_bonus() {
        let est = HeuristicAccuracy::lra_image();
        let without =
            ModelConfig { hidden: 256, num_layers: 2, num_abfly: 0, ..ModelConfig::fabnet_base() };
        let with = ModelConfig { num_abfly: 1, ..without.clone() };
        assert!(est.estimate(&with) > est.estimate(&without));
    }

    #[test]
    fn trained_accuracy_runs_end_to_end_on_a_tiny_candidate() {
        let est = TrainedAccuracy::tiny(LraTask::Text, 3);
        let config = ModelConfig {
            hidden: 16,
            ffn_ratio: 2,
            num_layers: 1,
            num_abfly: 0,
            num_heads: 2,
            vocab_size: 32,
            max_seq: 32,
            num_classes: 2,
        };
        let acc = est.estimate(&config);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn measured_quant_accuracy_reports_both_paths() {
        let est = MeasuredQuantAccuracy::tiny(LraTask::Text, 5);
        let config = ModelConfig {
            hidden: 16,
            ffn_ratio: 2,
            num_layers: 1,
            num_abfly: 1,
            num_heads: 2,
            vocab_size: 32,
            max_seq: 32,
            num_classes: 2,
        };
        let report = est.measure(&config);
        assert!((0.0..=1.0).contains(&report.f32_accuracy));
        assert!((0.0..=1.0).contains(&report.int8_accuracy));
        assert_eq!(report.delta_points(), (report.f32_accuracy - report.int8_accuracy) * 100.0);
        // The estimator surface reports the quantized accuracy.
        assert_eq!(est.estimate(&config), report.int8_accuracy);
        assert_eq!(est.reference_accuracy(), est.base.reference);
    }
}
