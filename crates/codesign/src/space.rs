//! The joint algorithm/hardware design space.

use fab_accel::{AcceleratorConfig, FpgaDevice};
use fab_nn::ModelConfig;
use serde::{Deserialize, Serialize};

/// One candidate point: a FABNet configuration paired with an accelerator
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// FABNet hyper-parameters.
    pub model: ModelConfig,
    /// Accelerator parallelism and memory configuration.
    pub hardware: AcceleratorConfig,
}

/// The grid of values explored by the co-design search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Hidden sizes `D_hid`.
    pub hidden: Vec<usize>,
    /// FFN expansion ratios `R_ffn`.
    pub ffn_ratio: Vec<usize>,
    /// Total block counts `N_total`.
    pub num_layers: Vec<usize>,
    /// ABfly block counts `N_ABfly`.
    pub num_abfly: Vec<usize>,
    /// Butterfly Engine counts `P_be`.
    pub num_be: Vec<usize>,
    /// Butterfly Units per engine `P_bu`.
    pub num_bu: Vec<usize>,
    /// QK-unit multipliers `P_qk` (0 disables the Attention Processor).
    pub pqk: Vec<usize>,
    /// SV-unit multipliers `P_sv`.
    pub psv: Vec<usize>,
    /// Target FPGA device.
    pub device: FpgaDevice,
    /// Task interface copied onto every candidate model configuration.
    pub vocab_size: usize,
    /// Maximum sequence length of the task.
    pub max_seq: usize,
    /// Number of output classes of the task.
    pub num_classes: usize,
}

impl DesignSpace {
    /// The Section VI-C search space for the LRA tasks on a VCU128:
    /// `D_hid ∈ {64..1024}`, `R_ffn ∈ {1,2,4}`, `N_ABfly ∈ {0,1}`,
    /// `N_total ∈ {1,2}`, parallelism from `{4..128}` (plus 0 for the
    /// attention units).
    pub fn lra_vcu128() -> Self {
        Self {
            hidden: vec![64, 128, 256, 512, 1024],
            ffn_ratio: vec![1, 2, 4],
            num_layers: vec![1, 2],
            num_abfly: vec![0, 1],
            num_be: vec![4, 8, 16, 32, 64, 128],
            num_bu: vec![4],
            pqk: vec![0, 4, 8, 16, 32, 64, 128],
            psv: vec![0, 4, 8, 16, 32, 64, 128],
            device: FpgaDevice::vcu128(),
            vocab_size: 256,
            max_seq: 4096,
            num_classes: 10,
        }
    }

    /// A drastically reduced space for unit tests and doc examples.
    pub fn tiny_for_tests() -> Self {
        Self {
            hidden: vec![64, 128],
            ffn_ratio: vec![2],
            num_layers: vec![1, 2],
            num_abfly: vec![0, 1],
            num_be: vec![16, 64],
            num_bu: vec![4],
            pqk: vec![0, 16],
            psv: vec![0, 16],
            device: FpgaDevice::vcu128(),
            vocab_size: 64,
            max_seq: 1024,
            num_classes: 2,
        }
    }

    /// Number of raw grid points before feasibility filtering.
    pub fn cardinality(&self) -> usize {
        self.hidden.len()
            * self.ffn_ratio.len()
            * self.num_layers.len()
            * self.num_abfly.len()
            * self.num_be.len()
            * self.num_bu.len()
            * self.pqk.len()
            * self.psv.len()
    }

    /// Enumerates every *consistent* design point in the grid.
    ///
    /// Inconsistent combinations are skipped rather than returned as errors:
    /// `N_ABfly > N_total`, attention units present without ABfly blocks (a
    /// waste of DSPs), ABfly blocks present without attention units (cannot
    /// execute), and `P_qk`/`P_sv` where exactly one of the two is zero.
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        let mut points = Vec::new();
        for &hidden in &self.hidden {
            for &ffn_ratio in &self.ffn_ratio {
                for &num_layers in &self.num_layers {
                    for &num_abfly in &self.num_abfly {
                        if num_abfly > num_layers {
                            continue;
                        }
                        for &num_be in &self.num_be {
                            for &num_bu in &self.num_bu {
                                for &pqk in &self.pqk {
                                    for &psv in &self.psv {
                                        if (pqk == 0) != (psv == 0) {
                                            continue;
                                        }
                                        let has_ap = pqk > 0;
                                        if has_ap != (num_abfly > 0) {
                                            continue;
                                        }
                                        let model = ModelConfig {
                                            hidden,
                                            ffn_ratio,
                                            num_layers,
                                            num_abfly,
                                            num_heads: (hidden / 64).max(1),
                                            vocab_size: self.vocab_size,
                                            max_seq: self.max_seq,
                                            num_classes: self.num_classes,
                                        };
                                        let mut hardware = AcceleratorConfig::vcu128_fabnet();
                                        hardware.num_be = num_be;
                                        hardware.num_bu = num_bu;
                                        hardware.device = self.device.clone();
                                        if has_ap {
                                            hardware = hardware.with_attention_units(
                                                model.num_heads,
                                                pqk,
                                                psv,
                                            );
                                        }
                                        points.push(DesignPoint { model, hardware });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_has_expected_cardinality() {
        let space = DesignSpace::lra_vcu128();
        // 5 * 3 * 2 * 2 * 6 * 1 * 7 * 7 raw combinations.
        assert_eq!(space.cardinality(), 5 * 3 * 2 * 2 * 6 * 7 * 7);
    }

    #[test]
    fn enumeration_filters_inconsistent_points() {
        let space = DesignSpace::tiny_for_tests();
        let points = space.enumerate();
        assert!(!points.is_empty());
        for p in &points {
            assert!(p.model.num_abfly <= p.model.num_layers);
            assert_eq!(p.hardware.supports_attention(), p.model.num_abfly > 0);
            assert!(p.model.validate().is_ok());
        }
        assert!(points.len() < space.cardinality());
    }

    #[test]
    fn enumeration_contains_the_papers_chosen_point() {
        // Section VI-C selects <Pbe, Pbu, Pqk, Psv> = <64, 4, 0, 0> with a
        // pure-FBfly FABNet.
        let space = DesignSpace::lra_vcu128();
        let points = space.enumerate();
        assert!(points.iter().any(|p| {
            p.hardware.num_be == 64
                && p.hardware.num_bu == 4
                && p.hardware.pqk == 0
                && p.hardware.psv == 0
                && p.model.num_abfly == 0
        }));
    }
}
