//! # fab-quant
//!
//! Post-training int8 quantization for the FABNet reproduction: the software
//! emulation of the low-precision arithmetic the paper's accelerator runs in
//! hardware, and the serving stack's fast path for GEMM-dominated models.
//!
//! The pipeline has three stages:
//!
//! 1. **Calibration** ([`calibrate`]) — activation observers ([`Observer`],
//!    min/max or percentile) replay deterministic calibration batches
//!    (e.g. [`fab_lra`'s `calibration_batches`][calib]) through a
//!    [`FrozenModel`](fab_nn::FrozenModel) and record the dynamic range at
//!    every quantized GEMM input, producing per-tensor activation scales.
//! 2. **Quantization** ([`QuantModel::quantize`] /
//!    [`quantize_frozen`]) — every *dense* linear map (attention
//!    projections, FFN layers, the classifier head) is converted to a
//!    [`QuantLinear`]: int8 weights with **per-output-row** symmetric
//!    scales, f32 bias, and the calibrated per-tensor input scale.
//!    Embedding tables become int8 with per-row scales
//!    ([`QuantEmbedding`]). Butterfly-factorised linears, softmax,
//!    layer norm and the Fourier/attention token mixing stay in f32, with
//!    dequantization at the boundaries.
//! 3. **Quantized inference** ([`QuantModel`]) — the int8 counterpart of
//!    `FrozenModel`: row-wise work runs `quantize → int8×int8→i32 GEMM →
//!    fused dequant+bias(+GELU)` through the [`fab_tensor::simd`] `q8_*`
//!    kernels (AVX2 `maddubs`+`madd`, NEON `vmull`+`vpadal`, or the
//!    bit-identical scalar reference — `FAB_SIMD` is honoured).
//!
//! # Exactness and batch invariance
//!
//! Scales are **static**: fixed at calibration time, never derived from the
//! batch being served. Combined with the exact i32 accumulation of the q8
//! kernels and the per-example token mixing (identical structure to
//! [`fab_nn::frozen`]), a request's quantized logits are **bit-identical**
//! regardless of batch composition, padding and worker-thread count — the
//! same guarantee the f32 serving path makes, property-tested the same way.
//!
//! [calib]: https://docs.rs/fab-lra
//!
//! # Example
//!
//! ```rust
//! use fab_nn::{Model, ModelConfig, ModelKind};
//! use fab_quant::{quantize_frozen, CalibrationConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = Model::new(&ModelConfig::tiny_for_tests(), ModelKind::Transformer, &mut rng);
//! let frozen = model.freeze().with_fast_math(true);
//! let calib: Vec<Vec<usize>> = (0..8).map(|i| vec![(i % 7) + 1; 8]).collect();
//! let quant = quantize_frozen(&frozen, &calib, &CalibrationConfig::default());
//! let logits = quant.logits(&[1, 2, 3, 4]);
//! assert_eq!(logits.len(), ModelConfig::tiny_for_tests().num_classes);
//! ```

#![warn(missing_docs)]

mod calibrate;
mod observer;
mod qlinear;
mod qmodel;

pub use calibrate::{calibrate, quantize_frozen, ActivationScales, BlockScales, CalibrationConfig};
pub use observer::{Observer, ObserverKind};
pub use qlinear::{MaybeQuantLinear, QuantEmbedding, QuantLinear};
pub use qmodel::{QuantAttention, QuantBlock, QuantFeedForward, QuantMixing, QuantModel};
