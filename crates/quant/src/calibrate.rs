//! Calibration: replaying batches through a frozen model while observing
//! the activation ranges at every quantized GEMM input.

use crate::observer::{Observer, ObserverKind};
use crate::qmodel::QuantModel;
use fab_butterfly::fourier_mix;
use fab_nn::{FrozenAttention, FrozenMixing, FrozenModel};
use fab_tensor::Tensor;

/// Calibration knobs.
#[derive(Debug, Clone, Default)]
pub struct CalibrationConfig {
    /// Which statistic turns observed ranges into scales (default:
    /// 99.9th-percentile clipping).
    pub observer: ObserverKind,
}

/// Calibrated activation scales of one encoder block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockScales {
    /// Input scale of the attention q/k/v projections (1.0 for Fourier
    /// blocks, which have no quantized projections).
    pub attn_in: f32,
    /// Input scale of the attention output projection.
    pub attn_out_in: f32,
    /// Input scale of the first FFN layer.
    pub ffn1_in: f32,
    /// Input scale of the second FFN layer (post-GELU activations).
    pub ffn2_in: f32,
}

/// Calibrated per-tensor activation scales for every quantized GEMM input
/// of a model, in block order plus the classifier head.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationScales {
    /// Per-block scales, aligned with `FrozenModel::blocks()`.
    pub blocks: Vec<BlockScales>,
    /// Input scale of the classifier head (mean-pooled hidden state).
    pub head_in: f32,
}

/// Observers for one block's quantized GEMM inputs.
struct BlockObservers {
    attn_in: Observer,
    attn_out_in: Observer,
    ffn1_in: Observer,
    ffn2_in: Observer,
}

/// f32 embedding of one sequence from the frozen tables (the calibration
/// replay runs the f32 path end to end).
fn embed(frozen: &FrozenModel, tokens: &[usize]) -> Tensor {
    let hidden = frozen.config().hidden;
    let vocab = frozen.config().vocab_size;
    let tok = frozen.tok_table().as_slice();
    let pos = frozen.pos_table().as_slice();
    let mut x = vec![0.0f32; tokens.len() * hidden];
    for ((j, &id), row) in tokens.iter().enumerate().zip(x.chunks_mut(hidden)) {
        assert!(id < vocab, "token index {id} out of range for vocab {vocab}");
        let trow = &tok[id * hidden..(id + 1) * hidden];
        let prow = &pos[j * hidden..(j + 1) * hidden];
        for ((d, &t), &p) in row.iter_mut().zip(trow.iter()).zip(prow.iter()) {
            *d = t + p;
        }
    }
    Tensor::from_vec(x, &[tokens.len(), hidden]).expect("calibration embedding shape")
}

/// The attention core on one example, via the shared frozen-model helper
/// (`fab_nn::attention_mix_rows`) so the replay runs exactly the math the
/// serving path runs — including the fast-math query-prescale ordering.
fn attention_core(
    a: &FrozenAttention,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    fast_math: bool,
) -> Tensor {
    let dim = a.dim();
    let len = q.rows();
    let q = if fast_math {
        let head_scale = 1.0 / ((dim / a.num_heads()) as f32).sqrt();
        q.scale(head_scale)
    } else {
        q.clone()
    };
    let mut mixed = vec![0.0f32; len * dim];
    fab_nn::attention_mix_rows(&q, k, v, a.num_heads(), fast_math, &mut mixed);
    Tensor::from_vec(mixed, &[len, dim]).expect("attention core shape")
}

/// Runs the calibration batches through `frozen` (f32, per example) and
/// returns the observed activation scales for every quantized GEMM input.
///
/// Replay is per example and single-pass, so the result is deterministic
/// for a given sample set on every host, backend and thread count — use
/// `LraTask::calibration_batches` for a reproducible sample stream disjoint
/// from the eval split.
///
/// # Panics
///
/// Panics when `samples` is empty, a sequence is empty or longer than the
/// model's `max_seq`, or a token id is out of vocabulary.
pub fn calibrate<S: AsRef<[usize]>>(
    frozen: &FrozenModel,
    samples: &[S],
    config: &CalibrationConfig,
) -> ActivationScales {
    assert!(!samples.is_empty(), "calibration needs at least one sample");
    let mut blocks: Vec<BlockObservers> = frozen
        .blocks()
        .iter()
        .map(|_| BlockObservers {
            attn_in: Observer::new(config.observer),
            attn_out_in: Observer::new(config.observer),
            ffn1_in: Observer::new(config.observer),
            ffn2_in: Observer::new(config.observer),
        })
        .collect();
    let mut head_in = Observer::new(config.observer);
    let fast_math = frozen.fast_math();

    for sample in samples {
        let tokens = sample.as_ref();
        assert!(!tokens.is_empty(), "cannot calibrate on an empty sequence");
        assert!(
            tokens.len() <= frozen.max_seq(),
            "calibration sequence length {} exceeds max_seq {}",
            tokens.len(),
            frozen.max_seq()
        );
        let mut x = embed(frozen, tokens);
        for (fb, obs) in frozen.blocks().iter().zip(blocks.iter_mut()) {
            let m = match fb.mixing() {
                FrozenMixing::Attention(a) => {
                    obs.attn_in.observe(x.as_slice());
                    let q = a.wq().forward(&x);
                    let k = a.wk().forward(&x);
                    let v = a.wv().forward(&x);
                    let mixed = attention_core(a, &q, &k, &v, fast_math);
                    obs.attn_out_in.observe(mixed.as_slice());
                    a.wo().forward(&mixed)
                }
                FrozenMixing::Fourier => fourier_mix(&x),
            };
            x = fb.ln1().forward_residual(&x, &m);
            obs.ffn1_in.observe(x.as_slice());
            let h = fb.ffn().lin1().forward(&x);
            let act = if fast_math { h.gelu_fastmath() } else { h.gelu() };
            obs.ffn2_in.observe(act.as_slice());
            let f = fb.ffn().lin2().forward(&act);
            x = fb.ln2().forward_residual(&x, &f);
        }
        // Mean-pool with the accumulation order of the serving path.
        let hidden = frozen.config().hidden;
        let mut pooled = vec![0.0f32; hidden];
        for row in x.as_slice().chunks(hidden) {
            for (d, &v) in pooled.iter_mut().zip(row.iter()) {
                *d += v;
            }
        }
        for d in pooled.iter_mut() {
            *d /= tokens.len() as f32;
        }
        head_in.observe(&pooled);
    }

    ActivationScales {
        blocks: frozen
            .blocks()
            .iter()
            .zip(blocks.iter())
            .map(|(fb, o)| {
                // Fourier blocks have no quantized projections: their
                // attention observers never see data, so emit the documented
                // 1.0 sentinel instead of the observer's degenerate floor.
                let attention = matches!(fb.mixing(), FrozenMixing::Attention(_));
                BlockScales {
                    attn_in: if attention { o.attn_in.scale() } else { 1.0 },
                    attn_out_in: if attention { o.attn_out_in.scale() } else { 1.0 },
                    ffn1_in: o.ffn1_in.scale(),
                    ffn2_in: o.ffn2_in.scale(),
                }
            })
            .collect(),
        head_in: head_in.scale(),
    }
}

/// Calibrates on `samples` and quantizes `frozen` in one step — the
/// post-training quantization entry point.
///
/// # Panics
///
/// Panics under the same conditions as [`calibrate`].
pub fn quantize_frozen<S: AsRef<[usize]>>(
    frozen: &FrozenModel,
    samples: &[S],
    config: &CalibrationConfig,
) -> QuantModel {
    let scales = calibrate(frozen, samples, config);
    QuantModel::quantize(frozen, &scales)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_nn::{Model, ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn calib_samples(n: usize, len: usize, vocab: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| (0..len).map(|j| (i * 7 + j * 3) % vocab).collect()).collect()
    }

    #[test]
    fn calibration_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = ModelConfig::tiny_for_tests();
        let model = Model::new(&config, ModelKind::Transformer, &mut rng);
        let frozen = model.freeze().with_fast_math(true);
        let samples = calib_samples(6, 8, config.vocab_size);
        let a = calibrate(&frozen, &samples, &CalibrationConfig::default());
        let b = calibrate(&frozen, &samples, &CalibrationConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.blocks.len(), config.num_layers);
        assert!(a.head_in > 0.0);
        for bs in &a.blocks {
            assert!(bs.ffn1_in > 0.0 && bs.ffn2_in > 0.0);
        }
    }

    #[test]
    fn calibration_replay_matches_the_frozen_forward_bit_for_bit() {
        // The replay re-implements the frozen forward step by step; if the
        // two ever diverge, calibration scales stop describing the
        // activations the serving path produces. With exact (non-fast-math)
        // kernels the replay is bit-identical, so the head-input scale must
        // equal max|pooled|/127 computed from FrozenModel::forward_batch's
        // own final hidden states — any intermediate divergence propagates
        // here.
        for (seed, kind) in
            [(13u64, ModelKind::Transformer), (14, ModelKind::FNet), (15, ModelKind::FabNet)]
        {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = ModelConfig::tiny_for_tests();
            let model = Model::new(&config, kind, &mut rng);
            let frozen = model.freeze(); // exact kernels
            let tokens: Vec<usize> = vec![1, 5, 2, 7, 3, 0, 4];
            let scales = calibrate(
                &frozen,
                std::slice::from_ref(&tokens),
                &CalibrationConfig { observer: ObserverKind::MinMax },
            );
            let hidden = config.hidden;
            let x = frozen.forward_batch(std::slice::from_ref(&tokens), tokens.len());
            let mut pooled = vec![0.0f32; hidden];
            for row in x.as_slice().chunks(hidden) {
                for (d, &v) in pooled.iter_mut().zip(row.iter()) {
                    *d += v;
                }
            }
            for d in pooled.iter_mut() {
                *d /= tokens.len() as f32;
            }
            let expected = pooled.iter().fold(0.0f32, |m, &v| m.max(v.abs())) / 127.0;
            assert_eq!(
                scales.head_in, expected,
                "{kind:?}: calibration replay diverged from the frozen forward"
            );
        }
    }

    #[test]
    fn fourier_blocks_emit_the_documented_sentinel_scales() {
        let mut rng = StdRng::seed_from_u64(16);
        let config = ModelConfig::tiny_for_tests();
        let model = Model::new(&config, ModelKind::FNet, &mut rng);
        let frozen = model.freeze().with_fast_math(true);
        let samples = calib_samples(4, 8, config.vocab_size);
        let scales = calibrate(&frozen, &samples, &CalibrationConfig::default());
        for bs in &scales.blocks {
            assert_eq!((bs.attn_in, bs.attn_out_in), (1.0, 1.0));
        }
    }

    #[test]
    fn observer_kinds_produce_different_but_sane_scales() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = ModelConfig::tiny_for_tests();
        let model = Model::new(&config, ModelKind::FNet, &mut rng);
        let frozen = model.freeze().with_fast_math(true);
        let samples = calib_samples(8, 8, config.vocab_size);
        let minmax =
            calibrate(&frozen, &samples, &CalibrationConfig { observer: ObserverKind::MinMax });
        let pct = calibrate(
            &frozen,
            &samples,
            &CalibrationConfig { observer: ObserverKind::Percentile(0.99) },
        );
        for (m, p) in minmax.blocks.iter().zip(pct.blocks.iter()) {
            // Percentile clipping never selects a larger range than min/max
            // (up to histogram bin resolution).
            assert!(p.ffn1_in <= m.ffn1_in * 1.01);
        }
    }
}
